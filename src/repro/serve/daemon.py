"""The ``repro serve`` daemon: campaign evaluation as a local service.

One long-lived process owns the campaign machinery — a warm executor
pool, the content-addressed cache — and answers scenario evaluation
requests over a Unix-domain socket speaking the JSON-lines protocol of
:mod:`repro.serve.protocol`. What the daemon adds over calling
:func:`repro.api.evaluate` in-process:

* **Request deduplication.** In-flight jobs are keyed by the lowered
  campaign spec's content hash; a request for a grid that is already
  being evaluated *joins* that job instead of starting a second one, and
  both clients receive the identical result (``served_from: "joined"``
  for the latecomer).
* **A hot cache path.** A request whose full grid already sits in the
  content-addressed store is answered straight from disk
  (``served_from: "cache"``) without touching the job table.
* **Work-stealing concurrency.** The daemon holds one reserved
  :class:`~repro.campaign.executors.AsyncExecutor` process pool for its
  whole lifetime; concurrent jobs submit chunk futures into the shared
  pool, so workers drain whichever job has chunks left instead of being
  statically partitioned per request.
* **Graceful degradation.** The in-flight job table is bounded
  (``max_pending``): excess evaluate requests are refused immediately
  with a ``busy`` error rather than queueing without bound. Every
  request can carry a deadline, enforced server-side with a ``timeout``
  error. Shutdown stops accepting work, drains in-flight jobs for up to
  ``drain_timeout`` seconds, then cancels stragglers.

Determinism is inherited, not re-proven: jobs run through
:func:`repro.campaign.engine.run_campaign` with a bitwise-trusted
executor, and the wire protocol transports doubles exactly, so a served
result is byte-identical to a local ``evaluate()`` of the same scenario.
"""

from __future__ import annotations

import asyncio
import contextlib
import os
import socket as socket_module
import time
from dataclasses import dataclass, field

from ..campaign.cache import CampaignCache
from ..campaign.engine import _cache_key, run_campaign
from ..campaign.executors import AsyncExecutor, get_executor
from ..exceptions import CampaignTimeoutError, InvalidParameterError, ReproError
from ..faults import FaultInjector, FaultPlan
from ..scenarios.wire import request_to_scenario
from .protocol import (
    PROTOCOL_VERSION,
    ProtocolError,
    accepted_event,
    decode_frame,
    encode_frame,
    error_event,
    parse_request,
    progress_event,
    result_event,
    result_payload,
)

__all__ = ["ServeConfig", "CampaignServer", "serve"]


@dataclass(frozen=True)
class ServeConfig:
    """Operator-facing daemon configuration.

    Attributes
    ----------
    socket_path:
        Filesystem path of the Unix-domain socket to listen on.
    cache:
        Cache selector as accepted by :func:`repro.campaign.run_campaign`
        (``True`` = the default content-addressed store). The daemon is
        most useful *with* a cache — the hot path and cross-restart reuse
        both live there — but ``False`` runs compute-only.
    executor:
        Campaign executor name or instance used for jobs that do not
        override it. The default ``"async"`` pool is what enables
        work-stealing across concurrent requests.
    processes:
        Worker processes for the default ``"async"`` executor
        (``None`` = CPU count).
    max_pending:
        Bound on concurrently in-flight evaluate jobs; requests beyond
        it are refused with a ``busy`` error (backpressure).
    request_timeout:
        Default per-request deadline in seconds (``None`` = no deadline);
        a request's ``timeout`` option overrides it.
    drain_timeout:
        Seconds shutdown waits for in-flight jobs before cancelling.
    chunk_size:
        Default checkpoint granularity for jobs (``None`` = engine
        default); a request's ``chunk_size`` option overrides it.
    """

    socket_path: str
    cache: object = True
    executor: object = "async"
    processes: int | None = None
    max_pending: int = 4
    request_timeout: float | None = None
    drain_timeout: float = 30.0
    chunk_size: int | None = None

    def __post_init__(self) -> None:
        if not self.socket_path:
            raise InvalidParameterError("a socket path is required")
        if self.max_pending < 1:
            raise InvalidParameterError(
                f"need room for at least one pending job, got {self.max_pending}"
            )
        if self.request_timeout is not None and self.request_timeout <= 0:
            raise InvalidParameterError(
                f"request timeout must be positive, got {self.request_timeout}"
            )
        if self.drain_timeout < 0:
            raise InvalidParameterError(
                f"drain timeout must be non-negative, got {self.drain_timeout}"
            )


class _Job:
    """One in-flight evaluation, shared by every request that joins it."""

    def __init__(self, key: str, scenario, spec) -> None:
        self.key = key
        self.scenario = scenario
        self.spec = spec
        self.subscribers: list[asyncio.Queue] = []
        self.task: asyncio.Task | None = None

    def subscribe(self) -> asyncio.Queue:
        queue: asyncio.Queue = asyncio.Queue()
        self.subscribers.append(queue)
        return queue

    def unsubscribe(self, queue: asyncio.Queue) -> None:
        with contextlib.suppress(ValueError):
            self.subscribers.remove(queue)

    def publish(self, item: tuple) -> None:
        for queue in self.subscribers:
            queue.put_nowait(item)


def _resolve_store(cache):
    """Normalize the config's cache selector to a store (or ``None``)."""
    if cache is None or cache is False:
        return None
    if cache is True:
        return CampaignCache()
    if isinstance(cache, CampaignCache):
        return cache
    return CampaignCache(cache)


def _socket_in_use(path: str) -> bool:
    """Whether a live server is already listening on ``path``."""
    probe = socket_module.socket(socket_module.AF_UNIX, socket_module.SOCK_STREAM)
    try:
        probe.settimeout(0.25)
        probe.connect(path)
    except OSError:
        return False
    else:
        return True
    finally:
        probe.close()


class CampaignServer:
    """The asyncio Unix-socket daemon. See the module docstring."""

    def __init__(self, config: ServeConfig, fault_plan: FaultPlan | None = None):
        self.config = config
        self._store = _resolve_store(config.cache)
        if isinstance(config.executor, str) and config.executor == "async":
            self._executor = AsyncExecutor(processes=config.processes)
        else:
            self._executor = get_executor(config.executor)
        # Chaos-testing seam: an armed plan injects engine faults into
        # jobs and socket faults into outbound frames.  Defaults to the
        # REPRO_FAULT_PLAN environment variable so subprocess tests can
        # arm a daemon without new CLI surface.
        self._fault_plan = fault_plan if fault_plan is not None else FaultPlan.from_env()
        self._faults = (
            FaultInjector(self._fault_plan) if self._fault_plan is not None else None
        )
        self._jobs: dict[str, _Job] = {}
        self._connections: set[asyncio.Task] = set()
        self._server: asyncio.base_events.Server | None = None
        self._stop_event: asyncio.Event | None = None
        self._reservation: contextlib.ExitStack | None = None
        self._closing = False
        self.stats = {
            "requests": 0,
            "served_from_cache": 0,
            "computed": 0,
            "deduplicated": 0,
            "rejected_busy": 0,
            "timeouts": 0,
            "failed": 0,
            "chunk_retries": 0,
            "pool_rebuilds": 0,
        }

    # -- lifecycle ----------------------------------------------------

    async def start(self) -> None:
        """Bind the socket and start accepting connections."""
        path = self.config.socket_path
        if os.path.exists(path):
            if _socket_in_use(path):
                raise ReproError(f"another server is already listening on {path}")
            os.unlink(path)  # stale socket left by an unclean exit
        self._stop_event = asyncio.Event()
        self._reservation = contextlib.ExitStack()
        reserve = getattr(self._executor, "reserve", None)
        if reserve is not None:
            # One pool for the daemon's lifetime: concurrent jobs share
            # its workers, which is what makes work steal across requests.
            self._reservation.enter_context(reserve())
        try:
            self._server = await asyncio.start_unix_server(
                self._handle_connection, path
            )
        except OSError:
            self._reservation.close()
            self._reservation = None
            raise

    def request_stop(self) -> None:
        """Begin a graceful shutdown: refuse new work, drain, exit."""
        self._closing = True
        if self._stop_event is not None:
            self._stop_event.set()

    async def serve_forever(self) -> None:
        """Run until :meth:`request_stop` (or a ``shutdown`` op), then drain."""
        if self._server is None:
            await self.start()
        try:
            await self._stop_event.wait()
        finally:
            self._closing = True
            self._server.close()
            await self._server.wait_closed()
            await self._drain()
            if self._reservation is not None:
                self._reservation.close()
                self._reservation = None
            with contextlib.suppress(OSError):
                os.unlink(self.config.socket_path)

    async def _drain(self) -> None:
        """Let in-flight work finish, bounded by ``drain_timeout``."""
        job_tasks = [job.task for job in self._jobs.values() if job.task is not None]
        if job_tasks:
            await asyncio.wait(job_tasks, timeout=self.config.drain_timeout)
        if self._connections:
            # Results are computed; give handlers a moment to flush them.
            await asyncio.wait(self._connections, timeout=5.0)
        for task in [*job_tasks, *self._connections]:
            if not task.done():
                task.cancel()
        if self._connections:
            await asyncio.gather(*self._connections, return_exceptions=True)

    # -- connection handling ------------------------------------------

    async def _handle_connection(self, reader, writer) -> None:
        task = asyncio.current_task()
        self._connections.add(task)
        try:
            await self._converse(reader, writer)
        except (ConnectionError, asyncio.IncompleteReadError):
            pass  # client went away; nothing left to tell it
        except asyncio.CancelledError:
            pass  # drain-timeout cancellation; close the transport and go
        finally:
            self._connections.discard(task)
            writer.close()
            with contextlib.suppress(ConnectionError):
                await writer.wait_closed()

    async def _converse(self, reader, writer) -> None:
        """Serve one connection: one request frame in, one event stream out.

        The connection closes after the terminal event rather than
        looping for more requests: the handler's lifetime then never
        depends on noticing the client's EOF — which can be delayed
        indefinitely when executor worker processes forked mid-request
        hold inherited duplicates of the connection's descriptor.
        """
        line = b""
        while not line.strip():
            try:
                line = await reader.readline()
            except ValueError:
                await self._send(writer, error_event("", "invalid", "frame too long"))
                return
            if not line:
                return  # client closed the connection
        try:
            request = parse_request(decode_frame(line))
        except ProtocolError as error:
            await self._send(writer, error_event("", "invalid", str(error)))
            return
        self.stats["requests"] += 1
        if request.op == "ping":
            await self._send(
                writer,
                {
                    "event": "pong",
                    "id": request.id,
                    "protocol_version": PROTOCOL_VERSION,
                    "draining": self._closing,
                },
            )
        elif request.op == "stats":
            await self._send(
                writer,
                {
                    "event": "stats",
                    "id": request.id,
                    "stats": dict(self.stats),
                    "in_flight": len(self._jobs),
                },
            )
        elif request.op == "health":
            await self._send(writer, self._health_frame(request.id))
        elif request.op == "shutdown":
            await self._send(writer, {"event": "bye", "id": request.id})
            self.request_stop()
        else:
            await self._handle_evaluate(request, writer)

    def _health_frame(self, request_id: str) -> dict:
        """One liveness snapshot: pool, queue and fault-recovery counters."""
        executor = self._executor
        return {
            "event": "health",
            "id": request_id,
            "status": "draining" if self._closing else "ok",
            "protocol_version": PROTOCOL_VERSION,
            "in_flight": len(self._jobs),
            "max_pending": self.config.max_pending,
            "executor": getattr(executor, "name", type(executor).__name__),
            "processes": getattr(executor, "processes", None),
            "pool_rebuilds": getattr(executor, "pool_rebuilds", 0),
            "cache": self._store is not None,
            "faults_injected": dict(self._faults.fired) if self._faults else {},
            "stats": dict(self.stats),
        }

    async def _send(self, writer, frame: dict) -> None:
        if self._faults is not None:
            await self._inject_socket_fault(writer, frame)
        writer.write(encode_frame(frame))
        await writer.drain()

    async def _inject_socket_fault(self, writer, frame: dict) -> None:
        """Apply an armed socket fault rule to one outbound frame.

        ``socket-delay`` just sleeps; ``socket-drop`` writes roughly half
        the encoded frame before severing; ``socket-close`` severs before
        any byte.  Severing raises ``ConnectionResetError``, which rides
        the same handling as a genuinely vanished client — the connection
        closes mid-stream and the client sees a torn or missing frame.
        """
        action = self._faults.socket_event(str(frame.get("event", "")))
        if action is None:
            return
        kind, rule = action
        if kind == "socket-delay":
            await asyncio.sleep(rule.delay_seconds)
            return
        if kind == "socket-drop":
            data = encode_frame(frame)
            writer.write(data[: max(1, len(data) // 2)])
            with contextlib.suppress(ConnectionError):
                await writer.drain()
        # A transport-level shutdown sends the FIN immediately even when
        # pool workers forked mid-request hold inherited duplicates of
        # this connection's descriptor — without it the client would only
        # notice the severed stream at its socket timeout.
        sock = writer.get_extra_info("socket")
        if sock is not None:
            with contextlib.suppress(OSError):
                sock.shutdown(socket_module.SHUT_RDWR)
        raise ConnectionResetError(
            f"injected {kind} before {frame.get('event')!r} frame"
        )

    # -- evaluation ---------------------------------------------------

    async def _handle_evaluate(self, request, writer) -> None:
        rid = request.id
        if self._closing:
            await self._send(
                writer,
                error_event(rid, "shutting-down", "the server is draining"),
            )
            return
        try:
            scenario = request_to_scenario(request.scenario)
            if request.options.get("executor") is not None:
                get_executor(request.options["executor"])  # fail fast on bad names
        except (InvalidParameterError, ProtocolError) as error:
            await self._send(writer, error_event(rid, "invalid", str(error)))
            return
        spec = scenario.to_campaign_spec()
        key = _cache_key(spec)

        # Hot path: the full grid is already in the store — answer from
        # disk without occupying a job slot.
        if self._store is not None:
            cached = await asyncio.to_thread(self._store.load, key)
            if cached is not None and cached.shape == spec.grid_shape:
                self.stats["served_from_cache"] += 1
                await self._send(
                    writer,
                    accepted_event(
                        rid,
                        spec_hash=spec.spec_hash(),
                        n_units=spec.n_units,
                        deduplicated=False,
                    ),
                )
                payload = result_payload(
                    scenario_name=scenario.name,
                    objective=scenario.objective,
                    spec_hash=spec.spec_hash(),
                    values=cached,
                    served_from="cache",
                    executor_name="cache",
                    cells_from_cache=spec.n_units,
                    cells_computed=0,
                    elapsed_seconds=0.0,
                )
                await self._send(writer, result_event(rid, payload))
                return

        job = self._jobs.get(key)
        deduplicated = job is not None
        if job is None:
            if len(self._jobs) >= self.config.max_pending:
                self.stats["rejected_busy"] += 1
                await self._send(
                    writer,
                    error_event(
                        rid,
                        "busy",
                        f"{len(self._jobs)} jobs in flight "
                        f"(max_pending={self.config.max_pending}); retry later",
                    ),
                )
                return
            job = _Job(key, scenario, spec)
            self._jobs[key] = job
            job.task = asyncio.create_task(self._run_job(job, request.options))
        else:
            self.stats["deduplicated"] += 1

        queue = job.subscribe()
        await self._send(
            writer,
            accepted_event(
                rid,
                spec_hash=spec.spec_hash(),
                n_units=spec.n_units,
                deduplicated=deduplicated,
            ),
        )
        loop = asyncio.get_running_loop()
        timeout = request.options.get("timeout", self.config.request_timeout)
        deadline = None if timeout is None else loop.time() + float(timeout)
        try:
            while True:
                remaining = None if deadline is None else deadline - loop.time()
                if remaining is not None and remaining <= 0:
                    raise asyncio.TimeoutError
                item = await asyncio.wait_for(queue.get(), remaining)
                kind = item[0]
                if kind == "progress":
                    await self._send(writer, progress_event(rid, item[1], item[2]))
                elif kind == "result":
                    payload = dict(item[1])
                    if deduplicated:
                        payload["served_from"] = "joined"
                        payload["chunk_retries"] = 0
                        payload["pool_rebuilds"] = 0
                    await self._send(writer, result_event(rid, payload))
                    return
                else:
                    await self._send(
                        writer,
                        error_event(rid, item[1], item[2], retryable=item[3]),
                    )
                    return
        except asyncio.TimeoutError:
            self.stats["timeouts"] += 1
            await self._send(
                writer,
                # Retryable: an identical re-request joins the still-running
                # job (or hits the cache once it lands) — it never forks a
                # divergent second evaluation.
                error_event(
                    rid,
                    "timeout",
                    f"no result within {timeout} s; the job keeps running "
                    "and will be served from cache when done",
                    retryable=True,
                ),
            )
        finally:
            job.unsubscribe(queue)

    async def _run_job(self, job: _Job, options: dict) -> None:
        """Evaluate one job in a worker thread; publish to subscribers."""
        loop = asyncio.get_running_loop()

        def progress(done: int, total: int) -> None:
            loop.call_soon_threadsafe(job.publish, ("progress", done, total))

        try:
            result = await asyncio.to_thread(
                self._evaluate, job.spec, options, progress
            )
        except CampaignTimeoutError as error:
            # The propagated deadline stopped the chunk loop; completed
            # chunks are checkpointed, so with a cache a retry resumes.
            self.stats["timeouts"] += 1
            outcome = ("error", "timeout", str(error), self._store is not None)
        except InvalidParameterError as error:
            self.stats["failed"] += 1
            outcome = ("error", "invalid", str(error), False)
        except Exception as error:  # noqa: BLE001 - the daemon must survive jobs
            self.stats["failed"] += 1
            outcome = ("error", "internal", f"{type(error).__name__}: {error}", False)
        else:
            served_from = "cache" if result.from_cache else "computed"
            self.stats["served_from_cache" if result.from_cache else "computed"] += 1
            self.stats["chunk_retries"] += result.chunk_retries
            self.stats["pool_rebuilds"] += result.pool_rebuilds
            outcome = (
                "result",
                result_payload(
                    scenario_name=job.scenario.name,
                    objective=job.scenario.objective,
                    spec_hash=job.spec.spec_hash(),
                    values=result.values,
                    served_from=served_from,
                    executor_name=result.executor_name,
                    cells_from_cache=result.cells_from_cache,
                    cells_computed=result.cells_computed,
                    elapsed_seconds=result.elapsed_seconds,
                    chunk_retries=result.chunk_retries,
                    pool_rebuilds=result.pool_rebuilds,
                ),
            )
        # Pop before publishing (both happen without an await between
        # them, so no subscriber can join a finished job): the next
        # identical request starts fresh and hits the cache hot path.
        self._jobs.pop(job.key, None)
        job.publish(outcome)

    def _evaluate(self, spec, options: dict, progress):
        """Run one campaign synchronously (called in a worker thread).

        The request's timeout propagates into the chunk loop as a
        monotonic deadline: the engine aborts between chunks once it
        passes, so an abandoned request stops consuming pool workers
        instead of computing to completion for nobody.  Completed chunks
        stay checkpointed — a retry resumes from them.
        """
        executor = self._executor
        if options.get("executor") is not None:
            executor = get_executor(options["executor"])
        timeout = options.get("timeout", self.config.request_timeout)
        deadline = None if timeout is None else time.monotonic() + float(timeout)
        return run_campaign(
            spec,
            executor=executor,
            cache=self._store,
            progress=progress,
            chunk_size=options.get("chunk_size", self.config.chunk_size),
            fault_plan=self._fault_plan,
            deadline=deadline,
        )


def serve(config: ServeConfig) -> None:
    """Run a campaign server to completion (blocking convenience door)."""
    server = CampaignServer(config)
    asyncio.run(server.serve_forever())
