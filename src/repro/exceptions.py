"""Exception hierarchy for the :mod:`repro` library.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything from this package with a single ``except`` clause while
still being able to discriminate finer-grained failure modes.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every exception raised by the :mod:`repro` library."""


class InvalidParameterError(ReproError, ValueError):
    """A user-supplied parameter is outside its documented domain."""


class InvalidDistributionError(InvalidParameterError):
    """A probability vector/matrix is malformed (negative or not normalized)."""


class InvalidProtocolError(InvalidParameterError):
    """A protocol description violates its structural invariants.

    Examples: phase durations that do not sum to one, a node scheduled to
    transmit and receive in the same phase (half-duplex violation), or an
    unknown protocol name.
    """


class InfeasibleProblemError(ReproError):
    """An optimization problem admits no feasible point."""


class UnboundedProblemError(ReproError):
    """An optimization problem is unbounded in the improving direction."""


class ConvergenceError(ReproError):
    """An iterative algorithm failed to converge within its iteration budget."""


class IncompleteCampaignError(ReproError):
    """A campaign gather found grid cells that no shard has computed yet.

    Raised by :func:`repro.campaign.engine.gather_campaign` when the chunk
    entries present in the cache do not cover the spec's full flat grid.
    ``missing`` holds the uncovered ``(start, stop)`` unit ranges so
    operators can tell which shards still have to run (or resume).
    """

    def __init__(self, message: str, missing=()):
        super().__init__(message)
        self.missing = tuple(missing)


class SimulationError(ReproError):
    """A link-level simulation was configured inconsistently."""


class HalfDuplexViolationError(SimulationError):
    """A node attempted to transmit and receive simultaneously."""
