"""Exception hierarchy for the :mod:`repro` library.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything from this package with a single ``except`` clause while
still being able to discriminate finer-grained failure modes.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every exception raised by the :mod:`repro` library."""


class InvalidParameterError(ReproError, ValueError):
    """A user-supplied parameter is outside its documented domain."""


class InvalidDistributionError(InvalidParameterError):
    """A probability vector/matrix is malformed (negative or not normalized)."""


class InvalidProtocolError(InvalidParameterError):
    """A protocol description violates its structural invariants.

    Examples: phase durations that do not sum to one, a node scheduled to
    transmit and receive in the same phase (half-duplex violation), or an
    unknown protocol name.
    """


class InfeasibleProblemError(ReproError):
    """An optimization problem admits no feasible point."""


class UnboundedProblemError(ReproError):
    """An optimization problem is unbounded in the improving direction."""


class ConvergenceError(ReproError):
    """An iterative algorithm failed to converge within its iteration budget."""


class IncompleteCampaignError(ReproError):
    """A campaign gather found grid cells that no shard has computed yet.

    Raised by :func:`repro.campaign.engine.gather_campaign` when the chunk
    entries present in the cache do not cover the spec's full flat grid.
    ``missing`` holds the uncovered ``(start, stop)`` unit ranges so
    operators can tell which shards still have to run (or resume).
    """

    def __init__(self, message: str, missing=()):
        super().__init__(message)
        self.missing = tuple(missing)


class RetryableChunkError(ReproError):
    """A chunk evaluation failed in a way that is safe to retry.

    The campaign engine re-dispatches chunks whose failure derives from this
    class (or from :class:`concurrent.futures.BrokenExecutor`) with capped
    exponential backoff.  Every other exception is fatal and propagates
    unchanged: retrying would mask a real defect rather than a transient
    fault.  Completed chunks are already checkpointed in the cache, so a
    retry never recomputes finished work.
    """


class ChunkRetryExhaustedError(ReproError):
    """A chunk kept failing retryably until the retry budget ran out.

    ``chunk`` holds the failing ``(start, stop)`` unit range and ``attempts``
    the number of attempts made; the final underlying failure is chained as
    ``__cause__``.  Chunks completed before the exhaustion remain
    checkpointed, so rerunning the campaign resumes rather than restarts.
    """

    def __init__(self, message: str, *, chunk=None, attempts: int = 0):
        super().__init__(message)
        self.chunk = tuple(chunk) if chunk is not None else None
        self.attempts = int(attempts)


class CampaignTimeoutError(ReproError):
    """A campaign's deadline expired before every grid cell was evaluated.

    ``completed``/``total`` count grid cells at the moment of the abort.
    The abort happens at a chunk boundary, so everything already computed is
    checkpointed in the cache and a rerun resumes from it.
    """

    def __init__(self, message: str, *, completed: int = 0, total: int = 0):
        super().__init__(message)
        self.completed = int(completed)
        self.total = int(total)


class SimulationError(ReproError):
    """A link-level simulation was configured inconsistently."""


class HalfDuplexViolationError(SimulationError):
    """A node attempted to transmit and receive simultaneously."""
