"""repro — bidirectional coded cooperation: performance bounds and simulation.

A production-quality reproduction of *"Performance Bounds for Bidirectional
Coded Cooperation Protocols"* (Kim, Mitran, Tarokh): capacity inner/outer
bounds for the DT, MABC, TDBC and HBC half-duplex relaying protocols,
LP-exact rate-region geometry, a Lemma-1 cut-set engine, quasi-static
fading Monte Carlo, and an operational link-level decode-and-forward
simulator with XOR network coding.

Quickstart::

    from repro import GaussianChannel, Protocol, achievable_region

    channel = GaussianChannel.from_db(power_db=10, gab_db=-7, gar_db=0, gbr_db=5)
    region = achievable_region(Protocol.HBC, channel)
    best = region.max_sum_rate()
    print(f"HBC sum rate {best.sum_rate:.3f} bits at durations {best.durations.values}")

Grid evaluation is scenario-first: declare (or name) a scenario and
evaluate it through the facade::

    from repro import evaluate, list_scenarios

    print(list_scenarios())
    result = evaluate("two-pair-round-robin")
    print(result.objective_rows())
"""

from .api import evaluate, gather
from .campaign import CampaignSpec, FadingSpec, GridAxis, RetryPolicy, run_campaign
from .channels.gains import LinkGains
from .faults import FaultPlan, FaultRule
from .core.capacity import (
    ProtocolComparison,
    achievable_region,
    compare_protocols,
    optimal_sum_rate,
    outer_bound_region,
)
from .core.gaussian import GaussianChannel
from .core.protocols import PhaseDurations, Protocol
from .core.regions import RateRegion
from .exceptions import ReproError
from .scenarios import (
    EvaluationResult,
    Scenario,
    get_scenario,
    list_scenarios,
    register_scenario,
)

__version__ = "1.2.0"

__all__ = [
    "evaluate",
    "gather",
    "EvaluationResult",
    "Scenario",
    "get_scenario",
    "list_scenarios",
    "register_scenario",
    "CampaignSpec",
    "FadingSpec",
    "FaultPlan",
    "FaultRule",
    "GridAxis",
    "RetryPolicy",
    "run_campaign",
    "LinkGains",
    "ProtocolComparison",
    "achievable_region",
    "compare_protocols",
    "optimal_sum_rate",
    "outer_bound_region",
    "GaussianChannel",
    "PhaseDurations",
    "Protocol",
    "RateRegion",
    "ReproError",
    "__version__",
]
