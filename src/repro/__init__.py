"""repro — bidirectional coded cooperation: performance bounds and simulation.

A production-quality reproduction of *"Performance Bounds for Bidirectional
Coded Cooperation Protocols"* (Kim, Mitran, Tarokh): capacity inner/outer
bounds for the DT, MABC, TDBC and HBC half-duplex relaying protocols,
LP-exact rate-region geometry, a Lemma-1 cut-set engine, quasi-static
fading Monte Carlo, and an operational link-level decode-and-forward
simulator with XOR network coding.

Quickstart::

    from repro import GaussianChannel, Protocol, achievable_region

    channel = GaussianChannel.from_db(power_db=10, gab_db=-7, gar_db=0, gbr_db=5)
    region = achievable_region(Protocol.HBC, channel)
    best = region.max_sum_rate()
    print(f"HBC sum rate {best.sum_rate:.3f} bits at durations {best.durations.values}")
"""

from .campaign import CampaignSpec, FadingSpec, run_campaign
from .channels.gains import LinkGains
from .core.capacity import (
    ProtocolComparison,
    achievable_region,
    compare_protocols,
    optimal_sum_rate,
    outer_bound_region,
)
from .core.gaussian import GaussianChannel
from .core.protocols import PhaseDurations, Protocol
from .core.regions import RateRegion
from .exceptions import ReproError

__version__ = "1.1.0"

__all__ = [
    "CampaignSpec",
    "FadingSpec",
    "run_campaign",
    "LinkGains",
    "ProtocolComparison",
    "achievable_region",
    "compare_protocols",
    "optimal_sum_rate",
    "outer_bound_region",
    "GaussianChannel",
    "PhaseDurations",
    "Protocol",
    "RateRegion",
    "ReproError",
    "__version__",
]
