"""Integration: failure injection — misbehaving relays and dead links.

The decode-and-forward protocols trust the relay's re-encoding. These
tests inject faults the analysis does not model (a corrupted relay
broadcast, a relay forwarding garbage) and verify the terminal-side
defenses behave as designed: CRC arbitration never accepts a wrong
payload silently, and TDBC's direct path takes over when it can.
"""

import numpy as np
import pytest

from repro.channels.awgn import ComplexAwgn
from repro.channels.gains import LinkGains
from repro.channels.halfduplex import HalfDuplexMedium
from repro.simulation.bits import random_bits, xor_bits
from repro.simulation.convolutional import TEST_CODE
from repro.simulation.crc import CRC8
from repro.simulation.linkcodec import LinkCodec
from repro.simulation.terminals import DecodePath, arbitrate_paths


@pytest.fixture
def codec():
    return LinkCodec(payload_bits=32, code=TEST_CODE, crc=CRC8)


@pytest.fixture
def quiet_medium():
    return HalfDuplexMedium(gains=LinkGains.from_db(0.0, 3.0, 6.0),
                            noise=ComplexAwgn(1e-9))


def run_tdbc_with_corrupt_relay(codec, medium, rng, *, corrupt_bits):
    """A TDBC exchange where the relay flips `corrupt_bits` of its frame."""
    amp = 3.0
    wa, wb = random_bits(rng, 32), random_bits(rng, 32)
    frame_a, frame_b = codec.crc.append(wa), codec.crc.append(wb)

    out1 = medium.run_phase({"a": amp * codec.encode_frame_bits(frame_a)}, rng)
    a_at_b_direct = codec.decode(
        out1.signal_at("b"),
        medium.complex_gains[frozenset(("a", "b"))], 1e-9, amplitude=amp)
    a_at_r = codec.decode(
        out1.signal_at("r"),
        medium.complex_gains[frozenset(("a", "r"))], 1e-9, amplitude=amp)

    out2 = medium.run_phase({"b": amp * codec.encode_frame_bits(frame_b)}, rng)
    b_at_r = codec.decode(
        out2.signal_at("r"),
        medium.complex_gains[frozenset(("b", "r"))], 1e-9, amplitude=amp)

    # The relay builds the XOR frame, then a fault flips bits in it.
    relay_frame = xor_bits(a_at_r.frame_bits, b_at_r.frame_bits).copy()
    for position in range(corrupt_bits):
        relay_frame[position] ^= 1
    out3 = medium.run_phase({"r": amp * codec.encode_frame_bits(relay_frame)},
                            rng)
    relay_at_b = codec.decode(
        out3.signal_at("b"),
        medium.complex_gains[frozenset(("b", "r"))], 1e-9, amplitude=amp)
    estimate = arbitrate_paths(codec, relay_frame=relay_at_b,
                               own_frame_bits=frame_b,
                               direct_frame=a_at_b_direct)
    return wa, estimate


class TestCorruptRelay:
    def test_clean_relay_uses_relay_path(self, codec, quiet_medium, rng):
        wa, estimate = run_tdbc_with_corrupt_relay(
            codec, quiet_medium, rng, corrupt_bits=0)
        assert estimate.path is DecodePath.RELAY
        np.testing.assert_array_equal(estimate.payload, wa)

    def test_corrupt_relay_falls_back_to_direct(self, codec, quiet_medium, rng):
        wa, estimate = run_tdbc_with_corrupt_relay(
            codec, quiet_medium, rng, corrupt_bits=3)
        assert estimate.path is DecodePath.DIRECT
        assert estimate.crc_ok
        np.testing.assert_array_equal(estimate.payload, wa)

    def test_corruption_never_accepted_silently(self, codec, quiet_medium):
        """Across many corruption patterns, a wrong payload is never
        delivered with crc_ok=True."""
        rng = np.random.default_rng(77)
        for corrupt_bits in (1, 2, 5, 8):
            wa, estimate = run_tdbc_with_corrupt_relay(
                codec, quiet_medium, rng, corrupt_bits=corrupt_bits)
            if estimate.crc_ok:
                np.testing.assert_array_equal(estimate.payload, wa)


class TestMabcNoFallback:
    def test_corrupt_relay_flagged_in_mabc(self, codec, quiet_medium, rng):
        """MABC has no direct path: a corrupted broadcast must surface as a
        flagged failure, not a wrong payload."""
        amp = 3.0
        wa, wb = random_bits(rng, 32), random_bits(rng, 32)
        frame_a, frame_b = codec.crc.append(wa), codec.crc.append(wb)
        corrupted = xor_bits(frame_a, frame_b).copy()
        corrupted[0] ^= 1
        out = quiet_medium.run_phase(
            {"r": amp * codec.encode_frame_bits(corrupted)}, rng)
        relay_at_b = codec.decode(
            out.signal_at("b"),
            quiet_medium.complex_gains[frozenset(("b", "r"))], 1e-9,
            amplitude=amp)
        estimate = arbitrate_paths(codec, relay_frame=relay_at_b,
                                   own_frame_bits=frame_b, direct_frame=None)
        assert estimate.path is DecodePath.FAILED
        assert not estimate.crc_ok
