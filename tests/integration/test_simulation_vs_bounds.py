"""Integration: the operational simulator against the analytic bounds.

These tests close the loop between the two halves of the library: the
link-level decode-and-forward system of :mod:`repro.simulation` must behave
the way the Section III/IV bounds predict — goodput below the bound,
success when operated far inside it, failure far outside it, and the
correct protocol ordering.
"""

import numpy as np
import pytest

from repro.channels.gains import LinkGains
from repro.core.capacity import optimal_sum_rate
from repro.core.gaussian import GaussianChannel
from repro.core.protocols import Protocol
from repro.simulation.convolutional import TEST_CODE
from repro.simulation.crc import CRC8
from repro.simulation.linkcodec import LinkCodec
from repro.simulation.montecarlo import simulate_protocol

FAST_CODEC = LinkCodec(payload_bits=64, code=TEST_CODE, crc=CRC8)


class TestGoodputRespectsBounds:
    @pytest.mark.parametrize("protocol", list(Protocol),
                             ids=[p.value for p in Protocol])
    def test_goodput_below_capacity_bound(self, protocol, paper_gains):
        power = 10.0
        report = simulate_protocol(protocol, paper_gains, power=power,
                                   n_rounds=12,
                                   rng=np.random.default_rng(11),
                                   codec=FAST_CODEC)
        bound = optimal_sum_rate(
            protocol, GaussianChannel(gains=paper_gains, power=power)
        ).sum_rate
        assert report.sum_goodput <= bound + 1e-9

    def test_all_protocols_clean_at_high_snr(self, paper_gains):
        for protocol in Protocol:
            report = simulate_protocol(protocol, paper_gains,
                                       power=10 ** 2.5,  # 25 dB
                                       n_rounds=8,
                                       rng=np.random.default_rng(12),
                                       codec=FAST_CODEC)
            assert report.a_to_b.fer == 0.0, protocol
            assert report.b_to_a.fer == 0.0, protocol


class TestOperationalOrdering:
    def test_mabc_goodput_beats_tdbc_when_both_clean(self, paper_gains):
        """Same payloads, fewer channel uses: the network-coding gain."""
        power = 10 ** 2.5
        mabc = simulate_protocol(Protocol.MABC, paper_gains, power=power,
                                 n_rounds=8, rng=np.random.default_rng(13),
                                 codec=FAST_CODEC)
        tdbc = simulate_protocol(Protocol.TDBC, paper_gains, power=power,
                                 n_rounds=8, rng=np.random.default_rng(13),
                                 codec=FAST_CODEC)
        assert mabc.a_to_b.fer == 0.0 and tdbc.a_to_b.fer == 0.0
        assert mabc.sum_goodput > tdbc.sum_goodput

    def test_relay_rescues_weak_direct_link(self):
        """The cellular motivation: cooperation where DT cannot operate."""
        gains = LinkGains.from_db(-25.0, 6.0, 9.0)
        power = 10.0
        dt = simulate_protocol(Protocol.DT, gains, power=power, n_rounds=10,
                               rng=np.random.default_rng(14), codec=FAST_CODEC)
        mabc = simulate_protocol(Protocol.MABC, gains, power=power,
                                 n_rounds=10, rng=np.random.default_rng(14),
                                 codec=FAST_CODEC)
        assert dt.sum_goodput < mabc.sum_goodput
        assert mabc.a_to_b.fer == 0.0

    def test_tdbc_side_information_rescues_broken_relay(self):
        """With a dead relay TDBC still delivers via the direct overhears."""
        gains = LinkGains.from_db(6.0, -25.0, -25.0)
        power = 10.0
        report = simulate_protocol(Protocol.TDBC, gains, power=power,
                                   n_rounds=10,
                                   rng=np.random.default_rng(15),
                                   codec=FAST_CODEC)
        # Relay decoding fails, but the direct path carries the frames.
        assert report.relay_failures > 0
        assert report.a_to_b.fer == 0.0
        assert report.b_to_a.fer == 0.0
