"""Integration: LP region geometry vs brute-force duration sampling.

The whole geometry layer rests on one claim: the union over Δ of the
fixed-Δ pentagons is convex and its boundary is traced exactly by the
weighted-sum LP. This test validates that claim the expensive way — sample
many durations on the simplex, collect every pentagon vertex, and check
that (a) each sampled vertex lies inside the LP region, and (b) the LP
boundary is not beaten anywhere by the sampled cloud.
"""

import itertools

import numpy as np
import pytest

from repro.core.bounds import bound_for
from repro.core.capacity import achievable_region
from repro.core.protocols import Protocol
from repro.core.regions import fixed_duration_polygon
from repro.core.terms import BoundKind


def simplex_grid(n_phases: int, steps: int):
    """All duration vectors on a regular simplex grid."""
    for combo in itertools.product(range(steps + 1), repeat=n_phases - 1):
        if sum(combo) <= steps:
            tail = steps - sum(combo)
            yield tuple(c / steps for c in combo) + (tail / steps,)


@pytest.mark.parametrize("protocol,steps", [
    (Protocol.MABC, 40),
    (Protocol.TDBC, 12),
    (Protocol.HBC, 6),
])
def test_lp_region_dominates_sampled_pentagons(protocol, steps, channel_high):
    spec = bound_for(protocol, BoundKind.INNER)
    evaluated = channel_high.evaluate(spec)
    region = achievable_region(protocol, channel_high)

    cloud = []
    for durations in simplex_grid(spec.n_phases, steps):
        for ra, rb in fixed_duration_polygon(evaluated, durations):
            cloud.append((ra, rb))
    cloud_arr = np.asarray(cloud)

    # (a) every sampled achievable point is inside the LP region.
    sample_idx = np.linspace(0, len(cloud) - 1, 25, dtype=int)
    for ra, rb in cloud_arr[sample_idx]:
        assert region.contains(ra * 0.999, rb * 0.999, tol=1e-7), (
            f"sampled point ({ra}, {rb}) outside the LP region"
        )

    # (b) no sampled point beats the LP boundary in any weight direction.
    boundary = region.boundary(17)
    for theta in np.linspace(0.1, np.pi / 2 - 0.1, 7):
        mu = np.array([np.cos(theta), np.sin(theta)])
        lp_value = float((boundary @ mu).max())
        cloud_value = float((cloud_arr @ mu).max())
        assert cloud_value <= lp_value + 1e-7, (
            f"duration grid beats the LP at weight {mu}: "
            f"{cloud_value} > {lp_value}"
        )


def test_time_sharing_convexifies(channel_high):
    """A 50/50 time share of two sampled operating points is achievable."""
    evaluated = channel_high.evaluate(bound_for(Protocol.MABC, BoundKind.INNER))
    region = achievable_region(Protocol.MABC, channel_high)
    caps_1 = evaluated.rate_caps((0.8, 0.2))
    caps_2 = evaluated.rate_caps((0.3, 0.7))
    point_1 = (caps_1["Ra"], min(caps_1["Rb"], caps_1["Ra+Rb"] - caps_1["Ra"]))
    point_2 = (caps_2["Ra"], min(caps_2["Rb"], caps_2["Ra+Rb"] - caps_2["Ra"]))
    midpoint = (0.5 * (point_1[0] + point_2[0]),
                0.5 * (point_1[1] + point_2[1]))
    assert region.contains(midpoint[0] * 0.999, midpoint[1] * 0.999, tol=1e-7)
