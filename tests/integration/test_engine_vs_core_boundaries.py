"""Integration: engine-LP boundaries == core-LP boundaries.

The outer-bound boundary can be computed two ways: through the hand-coded
theorem pipeline (`RateRegion` over `GaussianChannel.evaluate`) and through
the mechanical pipeline (Lemma-1 engine + `cutset_boundary`). Both must
produce the same curve — the full-stack version of the per-constraint
cross-checks in the property tests.
"""

import numpy as np
import pytest

from repro.core.capacity import outer_bound_region
from repro.core.cutset_lp import cutset_boundary, cutset_max_sum_rate
from repro.core.protocols import Protocol, protocol_schedule
from repro.network.cutset import GaussianMIOracle, cutset_outer_bound
from repro.network.model import bidirectional_relay_network


@pytest.mark.parametrize("protocol,n_phases", [
    (Protocol.MABC, 2),
    (Protocol.TDBC, 3),
    (Protocol.HBC, 4),
    (Protocol.NAIVE4, 4),
])
class TestBoundaryEquivalence:
    def test_boundaries_match(self, protocol, n_phases, channel_high):
        constraints = cutset_outer_bound(
            bidirectional_relay_network(),
            protocol_schedule(protocol),
            GaussianMIOracle(gains=channel_high.gains,
                             power=channel_high.power),
        )
        engine_boundary = cutset_boundary(constraints, n_phases, n_points=9)
        core_boundary = outer_bound_region(protocol, channel_high).boundary(9)
        # Compare as supporting values per weight direction: both are exact
        # LP solutions of the same feasible set.
        for theta in np.linspace(0.05, np.pi / 2 - 0.05, 5):
            mu = np.array([np.cos(theta), np.sin(theta)])
            engine_value = (engine_boundary @ mu).max()
            core_value = (core_boundary @ mu).max()
            assert engine_value == pytest.approx(core_value, abs=1e-6)

    def test_sum_rates_match(self, protocol, n_phases, channel_low):
        constraints = cutset_outer_bound(
            bidirectional_relay_network(),
            protocol_schedule(protocol),
            GaussianMIOracle(gains=channel_low.gains, power=channel_low.power),
        )
        engine_point = cutset_max_sum_rate(constraints, n_phases)
        core_point = outer_bound_region(protocol, channel_low).max_sum_rate()
        assert engine_point.sum_rate == pytest.approx(core_point.sum_rate,
                                                      abs=1e-7)
