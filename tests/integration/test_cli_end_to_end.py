"""Integration: CLI entry points against the real experiment harness."""

import pytest

from repro.cli import main


class TestFigureCommands:
    def test_fig4_single_panel_exits_clean(self, capsys):
        code = main(["fig4", "--power-db", "10"])
        out = capsys.readouterr().out
        assert code == 0
        assert "[PASS]" in out
        assert "[FAIL]" not in out

    def test_fig4_csv_export(self, capsys, tmp_path):
        code = main(["fig4", "--power-db", "0", "--csv-dir", str(tmp_path)])
        out = capsys.readouterr().out
        assert code == 0
        assert "wrote" in out
        assert list(tmp_path.glob("*.csv"))

    def test_fig3_exits_clean(self, capsys):
        code = main(["fig3"])
        out = capsys.readouterr().out
        assert code == 0
        assert "placement sweep" in out
        assert "[FAIL]" not in out


class TestAnalysisCommands:
    def test_region_matches_sumrate(self, capsys):
        args = ["--power-db", "10", "--gab-db", "-7", "--gar-db", "0",
                "--gbr-db", "5"]
        assert main(["region", "--protocol", "hbc", "--points", "9"] + args) == 0
        region_out = capsys.readouterr().out
        assert main(["sumrate"] + args) == 0
        sumrate_out = capsys.readouterr().out
        # Both views must report the same HBC optimum (3.3313 at P=10 dB).
        assert "3.3313" in region_out
        assert "3.3313" in sumrate_out

    def test_simulate_protocols(self, capsys):
        for protocol in ("dt", "mabc", "tdbc", "hbc"):
            code = main([
                "simulate", "--protocol", protocol, "--rounds", "2",
                "--payload-bits", "32", "--power-db", "22",
            ])
            out = capsys.readouterr().out
            assert code == 0
            assert "goodput" in out
