"""Integration: full experiment registry runs with the paper parameters."""

import pytest

from repro.experiments.runner import EXPERIMENT_IDS, run_experiment


@pytest.fixture(scope="module")
def reports():
    return {eid: run_experiment(eid) for eid in EXPERIMENT_IDS}


class TestRegistryEndToEnd:
    def test_every_registered_experiment_runs(self, reports):
        assert set(reports) == set(EXPERIMENT_IDS)

    def test_every_shape_check_passes(self, reports):
        for eid, report in reports.items():
            failing = [n for n, ok in report.checks.items() if not ok]
            assert not failing, f"{eid} failed: {failing}"

    def test_reports_render_nonempty(self, reports):
        for report in reports.values():
            text = report.render()
            assert len(text) > 200
            assert "[FAIL]" not in text

    def test_fig3_tables_cover_both_sweeps(self, reports):
        titles = [t for t, _h, _r in reports["fig3"].tables]
        assert any("placement" in t for t in titles)
        assert any("symmetric" in t for t in titles)

    def test_fig4_panels_have_all_regions(self, reports):
        for eid in ("fig4a", "fig4b"):
            summary_title, headers, rows = reports[eid].tables[0]
            region_names = {row[0] for row in rows}
            assert region_names == {"DT", "MABC", "TDBC inner",
                                    "TDBC outer", "HBC"}

    def test_headline_points_reported_at_high_snr(self, reports):
        titles = [t for t, _h, _r in reports["fig4b"].tables]
        assert any("outside both" in t for t in titles)

    def test_csv_export_all_experiments(self, reports, tmp_path):
        for eid, report in reports.items():
            paths = report.write_csvs(tmp_path / eid)
            assert paths
            for path in paths:
                assert path.exists()
                assert path.stat().st_size > 0
