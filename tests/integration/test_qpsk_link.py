"""Integration: the link-level stack with QPSK modulation.

The production codec defaults to BPSK; QPSK halves the channel uses per
frame at 3 dB less energy per bit. These tests run the full protocol
engine with a QPSK codec to verify the modulation layer composes with
coding, SIC and network coding end to end.
"""

import numpy as np
import pytest

from repro.channels.awgn import ComplexAwgn
from repro.channels.gains import LinkGains
from repro.channels.halfduplex import HalfDuplexMedium
from repro.core.protocols import Protocol
from repro.simulation.bits import random_bits
from repro.simulation.convolutional import TEST_CODE
from repro.simulation.crc import CRC8
from repro.simulation.engine import ProtocolEngine
from repro.simulation.linkcodec import LinkCodec
from repro.simulation.modulation import Qpsk


@pytest.fixture
def qpsk_codec():
    return LinkCodec(payload_bits=32, code=TEST_CODE, crc=CRC8,
                     modulation=Qpsk())


@pytest.fixture
def bpsk_codec():
    return LinkCodec(payload_bits=32, code=TEST_CODE, crc=CRC8)


def make_engine(codec, noise_power=1e-6):
    medium = HalfDuplexMedium(gains=LinkGains.from_db(-3.0, 3.0, 6.0),
                              noise=ComplexAwgn(noise_power))
    return ProtocolEngine(medium=medium, codec=codec, power=10.0)


class TestQpskCodec:
    def test_halves_symbol_count(self, qpsk_codec, bpsk_codec):
        assert qpsk_codec.coded_bits == bpsk_codec.coded_bits
        assert qpsk_codec.n_symbols == bpsk_codec.n_symbols / 2

    def test_doubles_rate(self, qpsk_codec, bpsk_codec):
        assert qpsk_codec.rate == pytest.approx(2 * bpsk_codec.rate)

    def test_clean_roundtrip(self, qpsk_codec, rng):
        payload = random_bits(rng, 32)
        frame = qpsk_codec.decode(qpsk_codec.encode(payload), 1.0 + 0j, 1e-9)
        assert frame.crc_ok
        np.testing.assert_array_equal(frame.payload, payload)


class TestQpskProtocols:
    @pytest.mark.parametrize("protocol", list(Protocol),
                             ids=[p.value for p in Protocol])
    def test_clean_channel_round(self, protocol, qpsk_codec, rng):
        engine = make_engine(qpsk_codec)
        wa, wb = random_bits(rng, 32), random_bits(rng, 32)
        result = engine.run_round(protocol, wa, wb, rng)
        assert result.success_a_to_b
        assert result.success_b_to_a

    def test_qpsk_goodput_doubles_bpsk(self, qpsk_codec, bpsk_codec, rng):
        qpsk_engine = make_engine(qpsk_codec)
        bpsk_engine = make_engine(bpsk_codec)
        wa, wb = random_bits(rng, 32), random_bits(rng, 32)
        qpsk_result = qpsk_engine.run_mabc_round(wa, wb, rng)
        bpsk_result = bpsk_engine.run_mabc_round(wa, wb, rng)
        assert qpsk_result.success_a_to_b and bpsk_result.success_a_to_b
        assert qpsk_result.n_symbols == bpsk_result.n_symbols / 2
