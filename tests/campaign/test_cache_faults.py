"""Torn and corrupted cache writes: atomicity plus verification win.

Entry writes are atomic (temp file + ``os.replace``), so a writer dying
mid-write publishes *nothing*; entries that do land carry a SHA-256
digest, so post-publication corruption is detected, discarded and
recomputed — never served.  The ``torn-write`` fault rules drive both
failure modes deterministically through the real write path.
"""

import threading

import numpy as np
import pytest

from repro.campaign.cache import CampaignCache
from repro.campaign.engine import _cache_key, run_campaign
from repro.campaign.spec import CampaignSpec, FadingSpec
from repro.core.protocols import Protocol
from repro.faults import FaultInjector, FaultPlan, FaultRule


@pytest.fixture
def spec(paper_gains):
    return CampaignSpec(
        protocols=(Protocol.MABC, Protocol.TDBC),
        powers_db=(0.0, 10.0),
        gains=(paper_gains,),
        fading=FadingSpec(n_draws=12, seed=11),
    )


@pytest.fixture
def reference(spec):
    return run_campaign(spec, executor="vectorized")


def chunk_entry_site(start, stop):
    """The cache-write site string of a chunk entry file."""
    return f"units-{start:010d}-{stop:010d}"


class TestTornWriteModes:
    def test_crash_mode_publishes_nothing(self, spec, reference, tmp_path):
        cache = CampaignCache(tmp_path)
        plan = FaultPlan(
            rules=(
                FaultRule(
                    kind="torn-write", site=chunk_entry_site(0, 16), mode="crash"
                ),
            )
        )
        result = run_campaign(
            spec, executor="serial", cache=cache, chunk_size=16, fault_plan=plan
        )
        # The in-memory result never depended on the store.
        assert result.values.tobytes() == reference.values.tobytes()
        key = _cache_key(spec)
        # Atomicity: the sabotaged chunk simply does not exist — no torn
        # file at the final path, while its siblings all landed.
        assert not cache.chunk_path_for(key, 0, 16).exists()
        assert cache.chunk_path_for(key, 16, 32).exists()
        # A rerun recomputes exactly the missing chunk.
        cache.path_for(key).unlink()
        rerun = run_campaign(spec, cache=cache, chunk_size=16)
        assert rerun.cells_computed == 16
        assert rerun.cells_from_cache == spec.n_units - 16
        assert rerun.values.tobytes() == reference.values.tobytes()

    def test_corrupt_mode_is_detected_and_recomputed(self, spec, reference, tmp_path):
        cache = CampaignCache(tmp_path)
        plan = FaultPlan(
            rules=(FaultRule(kind="torn-write", site=chunk_entry_site(16, 32)),)
        )
        run_campaign(
            spec, executor="serial", cache=cache, chunk_size=16, fault_plan=plan
        )
        key = _cache_key(spec)
        # The entry landed, but truncated: verification must refuse it.
        assert cache.chunk_path_for(key, 16, 32).exists()
        assert cache.load_chunk(key, 16, 32) is None
        assert not cache.chunk_path_for(key, 16, 32).exists()  # discarded
        cache.path_for(key).unlink()
        rerun = run_campaign(spec, cache=cache, chunk_size=16)
        assert rerun.values.tobytes() == reference.values.tobytes()

    def test_injector_counts_fired_rules(self, tmp_path):
        cache = CampaignCache(tmp_path)
        injector = FaultInjector(
            FaultPlan(rules=(FaultRule(kind="torn-write", mode="crash"),))
        )
        sabotaged = cache.with_injector(injector)
        values = np.arange(4.0)
        sabotaged.store_chunk("key", 0, 4, values, {})
        assert injector.fired == {"torn-write": 1}
        # times=1: the second write of the same entry goes through clean.
        sabotaged.store_chunk("key", 0, 4, values, {})
        assert injector.fired == {"torn-write": 1}
        assert np.array_equal(cache.load_chunk("key", 0, 4), values)

    def test_original_store_stays_fault_free(self, tmp_path):
        cache = CampaignCache(tmp_path)
        injector = FaultInjector(
            FaultPlan(rules=(FaultRule(kind="torn-write", times=None),))
        )
        cache.with_injector(injector)  # the view is discarded
        values = np.arange(4.0)
        cache.store_chunk("key", 0, 4, values, {})
        assert np.array_equal(cache.load_chunk("key", 0, 4), values)


class TestConcurrentCorruptedStore:
    def test_two_executors_racing_a_corrupting_store_converge(
        self, spec, reference, tmp_path
    ):
        """Satellite guarantee: shared store + constant corruption of fresh
        writes, two concurrent runs — both results bitwise-identical."""
        # Every chunk entry either run publishes is immediately truncated,
        # so any cross-read must be caught by digest verification.
        plan = FaultPlan(
            rules=(FaultRule(kind="torn-write", site="units-", times=None),)
        )
        results = {}
        errors = []

        def race(tag, executor):
            try:
                results[tag] = run_campaign(
                    spec,
                    executor=executor,
                    cache=tmp_path,
                    chunk_size=16,
                    fault_plan=plan,
                )
            except Exception as error:  # pragma: no cover - diagnostic
                errors.append(error)

        threads = [
            threading.Thread(target=race, args=("serial", "serial")),
            threading.Thread(target=race, args=("vectorized", "vectorized")),
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120)
        assert not errors
        assert results["serial"].values.tobytes() == reference.values.tobytes()
        assert results["vectorized"].values.tobytes() == reference.values.tobytes()
        # The store self-repairs once the chaos stops: a clean rerun
        # converges too (recomputing whatever was left corrupted).
        rerun = run_campaign(spec, cache=tmp_path, chunk_size=16)
        assert rerun.values.tobytes() == reference.values.tobytes()
