"""Traffic objectives through the campaign stack.

The tentpole guarantees of the traffic layer's campaign wiring:

* a ``TrafficSpec`` serializes only when set, so every pre-traffic spec
  hash (and therefore every cache entry) is untouched;
* traffic cells evaluate **bitwise identically** under every executor
  and under ``--shard I/N`` + gather, because the one dispatch seam
  (``_evaluate_link_units``) seeds each cell from its flat unit index.
"""

import numpy as np
import pytest

from repro.campaign.cache import CampaignCache
from repro.campaign.engine import gather_campaign, run_campaign
from repro.campaign.spec import CampaignSpec, LinkSimSpec, TrafficSpec
from repro.channels.gains import LinkGains
from repro.core.protocols import Protocol
from repro.exceptions import InvalidParameterError

PAPER_GAINS = LinkGains.from_db(-7.0, 0.0, 5.0)


def traffic_spec():
    """A small (protocols x powers x gains) latency grid with 2 pairs."""
    return CampaignSpec(
        protocols=(Protocol.MABC, Protocol.TDBC),
        powers_db=(8.0, 12.0),
        gains=(PAPER_GAINS, LinkGains.from_db(-4.0, 2.0, 2.0)),
        link=LinkSimSpec(
            n_rounds=48,
            payload_bits=32,
            seed=3,
            metric="latency",
            traffic=TrafficSpec(
                rates=(0.5, 0.25),
                buffer_frames=8,
                arq_limit=3,
                scheduler="longest-queue",
                pair_offsets_db=((0.0, 0.0, 0.0), (-2.0, 3.0, -3.0)),
            ),
        ),
    )


class TestTrafficSpecValidation:
    def test_metric_requires_traffic_parameters(self):
        with pytest.raises(InvalidParameterError, match="traffic"):
            LinkSimSpec(n_rounds=8, payload_bits=32, seed=0, metric="latency")

    def test_traffic_parameters_require_a_traffic_metric(self):
        with pytest.raises(InvalidParameterError, match="traffic"):
            LinkSimSpec(
                n_rounds=8, payload_bits=32, seed=0, traffic=TrafficSpec()
            )

    def test_stable_throughput_requires_offered_loads(self):
        with pytest.raises(InvalidParameterError, match="offered_loads"):
            LinkSimSpec(
                n_rounds=8,
                payload_bits=32,
                seed=0,
                metric="stable_throughput",
                traffic=TrafficSpec(),
            )

    def test_traffic_rejects_adaptive_round_budgets(self):
        with pytest.raises(InvalidParameterError, match="fixed slot horizon"):
            LinkSimSpec(
                n_rounds=8,
                payload_bits=32,
                seed=0,
                metric="latency",
                traffic=TrafficSpec(),
                target_rel_error=0.3,
                max_rounds=32,
            )

    def test_rates_broadcast_or_match_pairs(self):
        two_pair = ((0.0, 0.0, 0.0), (-2.0, 3.0, -3.0))
        assert TrafficSpec(
            rates=(0.5,), pair_offsets_db=two_pair
        ).pair_rates() == (0.5, 0.5)
        assert TrafficSpec(
            rates=(0.5, 0.25), pair_offsets_db=two_pair
        ).pair_rates() == (0.5, 0.25)
        with pytest.raises(InvalidParameterError):
            TrafficSpec(rates=(0.5, 0.25, 0.1), pair_offsets_db=two_pair)

    @pytest.mark.parametrize(
        "overrides",
        [
            {"scheduler": "priority"},
            {"arrival": "selfsimilar"},
            {"buffer_frames": 0},
            {"arq_limit": 0},
            {"burst_size": 0},
            {"rates": (0.0,)},
            {"latency_quantile": 0.0},
            {"latency_quantile": 1.5},
            {"knee_tolerance": 1.0},
            {"offered_loads": (0.5, 0.0)},
            {"pair_offsets_db": ()},
            {"pair_offsets_db": ((0.0, 1.0),)},
        ],
    )
    def test_malformed_traffic_parameters_rejected(self, overrides):
        with pytest.raises(InvalidParameterError):
            TrafficSpec(**overrides)


class TestTrafficSpecSerialization:
    def test_traffic_serializes_only_when_set(self):
        classic = CampaignSpec(
            protocols=(Protocol.MABC,),
            powers_db=(10.0,),
            gains=(PAPER_GAINS,),
            link=LinkSimSpec(n_rounds=8, payload_bits=32, seed=0),
        )
        assert "traffic" not in classic.to_dict()["link"]
        assert "traffic" in traffic_spec().to_dict()["link"]

    def test_round_trips_through_dict_with_stable_hash(self):
        spec = traffic_spec()
        clone = CampaignSpec.from_dict(spec.to_dict())
        assert clone == spec
        assert clone.spec_hash() == spec.spec_hash()

    def test_optional_fields_serialize_only_when_meaningful(self):
        base = TrafficSpec().to_dict()
        assert "burst_size" not in base
        assert "latency_quantile" not in base
        assert "offered_loads" not in base
        bursty = TrafficSpec(arrival="bursty", burst_size=3).to_dict()
        assert bursty["burst_size"] == 3
        swept = TrafficSpec(offered_loads=(0.5, 1.0)).to_dict()
        assert swept["offered_loads"] == [0.5, 1.0]
        assert "knee_tolerance" in swept

    def test_traffic_parameters_move_the_hash(self):
        spec = traffic_spec()
        other = traffic_spec()
        object.__setattr__(
            other.link.traffic, "scheduler", "opportunistic"
        )
        assert spec.spec_hash() != CampaignSpec.from_dict(other.to_dict()).spec_hash()


class TestExecutorsAndSharding:
    @pytest.fixture(scope="class")
    def spec(self):
        return traffic_spec()

    @pytest.fixture(scope="class")
    def serial_values(self, spec):
        return run_campaign(spec, executor="serial", cache=False).values

    def test_latency_values_are_finite_and_positive(self, serial_values):
        assert np.all(np.isfinite(serial_values))
        assert np.all(serial_values >= 1.0)

    @pytest.mark.parametrize("executor", ["process", "vectorized", "async"])
    def test_executors_agree_bitwise_on_traffic_grid(
        self, spec, serial_values, executor
    ):
        values = run_campaign(spec, executor=executor, cache=False).values
        assert np.array_equal(values, serial_values)

    def test_shard_gather_matches_unsharded_bitwise(
        self, spec, serial_values, tmp_path
    ):
        cache = CampaignCache(tmp_path)
        for index in range(3):
            run_campaign(
                spec,
                executor="vectorized",
                cache=cache,
                shard=spec.shard(index, 3),
            )
        gathered = gather_campaign(spec, cache)
        assert np.array_equal(gathered.values, serial_values)

    def test_cache_round_trip_is_bitwise(self, spec, serial_values, tmp_path):
        cache = CampaignCache(tmp_path)
        run_campaign(spec, executor="vectorized", cache=cache)
        reread = run_campaign(spec, executor="serial", cache=cache)
        assert reread.from_cache
        assert np.array_equal(reread.values, serial_values)
