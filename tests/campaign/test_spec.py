"""Unit tests for campaign specifications, sharding and grid expansion."""

import numpy as np
import pytest

from repro.campaign.spec import (
    CampaignShard,
    CampaignSpec,
    FadingSpec,
    WorkUnit,
    chunk_ranges,
)
from repro.core.protocols import Protocol
from repro.exceptions import InvalidParameterError


@pytest.fixture
def small_spec(paper_gains):
    return CampaignSpec(
        protocols=(Protocol.MABC, Protocol.HBC),
        powers_db=(0.0, 10.0),
        gains=(paper_gains,),
        fading=FadingSpec(n_draws=5, seed=3),
    )


class TestValidation:
    def test_empty_protocols_rejected(self, paper_gains):
        with pytest.raises(InvalidParameterError):
            CampaignSpec(protocols=(), powers_db=(10.0,), gains=(paper_gains,))

    def test_duplicate_protocols_rejected(self, paper_gains):
        with pytest.raises(InvalidParameterError):
            CampaignSpec(
                protocols=(Protocol.MABC, Protocol.MABC),
                powers_db=(10.0,),
                gains=(paper_gains,),
            )

    def test_empty_powers_rejected(self, paper_gains):
        with pytest.raises(InvalidParameterError):
            CampaignSpec(protocols=(Protocol.MABC,), powers_db=(), gains=(paper_gains,))

    def test_empty_gains_rejected(self):
        with pytest.raises(InvalidParameterError):
            CampaignSpec(protocols=(Protocol.MABC,), powers_db=(10.0,), gains=())

    def test_non_gains_rejected(self):
        with pytest.raises(InvalidParameterError):
            CampaignSpec(
                protocols=(Protocol.MABC,),
                powers_db=(10.0,),
                gains=((1.0, 2.0, 3.0),),
            )

    def test_bad_fading_rejected(self):
        with pytest.raises(InvalidParameterError):
            FadingSpec(n_draws=0)
        with pytest.raises(InvalidParameterError):
            FadingSpec(n_draws=5, k_factor=-1.0)


class TestExpansion:
    def test_grid_shape_and_unit_count(self, small_spec):
        assert small_spec.grid_shape == (2, 2, 1, 5)
        assert small_spec.n_units == 20

    def test_expand_yields_every_unit_in_order(self, small_spec):
        units = list(small_spec.expand())
        assert len(units) == small_spec.n_units
        assert [u.index for u in units] == list(range(small_spec.n_units))
        assert all(isinstance(u, WorkUnit) for u in units)
        # First block is MABC at 0 dB (power 1.0 linear).
        assert units[0].protocol is Protocol.MABC
        assert units[0].power == pytest.approx(1.0)
        # Second half of the grid is HBC.
        assert units[10].protocol is Protocol.HBC

    def test_draws_paired_across_protocols_and_powers(self, small_spec):
        units = list(small_spec.expand())
        per_block = len(small_spec.powers_db) * small_spec.n_draws
        mabc, hbc = units[:per_block], units[per_block:]
        for a, b in zip(mabc, hbc):
            assert a.gains == b.gains

    def test_no_fading_means_single_draw_of_means(self, paper_gains):
        spec = CampaignSpec(
            protocols=(Protocol.DT,), powers_db=(10.0,), gains=(paper_gains,)
        )
        draws = spec.sample_gain_draws()
        assert draws.shape == (1, 1, 3)
        assert tuple(draws[0, 0]) == (
            paper_gains.gab,
            paper_gains.gar,
            paper_gains.gbr,
        )

    def test_sampling_is_deterministic(self, small_spec):
        assert np.array_equal(
            small_spec.sample_gain_draws(), small_spec.sample_gain_draws()
        )

    def test_from_placements(self):
        spec = CampaignSpec.from_placements(
            (Protocol.MABC,), (10.0,), 7, fading=FadingSpec(n_draws=2)
        )
        assert len(spec.gains) == 7
        assert spec.grid_shape == (1, 1, 7, 2)
        with pytest.raises(InvalidParameterError):
            CampaignSpec.from_placements((Protocol.MABC,), (10.0,), 0)


class TestHashing:
    def test_hash_is_stable(self, small_spec, paper_gains):
        clone = CampaignSpec(
            protocols=(Protocol.MABC, Protocol.HBC),
            powers_db=(0.0, 10.0),
            gains=(paper_gains,),
            fading=FadingSpec(n_draws=5, seed=3),
        )
        assert small_spec.spec_hash() == clone.spec_hash()

    @pytest.mark.parametrize(
        "change",
        [
            {"protocols": (Protocol.MABC, Protocol.TDBC)},
            {"powers_db": (0.0, 11.0)},
            {"fading": FadingSpec(n_draws=6, seed=3)},
            {"fading": FadingSpec(n_draws=5, seed=4)},
            {"fading": FadingSpec(n_draws=5, seed=3, k_factor=1.0)},
            {"fading": None},
        ],
    )
    def test_any_field_change_changes_the_hash(self, small_spec, paper_gains, change):
        fields = {
            "protocols": small_spec.protocols,
            "powers_db": small_spec.powers_db,
            "gains": small_spec.gains,
            "fading": small_spec.fading,
        }
        fields.update(change)
        assert CampaignSpec(**fields).spec_hash() != small_spec.spec_hash()

    def test_dict_round_trip(self, small_spec):
        clone = CampaignSpec.from_dict(small_spec.to_dict())
        assert clone == small_spec
        assert clone.spec_hash() == small_spec.spec_hash()


class TestSharding:
    @pytest.mark.parametrize("count", [1, 2, 3, 4, 7, 20])
    def test_partition_is_balanced_and_covers_the_grid(self, small_spec, count):
        shards = [small_spec.shard(i, count) for i in range(count)]
        ranges = [shard.unit_range for shard in shards]
        # Contiguous, in order, disjoint, covering [0, n_units) exactly.
        assert ranges[0][0] == 0
        assert ranges[-1][1] == small_spec.n_units
        for (_, stop), (start, _) in zip(ranges, ranges[1:]):
            assert stop == start
        sizes = [shard.n_units for shard in shards]
        assert sum(sizes) == small_spec.n_units
        assert max(sizes) - min(sizes) <= 1

    def test_oversubscribed_partition_has_empty_tail_shards(self, small_spec):
        shards = [small_spec.shard(i, 30) for i in range(30)]
        assert sum(shard.n_units for shard in shards) == small_spec.n_units
        assert shards[-1].n_units == 0

    def test_parent_hash_is_preserved(self, small_spec):
        shard = small_spec.shard(1, 3)
        assert shard.parent_hash == small_spec.spec_hash()
        assert shard.spec == small_spec
        assert shard.label == "shard 2/3"

    def test_invalid_shards_rejected(self, small_spec):
        with pytest.raises(InvalidParameterError):
            small_spec.shard(0, 0)
        with pytest.raises(InvalidParameterError):
            small_spec.shard(-1, 3)
        with pytest.raises(InvalidParameterError):
            small_spec.shard(3, 3)
        with pytest.raises(InvalidParameterError):
            CampaignShard(spec=small_spec, index=5, count=2)


class TestChunkRanges:
    def test_ranges_tile_the_request_exactly(self):
        ranges = chunk_ranges(0, 100, 32)
        assert ranges == ((0, 32), (32, 64), (64, 96), (96, 100))

    def test_boundaries_are_globally_aligned(self):
        # A range starting mid-chunk first closes out the global chunk, so
        # its interior chunks coincide with an unsharded run's.
        assert chunk_ranges(40, 100, 32) == ((40, 64), (64, 96), (96, 100))
        assert chunk_ranges(32, 100, 32) == ((32, 64), (64, 96), (96, 100))

    def test_small_and_empty_ranges(self):
        assert chunk_ranges(5, 5, 32) == ()
        assert chunk_ranges(5, 6, 32) == ((5, 6),)
        assert chunk_ranges(0, 7, 100) == ((0, 7),)

    def test_invalid_arguments_rejected(self):
        with pytest.raises(InvalidParameterError):
            chunk_ranges(0, 10, 0)
        with pytest.raises(InvalidParameterError):
            chunk_ranges(-1, 10, 4)
        with pytest.raises(InvalidParameterError):
            chunk_ranges(10, 5, 4)
