"""Deterministic fault injection and the engine's retry/deadline machinery.

The headline guarantee under test: with any fault plan armed, a campaign
either completes *bitwise-identical* to the fault-free run or fails with
a single typed error — never a silently wrong result.  Injection itself
is deterministic: the same plan fires the same faults at the same sites
on every replay, with no wall-clock randomness anywhere.
"""

import pickle

import numpy as np
import pytest

from repro.campaign.cache import CampaignCache
from repro.campaign.engine import RetryPolicy, run_campaign
from repro.campaign.spec import CampaignSpec, FadingSpec
from repro.core.protocols import Protocol
from repro.exceptions import (
    CampaignTimeoutError,
    ChunkRetryExhaustedError,
    InvalidParameterError,
)
from repro.faults import (
    FAULT_PLAN_ENV,
    FaultPlan,
    FaultRule,
    FaultToken,
    InjectedChunkError,
    chunk_site,
)

#: Zero backoff keeps the retry tests fast; the schedule itself is
#: covered by the RetryPolicy unit tests below.
FAST_RETRY = RetryPolicy(max_attempts=3, backoff_base=0.0)


@pytest.fixture
def spec(paper_gains):
    return CampaignSpec(
        protocols=(Protocol.MABC, Protocol.TDBC, Protocol.HBC),
        powers_db=(0.0, 10.0),
        gains=(paper_gains,),
        fading=FadingSpec(n_draws=20, seed=11),
    )


@pytest.fixture
def reference(spec):
    return run_campaign(spec, executor="vectorized")


def one_shot_chunk_error(lo, hi, seed=0):
    """A plan that fails chunk [lo, hi) transiently on its first attempt."""
    return FaultPlan(
        rules=(FaultRule(kind="chunk-error", site=chunk_site(lo, hi)),),
        seed=seed,
    )


class TestFaultPlanDeterminism:
    def test_decide_is_a_pure_function(self):
        rule = FaultRule(kind="chunk-error", probability=0.5, times=None)
        first = FaultPlan(rules=(rule,), seed=42)
        second = FaultPlan(rules=(rule,), seed=42)
        sites = [chunk_site(lo, lo + 16) for lo in range(0, 1600, 16)]
        decisions = [first.decide("chunk-error", s, 0) for s in sites]
        assert decisions == [second.decide("chunk-error", s, 0) for s in sites]
        # A 0.5-probability rule over 100 sites fires on some and spares
        # others — the hash thins, it does not degenerate.
        fired = [d is not None for d in decisions]
        assert any(fired) and not all(fired)

    def test_seed_changes_the_firing_pattern(self):
        rule = FaultRule(kind="chunk-error", probability=0.5, times=None)
        sites = [chunk_site(lo, lo + 16) for lo in range(0, 1600, 16)]
        pattern = lambda seed: [  # noqa: E731
            FaultPlan(rules=(rule,), seed=seed).decide("chunk-error", s, 0) is not None
            for s in sites
        ]
        assert pattern(1) != pattern(2)

    def test_attempt_window(self):
        rule = FaultRule(kind="chunk-error", after=1, times=2)
        assert not rule.matches("chunk[0,16)", 0)
        assert rule.matches("chunk[0,16)", 1)
        assert rule.matches("chunk[0,16)", 2)
        assert not rule.matches("chunk[0,16)", 3)
        unbounded = FaultRule(kind="chunk-error", times=None)
        assert unbounded.matches("chunk[0,16)", 999)

    def test_site_filter_is_a_substring(self):
        rule = FaultRule(kind="chunk-error", site="chunk[16,32)")
        assert rule.matches(chunk_site(16, 32), 0)
        assert not rule.matches(chunk_site(0, 16), 0)

    def test_json_round_trip(self):
        plan = FaultPlan(
            rules=(
                FaultRule(kind="worker-death", site=chunk_site(0, 16), exit_code=7),
                FaultRule(kind="torn-write", mode="crash", times=None),
                FaultRule(kind="socket-delay", site="result", delay_seconds=0.5),
            ),
            seed=99,
        )
        assert FaultPlan.from_json(plan.to_json()) == plan

    def test_fault_token_pickles(self):
        token = FaultToken(one_shot_chunk_error(0, 16), (0, 16), 0)
        clone = pickle.loads(pickle.dumps(token))
        assert clone == token
        with pytest.raises(InjectedChunkError):
            clone.apply(in_worker=False)

    def test_rule_validation(self):
        with pytest.raises(InvalidParameterError):
            FaultRule(kind="meteor-strike")
        with pytest.raises(InvalidParameterError):
            FaultRule(kind="chunk-error", probability=1.5)
        with pytest.raises(InvalidParameterError):
            FaultRule(kind="torn-write", mode="shred")
        with pytest.raises(InvalidParameterError):
            FaultRule(kind="chunk-error", times=0)

    def test_env_pickup_inline_and_file(self, tmp_path, monkeypatch):
        plan = one_shot_chunk_error(0, 16, seed=3)
        monkeypatch.setenv(FAULT_PLAN_ENV, plan.to_json())
        assert FaultPlan.from_env() == plan
        path = tmp_path / "plan.json"
        path.write_text(plan.to_json())
        monkeypatch.setenv(FAULT_PLAN_ENV, str(path))
        assert FaultPlan.from_env() == plan
        monkeypatch.delenv(FAULT_PLAN_ENV)
        assert FaultPlan.from_env() is None


class TestChunkRetry:
    @pytest.mark.parametrize("executor", ["serial", "vectorized"])
    def test_transient_fault_retries_to_bitwise_identity(
        self, spec, reference, tmp_path, executor
    ):
        plan = one_shot_chunk_error(16, 32)
        result = run_campaign(
            spec,
            executor=executor,
            cache=tmp_path,
            chunk_size=16,
            fault_plan=plan,
            retry=FAST_RETRY,
        )
        assert result.chunk_retries == 1
        assert result.pool_rebuilds == 0
        assert result.values.tobytes() == reference.values.tobytes()

    def test_fault_plan_from_env_drives_the_run(
        self, spec, reference, tmp_path, monkeypatch
    ):
        monkeypatch.setenv(FAULT_PLAN_ENV, one_shot_chunk_error(0, 16).to_json())
        result = run_campaign(
            spec, cache=tmp_path, chunk_size=16, retry=FAST_RETRY
        )
        assert result.chunk_retries == 1
        assert result.values.tobytes() == reference.values.tobytes()

    def test_exhaustion_raises_one_typed_error(self, spec, tmp_path):
        # times=None: the chunk fails on every attempt.
        plan = FaultPlan(
            rules=(FaultRule(kind="chunk-error", site=chunk_site(16, 32), times=None),)
        )
        with pytest.raises(ChunkRetryExhaustedError) as excinfo:
            run_campaign(
                spec,
                cache=tmp_path,
                chunk_size=16,
                fault_plan=plan,
                retry=FAST_RETRY,
            )
        assert excinfo.value.chunk == (16, 32)
        assert excinfo.value.attempts == FAST_RETRY.max_attempts

    def test_completed_chunks_survive_exhaustion(self, spec, reference, tmp_path):
        cache = CampaignCache(tmp_path)
        plan = FaultPlan(
            rules=(FaultRule(kind="chunk-error", site=chunk_site(32, 48), times=None),)
        )
        with pytest.raises(ChunkRetryExhaustedError):
            run_campaign(
                spec,
                executor="serial",
                cache=cache,
                chunk_size=16,
                fault_plan=plan,
                retry=FAST_RETRY,
            )
        # The chunks before the poisoned one were checkpointed; a clean
        # rerun resumes from them and converges bitwise.
        result = run_campaign(spec, cache=cache, chunk_size=16)
        assert result.cells_from_cache >= 32
        assert result.values.tobytes() == reference.values.tobytes()

    def test_fatal_errors_are_not_retried(self, spec, tmp_path):
        class FatalExecutor:
            name = "fatal"

            def __init__(self):
                self.calls = 0

            def run(self, batches, progress=None):
                self.calls += 1
                raise ValueError("not transient")

        executor = FatalExecutor()
        with pytest.raises(ValueError, match="not transient"):
            run_campaign(
                spec,
                executor=executor,
                cache=tmp_path,
                chunk_size=16,
                retry=FAST_RETRY,
            )
        assert executor.calls == 1

    def test_retry_accepts_a_bare_attempt_count(self, spec, tmp_path):
        plan = FaultPlan(
            rules=(FaultRule(kind="chunk-error", site=chunk_site(0, 16), times=None),)
        )
        with pytest.raises(ChunkRetryExhaustedError) as excinfo:
            run_campaign(spec, cache=tmp_path, chunk_size=16, fault_plan=plan, retry=1)
        assert excinfo.value.attempts == 1

    def test_faultless_plan_changes_nothing(self, spec, reference, tmp_path):
        # An armed plan whose rules never match is a pure no-op.
        plan = FaultPlan(
            rules=(FaultRule(kind="chunk-error", site="chunk[9999,10000)"),)
        )
        result = run_campaign(spec, cache=tmp_path, chunk_size=16, fault_plan=plan)
        assert result.chunk_retries == 0
        assert result.values.tobytes() == reference.values.tobytes()


class TestRetryPolicy:
    def test_backoff_schedule_is_capped_exponential(self):
        policy = RetryPolicy(max_attempts=5, backoff_base=0.1, backoff_cap=0.35)
        assert policy.delay(0) == 0.0
        assert policy.delay(1) == pytest.approx(0.1)
        assert policy.delay(2) == pytest.approx(0.2)
        assert policy.delay(3) == pytest.approx(0.35)  # capped
        assert policy.delay(10) == pytest.approx(0.35)

    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(InvalidParameterError):
            RetryPolicy(backoff_base=-1.0)


class TestDeadline:
    def test_expired_deadline_aborts_at_a_chunk_boundary(self, spec, tmp_path):
        import time

        with pytest.raises(CampaignTimeoutError) as excinfo:
            run_campaign(
                spec,
                cache=tmp_path,
                chunk_size=16,
                deadline=time.monotonic() - 1.0,
            )
        assert excinfo.value.completed == 0
        assert excinfo.value.total == spec.n_units

    def test_checkpointed_chunks_count_as_completed(self, spec, tmp_path):
        import time

        cache = CampaignCache(tmp_path)
        full = run_campaign(spec, cache=cache, chunk_size=16)
        # Drop the full entry and one chunk: the rerun serves the leading
        # checkpoints, then hits the expired deadline at the gap.
        from repro.campaign.engine import _cache_key

        key = _cache_key(spec)
        cache.path_for(key).unlink()
        cache.chunk_path_for(key, 32, 48).unlink()
        with pytest.raises(CampaignTimeoutError) as excinfo:
            run_campaign(
                spec,
                cache=cache,
                chunk_size=16,
                deadline=time.monotonic() - 1.0,
            )
        assert excinfo.value.completed == 32
        # The full-entry hot path still serves even past the deadline:
        # reads are cheap, only fresh compute is cut.
        cache.store(key, full.values, spec.to_dict())
        served = run_campaign(
            spec, cache=cache, chunk_size=16, deadline=time.monotonic() - 1.0
        )
        assert served.from_cache
        assert served.values.tobytes() == full.values.tobytes()
