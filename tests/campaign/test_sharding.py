"""Sharded, resumable campaign execution and the gather merge step.

The acceptance properties of distributed execution, end to end:

* a campaign split into shards and gathered is *bitwise identical* to an
  unsharded run (regardless of executor mix or chunk size),
* a campaign killed mid-run resumes from its checkpointed chunks — the
  second run serves the completed cells from cache and recomputes none
  of them,
* corrupted checkpoints are detected, discarded and recomputed.
"""

import shutil

import numpy as np
import pytest

from repro.campaign.cache import CampaignCache
from repro.campaign.engine import (
    _cache_key,
    evaluate_ensemble,
    gather_campaign,
    run_campaign,
)
from repro.campaign.executors import SerialExecutor
from repro.campaign.spec import CampaignSpec, FadingSpec
from repro.channels.fading import sample_gain_ensemble
from repro.core.protocols import Protocol
from repro.exceptions import IncompleteCampaignError, InvalidParameterError


class CountingExecutor(SerialExecutor):
    """Serial executor that counts the units it actually evaluates."""

    def __init__(self):
        self.units_evaluated = 0

    def run(self, batches, progress=None):
        self.units_evaluated += sum(len(batch) for batch in batches)
        return super().run(batches, progress=progress)


class FailingExecutor(SerialExecutor):
    """Serial executor that dies after a fixed number of ``run`` calls.

    The engine issues one ``run`` call per chunk, so this simulates a
    campaign killed mid-flight with some chunks already checkpointed.
    """

    def __init__(self, calls_before_failure):
        self.calls_before_failure = calls_before_failure
        self.calls = 0

    def run(self, batches, progress=None):
        if self.calls >= self.calls_before_failure:
            raise RuntimeError("injected mid-campaign failure")
        self.calls += 1
        return super().run(batches, progress=progress)


@pytest.fixture
def spec(paper_gains):
    return CampaignSpec(
        protocols=(Protocol.MABC, Protocol.TDBC, Protocol.HBC),
        powers_db=(0.0, 10.0),
        gains=(paper_gains,),
        fading=FadingSpec(n_draws=20, seed=11),
    )


@pytest.fixture
def reference(spec):
    """The unsharded, uncached single-pass result."""
    return run_campaign(spec, executor="vectorized")


class TestShardedExecution:
    def test_shard_evaluates_only_its_slice(self, spec, reference, tmp_path):
        shard = spec.shard(1, 3)
        result = run_campaign(spec, shard=shard, cache=tmp_path, chunk_size=16)
        assert result.shard == shard
        assert result.cells_computed == shard.n_units
        flat = result.values.ravel()
        reference_flat = reference.values.ravel()
        start, stop = shard.unit_range
        assert np.array_equal(flat[start:stop], reference_flat[start:stop])
        outside = np.ones(spec.n_units, dtype=bool)
        outside[start:stop] = False
        assert np.all(np.isnan(flat[outside]))

    def test_sharded_then_gathered_is_bitwise_identical(
        self, spec, reference, tmp_path
    ):
        cache = CampaignCache(tmp_path)
        # Mixed executors across shards: bitwise equivalence is what makes
        # the shard artifacts interchangeable.
        executors = ("serial", "vectorized", "vectorized", "vectorized")
        for index, executor in enumerate(executors):
            run_campaign(
                spec,
                shard=spec.shard(index, len(executors)),
                cache=cache,
                chunk_size=16,
                executor=executor,
            )
        gathered = gather_campaign(spec, cache)
        assert gathered.values.shape == reference.values.shape
        assert gathered.values.tobytes() == reference.values.tobytes()
        assert gathered.from_cache
        # The gather also published the full entry: a later unsharded run
        # is a pure cache hit.
        rerun = run_campaign(spec, cache=cache)
        assert rerun.from_cache
        assert np.array_equal(rerun.values, reference.values)

    def test_shard_accepts_index_count_tuple(self, spec, tmp_path):
        result = run_campaign(spec, shard=(0, 2), cache=tmp_path)
        assert result.shard == spec.shard(0, 2)

    def test_shard_progress_totals_are_shard_local(self, spec, tmp_path):
        ticks = []
        shard = spec.shard(2, 3)
        run_campaign(
            spec,
            shard=shard,
            cache=tmp_path,
            chunk_size=16,
            progress=lambda done, total: ticks.append((done, total)),
        )
        assert ticks[-1] == (shard.n_units, shard.n_units)

    def test_foreign_shard_rejected(self, spec, paper_gains, tmp_path):
        other = CampaignSpec(
            protocols=(Protocol.MABC,), powers_db=(10.0,), gains=(paper_gains,)
        )
        with pytest.raises(InvalidParameterError):
            run_campaign(spec, shard=other.shard(0, 2), cache=tmp_path)

    def test_gather_with_missing_shards_raises(self, spec, tmp_path):
        cache = CampaignCache(tmp_path)
        run_campaign(spec, shard=spec.shard(0, 3), cache=cache, chunk_size=16)
        run_campaign(spec, shard=spec.shard(2, 3), cache=cache, chunk_size=16)
        with pytest.raises(IncompleteCampaignError) as excinfo:
            gather_campaign(spec, cache)
        start, stop = spec.shard(1, 3).unit_range
        assert excinfo.value.missing == ((start, stop),)
        assert f"[{start}, {stop})" in str(excinfo.value)

    def test_gather_requires_a_cache(self, spec):
        with pytest.raises(InvalidParameterError):
            gather_campaign(spec, cache=False)


class TestResumption:
    def test_interrupted_campaign_resumes_from_chunks(self, spec, reference, tmp_path):
        cache = CampaignCache(tmp_path)
        flaky = FailingExecutor(calls_before_failure=3)
        with pytest.raises(RuntimeError):
            run_campaign(spec, executor=flaky, cache=cache, chunk_size=16)
        # Three chunks of 16 cells were checkpointed before the crash.
        counting = CountingExecutor()
        result = run_campaign(spec, executor=counting, cache=cache, chunk_size=16)
        assert result.cells_from_cache == 48
        assert result.cells_computed == spec.n_units - 48
        # None of the completed chunks were recomputed.
        assert counting.units_evaluated == spec.n_units - 48
        assert np.array_equal(result.values, reference.values)

    def test_completed_campaign_reruns_entirely_from_chunks(self, spec, tmp_path):
        cache = CampaignCache(tmp_path)
        first = run_campaign(spec, cache=cache, chunk_size=16)
        # Drop the full entry: the chunk checkpoints alone must serve the
        # rerun without any recomputation.
        cache.path_for(_cache_key(spec)).unlink()
        counting = CountingExecutor()
        second = run_campaign(spec, executor=counting, cache=cache, chunk_size=16)
        assert second.from_cache
        assert second.cells_from_cache == spec.n_units
        assert second.cells_computed == 0
        assert counting.units_evaluated == 0
        assert np.array_equal(first.values, second.values)

    def test_corrupted_chunk_is_recomputed_not_served(self, spec, reference, tmp_path):
        cache = CampaignCache(tmp_path)
        run_campaign(spec, cache=cache, chunk_size=16)
        key = _cache_key(spec)
        cache.path_for(key).unlink()
        chunk_path = cache.chunk_path_for(key, 16, 32)
        # Silent payload corruption: perturb the stored values but keep the
        # original digest — only the digest check can catch this.
        with np.load(chunk_path) as entry:
            tampered = {name: np.asarray(entry[name]) for name in entry.files}
        tampered["values"] = tampered["values"] + 1e-3
        np.savez(chunk_path, **tampered)
        counting = CountingExecutor()
        result = run_campaign(spec, executor=counting, cache=cache, chunk_size=16)
        # Exactly the poisoned chunk was recomputed — and never served.
        assert counting.units_evaluated == 16
        assert result.cells_computed == 16
        assert result.cells_from_cache == spec.n_units - 16
        assert np.array_equal(result.values, reference.values)

    def test_shard_rerun_is_served_from_the_full_entry(self, spec, reference, tmp_path):
        cache = CampaignCache(tmp_path)
        run_campaign(spec, cache=cache, chunk_size=16)
        # Wipe the chunk entries: only the full-campaign entry remains —
        # and a chunk size of 7 would not line up with them anyway.
        shutil.rmtree(cache.chunk_dir_for(_cache_key(spec)))
        counting = CountingExecutor()
        shard = spec.shard(1, 3)
        result = run_campaign(
            spec, shard=shard, cache=cache, executor=counting, chunk_size=7
        )
        assert result.from_cache
        assert counting.units_evaluated == 0
        assert result.cells_from_cache == shard.n_units
        start, stop = shard.unit_range
        assert np.array_equal(
            result.values.ravel()[start:stop],
            reference.values.ravel()[start:stop],
        )

    def test_process_pool_is_reused_across_chunks(self, spec, tmp_path, monkeypatch):
        from repro.campaign import executors as executors_module

        real_pool = executors_module.ProcessPoolExecutor
        created = []

        def counting_pool(*args, **kwargs):
            created.append(1)
            return real_pool(*args, **kwargs)

        monkeypatch.setattr(executors_module, "ProcessPoolExecutor", counting_pool)
        executor = executors_module.MultiprocessExecutor(processes=2)
        result = run_campaign(spec, executor=executor, cache=tmp_path, chunk_size=16)
        assert result.cells_computed == spec.n_units
        # One pool for the whole chunk loop, not one per chunk.
        assert len(created) == 1

    def test_invalid_chunk_size_rejected(self, spec, paper_gains):
        with pytest.raises(InvalidParameterError):
            run_campaign(spec, chunk_size=0)
        triple = (paper_gains.gab, paper_gains.gar, paper_gains.gbr)
        with pytest.raises(InvalidParameterError):
            evaluate_ensemble(Protocol.HBC, [triple], 10.0, chunk_size=-1)

    def test_untrusted_executor_does_not_write_chunks(self, spec, tmp_path):
        class ZeroExecutor:
            name = "zero"

            def run(self, batches, progress=None):
                return [np.zeros(len(batch)) for batch in batches]

        cache = CampaignCache(tmp_path)
        run_campaign(spec, executor=ZeroExecutor(), cache=cache, chunk_size=16)
        assert list(cache.iter_chunks(_cache_key(spec))) == []


class TestEnsembleCheckpointing:
    def test_repeated_ensemble_is_served_from_chunks(self, paper_gains, tmp_path):
        ensemble = sample_gain_ensemble(paper_gains, 30, np.random.default_rng(7))
        first = evaluate_ensemble(
            Protocol.HBC, ensemble, 10.0, cache=tmp_path, chunk_size=8
        )
        counting = CountingExecutor()
        second = evaluate_ensemble(
            Protocol.HBC,
            ensemble,
            10.0,
            cache=tmp_path,
            chunk_size=8,
            executor=counting,
        )
        assert counting.units_evaluated == 0
        assert np.array_equal(first, second)

    def test_different_ensembles_do_not_collide(self, paper_gains, tmp_path):
        rng = np.random.default_rng(7)
        ensemble_a = sample_gain_ensemble(paper_gains, 10, rng)
        ensemble_b = sample_gain_ensemble(paper_gains, 10, rng)
        a = evaluate_ensemble(Protocol.HBC, ensemble_a, 10.0, cache=tmp_path)
        b = evaluate_ensemble(Protocol.HBC, ensemble_b, 10.0, cache=tmp_path)
        assert not np.array_equal(a, b)
