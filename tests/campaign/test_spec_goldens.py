"""Golden spec hashes: the axis refactor must not move the cache keys.

The content-addressed cache, the shard artifacts and the CI
shard-equivalence pipeline are all keyed by ``CampaignSpec.spec_hash()``.
These hex digests were recorded from the pre-GridAxis (PR 2) spec
implementation; if any of them changes, every existing cache entry and
shard artifact silently becomes unreachable — treat a failure here as a
compatibility break, not a test to update.
"""

import pytest

from repro.campaign.spec import CampaignSpec, FadingSpec, GridAxis
from repro.channels.gains import LinkGains
from repro.channels.pathloss import linear_relay_gains
from repro.core.protocols import Protocol
from repro.experiments.config import FIG3_DEFAULT

PAPER_GAINS = LinkGains.from_db(-7.0, 0.0, 5.0)
PAPER_PROTOCOLS = (Protocol.DT, Protocol.MABC, Protocol.TDBC, Protocol.HBC)


def fading_ensemble_spec():
    """The `fading` experiment's default grid (DEFAULT_FADING_SPEC)."""
    return CampaignSpec(
        protocols=PAPER_PROTOCOLS,
        powers_db=(0.0, 10.0),
        gains=(PAPER_GAINS,),
        fading=FadingSpec(n_draws=200, seed=17),
    )


def fig3_placement_spec():
    """The grid the Fig. 3 placement sweep evaluates."""
    gains = tuple(
        linear_relay_gains(float(f), exponent=FIG3_DEFAULT.path_loss_exponent)
        for f in FIG3_DEFAULT.relay_fractions
    )
    return CampaignSpec(
        protocols=PAPER_PROTOCOLS,
        powers_db=(FIG3_DEFAULT.power_db,),
        gains=gains,
    )


def fig3_symmetric_spec():
    """The grid the Fig. 3 symmetric sweep evaluates."""
    gains = tuple(
        LinkGains.from_db(FIG3_DEFAULT.gab_db, float(g), float(g))
        for g in FIG3_DEFAULT.symmetric_gains_db
    )
    return CampaignSpec(
        protocols=PAPER_PROTOCOLS,
        powers_db=(FIG3_DEFAULT.power_db,),
        gains=gains,
    )


def ci_shard_grid_spec():
    """The CI shard-equivalence campaign (`$CAMPAIGN_GRID` in ci.yml)."""
    return CampaignSpec.from_placements(
        tuple(Protocol),
        (0.0, 10.0),
        4,
        fading=FadingSpec(n_draws=25, seed=3),
    )


def small_fading_spec():
    return CampaignSpec(
        protocols=(Protocol.MABC, Protocol.HBC),
        powers_db=(0.0, 10.0),
        gains=(PAPER_GAINS,),
        fading=FadingSpec(n_draws=5, seed=3),
    )


def power_sweep_spec():
    return CampaignSpec(
        protocols=(
            Protocol.DT,
            Protocol.NAIVE4,
            Protocol.MABC,
            Protocol.TDBC,
            Protocol.HBC,
        ),
        powers_db=(-5.0, 0.0, 5.0, 10.0),
        gains=(PAPER_GAINS,),
    )


GOLDEN_HASHES = {
    "fading-ensemble": (
        fading_ensemble_spec,
        "500bf1138e116705f64e12c55799920be3a51538768094b5e8955eed5f6461a4",
    ),
    "fig3-placement": (
        fig3_placement_spec,
        "f68ca5ee887e7e91b81590aea6f49e0670b5746837734e3b175f107f1241d775",
    ),
    "fig3-symmetric": (
        fig3_symmetric_spec,
        "dff40dab2e8f7cf7eb8aa3b0087941f6f8280181bb416daa70bd16e76ced1b3a",
    ),
    "ci-shard-grid": (
        ci_shard_grid_spec,
        "80582c79591ffd8ee77f9e30683c680a74751ce55597a4f77b17545d1dbc17d0",
    ),
    "small-fading": (
        small_fading_spec,
        "87226d66b494a2602f01e3c491d43e8c7977c9421ec4696f01d2377b642cb67a",
    ),
    "power-sweep": (
        power_sweep_spec,
        "28f5163570f13c0561dd520e79962a14969c9567329e2f73551eec07cf1671c8",
    ),
}


@pytest.mark.parametrize("name", sorted(GOLDEN_HASHES))
def test_classic_spec_hashes_are_byte_stable(name):
    factory, expected = GOLDEN_HASHES[name]
    assert factory().spec_hash() == expected


@pytest.mark.parametrize("name", sorted(GOLDEN_HASHES))
def test_classic_spec_dict_has_no_axes_key(name):
    """The serialized form of a 4-axis spec is exactly the legacy layout."""
    factory, _ = GOLDEN_HASHES[name]
    assert sorted(factory().to_dict()) == ["fading", "gains", "powers_db", "protocols"]


def test_extra_axes_change_the_hash():
    """Extensible axes are part of the content key, never silently ignored."""
    base = small_fading_spec()
    extended = CampaignSpec(
        protocols=base.protocols,
        powers_db=base.powers_db,
        gains=base.gains,
        fading=base.fading,
        extra_axes=(
            GridAxis(name="pair", values=({"gain_offsets_db": (0.0, 0.0, 0.0)},)),
        ),
    )
    assert extended.spec_hash() != base.spec_hash()
    assert "axes" in extended.to_dict()


def test_builtin_scenarios_lower_to_the_golden_grids():
    """Scenario lowering preserves the legacy cache keys of the figures."""
    from repro.scenarios import fading_ensemble_scenario, fig3_placement_scenario

    assert (
        fading_ensemble_scenario().to_campaign_spec().spec_hash()
        == GOLDEN_HASHES["fading-ensemble"][1]
    )
    assert (
        fig3_placement_scenario().to_campaign_spec().spec_hash()
        == GOLDEN_HASHES["fig3-placement"][1]
    )


#: Allocation-free scenarios recorded before per-node powers existed
#: (pre-``node_powers_db``). The power-allocation work serializes its
#: axis key only when a scenario actually sets one, so every spec below
#: must keep hashing byte-identically — a failure here means existing
#: cache entries and shard artifacts just became unreachable.
GOLDEN_SCENARIO_HASHES = {
    "fig4-operating-points": (
        "84688700e93490a32d3aeff6128fbe8269769a15101913af33e94e0a086d8eb6"
    ),
    "two-pair-round-robin": (
        "a218abc8dde52d1f7dde3552a85788beefb11c59dc9a90a04803d31da61d81e8"
    ),
    "operational-goodput": (
        "965d684d8c08f2f9b904b5447a69463cc74fe9e197d5bfd97029fd3b6cbb71d5"
    ),
    "operational-fading-fer": (
        "add3c2d1a6cc3e6b4422a89f24749df6f0a01d396b58dbbd2308eab842f825a5"
    ),
}


@pytest.mark.parametrize("name", sorted(GOLDEN_SCENARIO_HASHES))
def test_allocation_free_scenario_hashes_are_byte_stable(name):
    from repro.scenarios import get_scenario

    spec = get_scenario(name).to_campaign_spec()
    assert spec.spec_hash() == GOLDEN_SCENARIO_HASHES[name]
    assert not any(
        "node_powers_db" in value
        for axis in spec.extra_axes
        for value in axis.values
    )


# --- Importance sampling: serialize only when set ------------------------
#
# ``LinkSimSpec.importance_sampling`` joined the spec after every golden
# above was recorded. It must serialize *only when set* — a vanilla spec's
# dict (and therefore every hash above) is byte-identical to the pre-IS
# layout — while an IS-bearing spec folds the proposal into its content
# key so biased and vanilla campaigns can never share cache entries.


def test_vanilla_link_spec_dict_has_no_sampling_key():
    from repro.campaign.spec import LinkSimSpec

    link = LinkSimSpec(n_rounds=8, payload_bits=16, seed=1, metric="fer")
    assert "importance_sampling" not in link.to_dict()


def test_importance_sampling_serializes_defaults_sparsely():
    from repro.campaign.spec import LinkSimSpec
    from repro.simulation.sampling import ImportanceSamplingSpec

    link = LinkSimSpec(
        n_rounds=8,
        payload_bits=16,
        seed=1,
        metric="fer",
        importance_sampling=ImportanceSamplingSpec(noise_scale=1.1),
    )
    assert link.to_dict()["importance_sampling"] == {"noise_scale": 1.1}


def test_importance_sampling_changes_the_hash():
    from repro.campaign.spec import LinkSimSpec
    from repro.simulation.sampling import ImportanceSamplingSpec

    def spec_with(link):
        return CampaignSpec(
            protocols=(Protocol.DT,),
            powers_db=(0.0,),
            gains=(PAPER_GAINS,),
            link=link,
        )

    vanilla = spec_with(LinkSimSpec(n_rounds=8, payload_bits=16, seed=1, metric="fer"))
    biased = spec_with(
        LinkSimSpec(
            n_rounds=8,
            payload_bits=16,
            seed=1,
            metric="fer",
            importance_sampling=ImportanceSamplingSpec(noise_scale=1.1),
        )
    )
    assert vanilla.spec_hash() != biased.spec_hash()


def test_deepfade_scenario_hash_is_byte_stable():
    """The first IS-bearing golden, recorded when the scenario shipped."""
    from repro.scenarios import get_scenario

    spec = get_scenario("operational-deepfade-fer").to_campaign_spec()
    assert spec.spec_hash() == (
        "f83162ec1ba9212cbf0459dc0de902bbb6d3bcbc3f941d43c50695374aebed12"
    )
