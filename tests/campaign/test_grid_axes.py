"""Unit tests for GridAxis and extensible-axis campaign specs."""

import numpy as np
import pytest

from repro.campaign.engine import run_campaign
from repro.campaign.spec import CampaignSpec, FadingSpec, GridAxis
from repro.core.protocols import Protocol
from repro.exceptions import InvalidParameterError
from repro.information.functions import db_to_linear


@pytest.fixture
def pair_axis():
    return GridAxis(
        name="pair",
        values=(
            {"gain_offsets_db": (0.0, 0.0, 0.0)},
            {"gain_offsets_db": (-3.0, 2.0, -1.0)},
        ),
        labels=("near", "far"),
    )


@pytest.fixture
def policy_axis():
    return GridAxis(
        name="power_policy",
        values=({"power_db_offset": 0.0}, {"power_db_offset": -6.0}),
    )


@pytest.fixture
def extended_spec(paper_gains, pair_axis, policy_axis):
    return CampaignSpec(
        protocols=(Protocol.MABC, Protocol.HBC),
        powers_db=(10.0,),
        gains=(paper_gains,),
        fading=FadingSpec(n_draws=3, seed=1),
        extra_axes=(pair_axis, policy_axis),
    )


class TestGridAxis:
    def test_length_and_labels(self, pair_axis):
        assert len(pair_axis) == 2
        assert pair_axis.display_labels == ("near", "far")

    def test_labels_default_to_str_values(self):
        axis = GridAxis(name="x", values=({"power_db_offset": 1.0},))
        assert axis.display_labels == (str({"power_db_offset": 1.0}),)

    def test_values_canonicalized_to_plain_data(self):
        axis = GridAxis(name="x", values=({"gain_offsets_db": (1, 2, 3)},))
        assert axis.values == ({"gain_offsets_db": [1, 2, 3]},)

    def test_dict_round_trip(self, pair_axis):
        clone = GridAxis.from_dict(pair_axis.to_dict())
        assert clone == pair_axis

    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            GridAxis(name="", values=(1,))
        with pytest.raises(InvalidParameterError):
            GridAxis(name="x", values=())
        with pytest.raises(InvalidParameterError):
            GridAxis(name="x", values=(1, 2), labels=("one",))
        with pytest.raises(InvalidParameterError):
            GridAxis(name="x", values=(object(),))


class TestExtendedSpecStructure:
    def test_grid_shape_inserts_axes_between_power_and_gains(self, extended_spec):
        assert extended_spec.grid_shape == (2, 1, 2, 2, 1, 3)
        assert extended_spec.n_units == 24
        assert extended_spec.axis_names == (
            "protocol",
            "power",
            "pair",
            "power_policy",
            "gains",
            "draw",
        )

    def test_axes_property_names_every_dimension(self, extended_spec):
        axes = extended_spec.axes
        assert [axis.name for axis in axes] == list(extended_spec.axis_names)
        assert [len(axis) for axis in axes] == list(extended_spec.grid_shape)

    def test_block_params_applies_overrides(self, extended_spec):
        # Block order is C order over (protocol, power, pair, policy).
        protocol, power, scale = extended_spec.block_params(0)
        assert protocol is Protocol.MABC
        assert power == db_to_linear(10.0)
        assert np.allclose(scale, [1.0, 1.0, 1.0])
        # Last block: HBC, far pair, -6 dB backoff.
        protocol, power, scale = extended_spec.block_params(7)
        assert protocol is Protocol.HBC
        assert power == db_to_linear(4.0)
        expected = [db_to_linear(-3.0), db_to_linear(2.0), db_to_linear(-1.0)]
        assert np.allclose(scale, expected)

    def test_block_params_bounds_checked(self, extended_spec):
        with pytest.raises(InvalidParameterError):
            extended_spec.block_params(-1)
        with pytest.raises(InvalidParameterError):
            extended_spec.block_params(extended_spec.n_blocks)

    def test_expand_covers_the_grid_with_scaled_gains(self, extended_spec):
        units = list(extended_spec.expand())
        assert len(units) == extended_spec.n_units
        assert [u.index for u in units] == list(range(extended_spec.n_units))
        draws = extended_spec.sample_gain_draws()
        # Block 2 in C order over (protocol, power, pair, policy) is
        # (MABC, 10 dB, far pair, zero backoff); its first unit is draw 0.
        unit = units[2 * extended_spec.n_channels]
        assert unit.gains.gab == draws[0, 0, 0] * db_to_linear(-3.0)
        assert unit.gains.gar == draws[0, 0, 1] * db_to_linear(2.0)
        assert unit.gains.gbr == draws[0, 0, 2] * db_to_linear(-1.0)

    def test_dict_round_trip(self, extended_spec):
        clone = CampaignSpec.from_dict(extended_spec.to_dict())
        assert clone == extended_spec
        assert clone.spec_hash() == extended_spec.spec_hash()

    def test_labels_are_cosmetic_and_do_not_move_the_hash(
        self, extended_spec, policy_axis
    ):
        relabeled = CampaignSpec(
            protocols=extended_spec.protocols,
            powers_db=extended_spec.powers_db,
            gains=extended_spec.gains,
            fading=extended_spec.fading,
            extra_axes=(
                GridAxis(
                    name="pair",
                    values=extended_spec.extra_axes[0].values,
                    labels=("renamed-1", "renamed-2"),
                ),
                policy_axis,
            ),
        )
        assert relabeled != extended_spec
        assert relabeled.spec_hash() == extended_spec.spec_hash()
        assert "labels" not in relabeled.to_dict(labels=False)["axes"][0]

    def test_axis_values_affect_the_hash(self, extended_spec, pair_axis):
        other = CampaignSpec(
            protocols=extended_spec.protocols,
            powers_db=extended_spec.powers_db,
            gains=extended_spec.gains,
            fading=extended_spec.fading,
            extra_axes=(
                pair_axis,
                GridAxis(
                    name="power_policy",
                    values=({"power_db_offset": 0.0}, {"power_db_offset": -7.0}),
                ),
            ),
        )
        assert other.spec_hash() != extended_spec.spec_hash()


class TestExtendedSpecValidation:
    def test_reserved_axis_names_rejected(self, paper_gains):
        for reserved in ("protocol", "power", "gains", "draw"):
            with pytest.raises(InvalidParameterError):
                CampaignSpec(
                    protocols=(Protocol.MABC,),
                    powers_db=(10.0,),
                    gains=(paper_gains,),
                    extra_axes=(
                        GridAxis(name=reserved, values=({"power_db_offset": 1.0},)),
                    ),
                )

    def test_duplicate_axis_names_rejected(self, paper_gains, policy_axis):
        with pytest.raises(InvalidParameterError):
            CampaignSpec(
                protocols=(Protocol.MABC,),
                powers_db=(10.0,),
                gains=(paper_gains,),
                extra_axes=(policy_axis, policy_axis),
            )

    def test_unknown_override_keys_rejected(self, paper_gains):
        with pytest.raises(InvalidParameterError):
            CampaignSpec(
                protocols=(Protocol.MABC,),
                powers_db=(10.0,),
                gains=(paper_gains,),
                extra_axes=(GridAxis(name="x", values=({"bogus": 1.0},)),),
            )

    def test_non_mapping_values_rejected(self, paper_gains):
        with pytest.raises(InvalidParameterError):
            CampaignSpec(
                protocols=(Protocol.MABC,),
                powers_db=(10.0,),
                gains=(paper_gains,),
                extra_axes=(GridAxis(name="x", values=(1.0,)),),
            )

    def test_wrong_length_gain_offsets_rejected(self, paper_gains):
        with pytest.raises(InvalidParameterError):
            CampaignSpec(
                protocols=(Protocol.MABC,),
                powers_db=(10.0,),
                gains=(paper_gains,),
                extra_axes=(
                    GridAxis(name="x", values=({"gain_offsets_db": (1.0, 2.0)},)),
                ),
            )

    def test_non_axis_rejected(self, paper_gains):
        with pytest.raises(InvalidParameterError):
            CampaignSpec(
                protocols=(Protocol.MABC,),
                powers_db=(10.0,),
                gains=(paper_gains,),
                extra_axes=("pair",),
            )


class TestExtendedSpecExecution:
    def test_executors_agree_bitwise(self, extended_spec):
        vectorized = run_campaign(extended_spec)
        serial = run_campaign(extended_spec, executor="serial")
        process = run_campaign(extended_spec, executor="process")
        assert vectorized.values.tobytes() == serial.values.tobytes()
        assert vectorized.values.tobytes() == process.values.tobytes()
        assert vectorized.values.shape == extended_spec.grid_shape

    def test_overrides_change_the_numbers(self, extended_spec):
        values = run_campaign(extended_spec).values
        # The far pair sees a different channel than the near pair.
        assert not np.array_equal(values[:, :, 0], values[:, :, 1])
        # The -6 dB backoff lowers every optimal sum rate.
        assert np.all(values[..., 1, :, :] < values[..., 0, :, :])
