"""Cross-validation of the batched analytic kernel against the LP path.

The kernel must agree with ``optimal_sum_rate`` (scipy HiGHS) on every
protocol over random channels — it solves the *same* optimization by
equalization-support enumeration — and must be invariant to batch size at
the bit level, which is what makes the executors interchangeable.
"""

import numpy as np
import pytest

from repro.campaign.kernel import batched_sum_rates, mi_value_table
from repro.channels.gains import LinkGains
from repro.core.capacity import optimal_sum_rate
from repro.core.gaussian import GaussianChannel
from repro.core.protocols import Protocol
from repro.core.terms import MiKey
from repro.exceptions import InvalidParameterError


@pytest.fixture(scope="module")
def random_batch():
    rng = np.random.default_rng(42)
    n = 60
    return (
        rng.exponential(0.2, n),
        rng.exponential(1.0, n),
        rng.exponential(3.0, n),
        rng.uniform(0.1, 40.0, n),
    )


class TestAgainstLpBackend:
    @pytest.mark.parametrize("protocol", list(Protocol))
    def test_matches_scipy_on_random_channels(self, protocol, random_batch):
        gab, gar, gbr, power = random_batch
        fast = batched_sum_rates(protocol, gab, gar, gbr, power)
        reference = [
            optimal_sum_rate(
                protocol,
                GaussianChannel(
                    gains=LinkGains(gab[i], gar[i], gbr[i]), power=power[i]
                ),
            ).sum_rate
            for i in range(gab.size)
        ]
        np.testing.assert_allclose(fast, reference, atol=1e-7)

    def test_matches_scipy_on_paper_channels(self, paper_gains):
        for power_db in (0.0, 10.0, 15.0):
            power = 10.0 ** (power_db / 10.0)
            for protocol in Protocol:
                fast = batched_sum_rates(
                    protocol,
                    np.array([paper_gains.gab]),
                    np.array([paper_gains.gar]),
                    np.array([paper_gains.gbr]),
                    np.array([power]),
                )[0]
                reference = optimal_sum_rate(
                    protocol, GaussianChannel(gains=paper_gains, power=power)
                ).sum_rate
                assert fast == pytest.approx(reference, abs=1e-8)

    def test_dt_closed_form(self):
        """DT's optimum is exactly the direct-link capacity."""
        gab = np.array([0.5, 1.0, 4.0])
        ones = np.ones(3)
        values = batched_sum_rates(Protocol.DT, gab, ones, ones, 2.0)
        np.testing.assert_allclose(values, np.log2(1.0 + 2.0 * gab), atol=1e-12)


class TestBatchInvariance:
    def test_batch_of_n_equals_batches_of_one_bitwise(self, random_batch):
        gab, gar, gbr, power = random_batch
        for protocol in Protocol:
            full = batched_sum_rates(protocol, gab, gar, gbr, power)
            singles = [
                batched_sum_rates(
                    protocol,
                    gab[i : i + 1],
                    gar[i : i + 1],
                    gbr[i : i + 1],
                    power[i : i + 1],
                )
                for i in range(gab.size)
            ]
            assert np.array_equal(full, np.concatenate(singles))

    def test_split_batches_equal_full_batch_bitwise(self, random_batch):
        gab, gar, gbr, power = random_batch
        full = batched_sum_rates(Protocol.HBC, gab, gar, gbr, power)
        first = batched_sum_rates(
            Protocol.HBC, gab[:30], gar[:30], gbr[:30], power[:30]
        )
        second = batched_sum_rates(
            Protocol.HBC, gab[30:], gar[30:], gbr[30:], power[30:]
        )
        assert np.array_equal(full, np.concatenate([first, second]))


class TestInterface:
    def test_scalar_power_broadcasts(self, random_batch):
        gab, gar, gbr, _ = random_batch
        scalar = batched_sum_rates(Protocol.MABC, gab, gar, gbr, 10.0)
        array = batched_sum_rates(Protocol.MABC, gab, gar, gbr, np.full(gab.size, 10.0))
        assert np.array_equal(scalar, array)

    def test_empty_batch(self):
        values = batched_sum_rates(
            Protocol.MABC, np.zeros(0), np.zeros(0), np.zeros(0), np.zeros(0)
        )
        assert values.shape == (0,)

    def test_invalid_inputs_rejected(self):
        one = np.ones(1)
        with pytest.raises(InvalidParameterError):
            batched_sum_rates(Protocol.MABC, -one, one, one, one)
        with pytest.raises(InvalidParameterError):
            batched_sum_rates(Protocol.MABC, one, one, one, -one)
        with pytest.raises(InvalidParameterError):
            batched_sum_rates(
                Protocol.MABC, np.ones((2, 2)), np.ones((2, 2)), np.ones((2, 2)), 1.0
            )

    def test_mi_table_matches_gaussian_channel(self, paper_gains):
        channel = GaussianChannel(gains=paper_gains, power=10.0)
        table = mi_value_table(
            np.array([paper_gains.gab]),
            np.array([paper_gains.gar]),
            np.array([paper_gains.gbr]),
            np.array([10.0]),
        )
        for ki, key in enumerate(MiKey):
            assert table[0, ki] == pytest.approx(channel.mi_value(key), abs=1e-12)
