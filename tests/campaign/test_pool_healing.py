"""Self-healing process pools: a dead worker never loses a campaign.

A worker killed mid-chunk (``os._exit`` via the ``worker-death`` fault)
breaks a ``concurrent.futures`` pool permanently.  The executors detect
the breakage, swap in a fresh pool (counted in ``pool_rebuilds``), and
the engine re-dispatches exactly the failed chunks — completed chunks
are already checkpointed and are never recomputed.  The recovered run is
bitwise-identical to a fault-free one.
"""

import numpy as np
import pytest

from repro.campaign.engine import RetryPolicy, run_campaign
from repro.campaign.executors import AsyncExecutor, MultiprocessExecutor
from repro.campaign.spec import CampaignSpec, FadingSpec
from repro.core.protocols import Protocol
from repro.faults import FaultPlan, FaultRule, chunk_site

FAST_RETRY = RetryPolicy(max_attempts=3, backoff_base=0.0)


@pytest.fixture
def spec(paper_gains):
    return CampaignSpec(
        protocols=(Protocol.MABC, Protocol.TDBC),
        powers_db=(0.0, 10.0),
        gains=(paper_gains,),
        fading=FadingSpec(n_draws=12, seed=11),
    )


@pytest.fixture
def reference(spec):
    return run_campaign(spec, executor="vectorized")


def death_plan(lo, hi):
    """Kill the worker evaluating chunk [lo, hi) on its first attempt."""
    return FaultPlan(rules=(FaultRule(kind="worker-death", site=chunk_site(lo, hi)),))


class TestWorkerDeathRecovery:
    def test_process_executor_heals_and_converges(self, spec, reference, tmp_path):
        executor = MultiprocessExecutor(processes=2)
        result = run_campaign(
            spec,
            executor=executor,
            cache=tmp_path,
            chunk_size=16,
            fault_plan=death_plan(16, 32),
            retry=FAST_RETRY,
        )
        # Sequential chunk dispatch: exactly one chunk died, exactly one
        # rebuild, and the counters must match the plan exactly.
        assert result.pool_rebuilds == 1
        assert result.chunk_retries == 1
        assert executor.pool_rebuilds == 1
        assert result.values.tobytes() == reference.values.tobytes()

    def test_async_executor_single_chunk_heals(self, spec, reference, tmp_path):
        executor = AsyncExecutor(processes=2)
        # One chunk spans the whole grid, so there is no collateral damage:
        # the counters are exact.
        result = run_campaign(
            spec,
            executor=executor,
            cache=tmp_path,
            chunk_size=spec.n_units,
            fault_plan=death_plan(0, spec.n_units),
            retry=FAST_RETRY,
        )
        assert result.pool_rebuilds == 1
        assert result.chunk_retries == 1
        assert result.values.tobytes() == reference.values.tobytes()

    def test_async_executor_concurrent_chunks_heal(self, spec, reference, tmp_path):
        executor = AsyncExecutor(processes=2)
        result = run_campaign(
            spec,
            executor=executor,
            cache=tmp_path,
            chunk_size=16,
            fault_plan=death_plan(16, 32),
            retry=FAST_RETRY,
        )
        # Concurrent siblings of the dying chunk may fail collaterally
        # (their futures ride the same broken pool), so the retry count is
        # a floor — but the identity-guarded heal rebuilds exactly once,
        # and the values are exactly right.
        assert result.pool_rebuilds == 1
        assert result.chunk_retries >= 1
        assert result.values.tobytes() == reference.values.tobytes()

    def test_transient_worker_error_does_not_rebuild(self, spec, reference, tmp_path):
        executor = MultiprocessExecutor(processes=2)
        plan = FaultPlan(
            rules=(FaultRule(kind="chunk-error", site=chunk_site(0, 16)),)
        )
        result = run_campaign(
            spec,
            executor=executor,
            cache=tmp_path,
            chunk_size=16,
            fault_plan=plan,
            retry=FAST_RETRY,
        )
        # The exception came *out of* a live worker: the pool survives.
        assert result.pool_rebuilds == 0
        assert result.chunk_retries == 1
        assert result.values.tobytes() == reference.values.tobytes()

    def test_fault_free_pool_run_reports_zero_recoveries(
        self, spec, reference, tmp_path
    ):
        result = run_campaign(
            spec,
            executor=AsyncExecutor(processes=2),
            cache=tmp_path,
            chunk_size=16,
        )
        assert result.pool_rebuilds == 0
        assert result.chunk_retries == 0
        assert result.values.tobytes() == reference.values.tobytes()


class TestHealMechanics:
    def test_heal_is_identity_guarded(self):
        executor = AsyncExecutor(processes=1)
        with executor.reserve():
            broken = executor._reserved_pool()
            assert executor._heal(broken) is True
            assert executor.pool_rebuilds == 1
            # A second report of the same (now stale) pool is a no-op.
            assert executor._heal(broken) is False
            assert executor.pool_rebuilds == 1
            healed = executor._reserved_pool()
            assert healed is not broken
        assert executor._reserved_pool() is None

    def test_heal_ignores_unreserved_pools(self):
        executor = AsyncExecutor(processes=1)
        assert executor._heal(None) is False
        assert executor.pool_rebuilds == 0
