"""Unit tests for the content-addressed campaign result cache."""

import numpy as np
import pytest

from repro.campaign.cache import CACHE_DIR_ENV, CampaignCache, default_cache_dir


@pytest.fixture
def cache(tmp_path):
    return CampaignCache(tmp_path / "store")


class TestRoundTrip:
    def test_store_then_load(self, cache):
        values = np.arange(12.0).reshape(3, 4)
        cache.store("abc123", values, {"spec": "demo"})
        loaded = cache.load("abc123")
        assert np.array_equal(loaded, values)

    def test_missing_key_is_none(self, cache):
        assert cache.load("nope") is None

    def test_store_creates_directory(self, tmp_path):
        cache = CampaignCache(tmp_path / "deep" / "nested")
        cache.store("k", np.ones(2), {})
        assert cache.load("k") is not None

    def test_overwrite_replaces_entry(self, cache):
        cache.store("k", np.ones(2), {})
        cache.store("k", np.zeros(2), {})
        assert np.array_equal(cache.load("k"), np.zeros(2))

    def test_spec_json_rides_along(self, cache):
        path = cache.store("k", np.ones(2), {"n_draws": 5})
        with np.load(path) as entry:
            assert "n_draws" in str(entry["spec_json"])


class TestRobustness:
    def test_corrupt_entry_is_a_miss(self, cache):
        cache.store("k", np.ones(2), {})
        cache.path_for("k").write_bytes(b"not a zip archive")
        assert cache.load("k") is None

    def test_truncated_entry_is_a_miss(self, cache):
        cache.store("k", np.ones(2), {})
        raw = cache.path_for("k").read_bytes()
        cache.path_for("k").write_bytes(raw[: len(raw) // 2])
        assert cache.load("k") is None

    def test_no_temp_files_left_behind(self, cache):
        cache.store("k", np.ones(2), {})
        leftovers = [
            p for p in cache.directory.iterdir() if p.suffix == ".tmp"
        ]
        assert leftovers == []

    def test_clear(self, cache):
        cache.store("k1", np.ones(2), {})
        cache.store("k2", np.ones(2), {})
        assert cache.clear() == 2
        assert cache.load("k1") is None
        assert CampaignCache(cache.directory / "missing").clear() == 0


class TestDefaultDirectory:
    def test_env_override(self, monkeypatch, tmp_path):
        monkeypatch.setenv(CACHE_DIR_ENV, str(tmp_path / "override"))
        assert default_cache_dir() == tmp_path / "override"

    def test_default_under_home(self, monkeypatch):
        monkeypatch.delenv(CACHE_DIR_ENV, raising=False)
        assert default_cache_dir().name == "campaigns"
