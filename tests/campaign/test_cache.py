"""Unit tests for the content-addressed campaign result cache."""

import numpy as np
import pytest

from repro.campaign.cache import (
    CACHE_DIR_ENV,
    CampaignCache,
    _digest,
    default_cache_dir,
)


@pytest.fixture
def cache(tmp_path):
    return CampaignCache(tmp_path / "store")


class TestRoundTrip:
    def test_store_then_load(self, cache):
        values = np.arange(12.0).reshape(3, 4)
        cache.store("abc123", values, {"spec": "demo"})
        loaded = cache.load("abc123")
        assert np.array_equal(loaded, values)

    def test_missing_key_is_none(self, cache):
        assert cache.load("nope") is None

    def test_store_creates_directory(self, tmp_path):
        cache = CampaignCache(tmp_path / "deep" / "nested")
        cache.store("k", np.ones(2), {})
        assert cache.load("k") is not None

    def test_overwrite_replaces_entry(self, cache):
        cache.store("k", np.ones(2), {})
        cache.store("k", np.zeros(2), {})
        assert np.array_equal(cache.load("k"), np.zeros(2))

    def test_spec_json_rides_along(self, cache):
        path = cache.store("k", np.ones(2), {"n_draws": 5})
        with np.load(path) as entry:
            assert "n_draws" in str(entry["spec_json"])


class TestRobustness:
    def test_corrupt_entry_is_a_miss(self, cache):
        cache.store("k", np.ones(2), {})
        cache.path_for("k").write_bytes(b"not a zip archive")
        assert cache.load("k") is None

    def test_truncated_entry_is_a_miss(self, cache):
        cache.store("k", np.ones(2), {})
        raw = cache.path_for("k").read_bytes()
        cache.path_for("k").write_bytes(raw[: len(raw) // 2])
        assert cache.load("k") is None

    def test_digest_mismatch_is_a_miss_and_discarded(self, cache):
        path = cache.path_for("k")
        path.parent.mkdir(parents=True, exist_ok=True)
        np.savez(
            path,
            values=np.ones(2),
            digest=np.array("0" * 64),
            spec_json=np.array("{}"),
        )
        assert cache.load("k") is None
        assert not path.exists()

    def test_no_temp_files_left_behind(self, cache):
        cache.store("k", np.ones(2), {})
        leftovers = [p for p in cache.directory.iterdir() if p.suffix == ".tmp"]
        assert leftovers == []

    def test_clear(self, cache):
        cache.store("k1", np.ones(2), {})
        cache.store("k2", np.ones(2), {})
        assert cache.clear() == 2
        assert cache.load("k1") is None
        assert CampaignCache(cache.directory / "missing").clear() == 0


class TestChunkEntries:
    def test_store_then_load_chunk(self, cache):
        values = np.arange(8.0)
        cache.store_chunk("k", 16, 24, values, {"spec": "demo"})
        assert np.array_equal(cache.load_chunk("k", 16, 24), values)
        assert cache.load_chunk("k", 0, 8) is None
        # Chunks never shadow the full-campaign entry.
        assert cache.load("k") is None

    def test_chunk_digest_mismatch_is_discarded_not_served(self, cache):
        path = cache.chunk_path_for("k", 0, 4)
        path.parent.mkdir(parents=True, exist_ok=True)
        np.savez(
            path,
            values=np.ones(4),
            digest=np.array("0" * 64),
            start=np.array(0),
            stop=np.array(4),
            spec_json=np.array("{}"),
        )
        assert cache.load_chunk("k", 0, 4) is None
        assert not path.exists()

    def test_corrupted_chunk_bytes_are_discarded_not_served(self, cache):
        path = cache.store_chunk("k", 0, 4, np.ones(4), {})
        raw = bytearray(path.read_bytes())
        raw[len(raw) // 2] ^= 0xFF
        path.write_bytes(bytes(raw))
        assert cache.load_chunk("k", 0, 4) is None
        assert not path.exists()

    def test_truncated_chunk_is_discarded_not_served(self, cache):
        path = cache.store_chunk("k", 0, 4, np.ones(4), {})
        path.write_bytes(path.read_bytes()[: path.stat().st_size // 2])
        assert cache.load_chunk("k", 0, 4) is None
        assert not path.exists()

    def test_wrong_length_chunk_is_discarded(self, cache):
        # An entry whose payload does not match its declared unit range.
        path = cache.chunk_path_for("k", 0, 4)
        path.parent.mkdir(parents=True, exist_ok=True)
        values = np.ones(3)
        np.savez(
            path,
            values=values,
            digest=np.array(_digest(values)),
            start=np.array(0),
            stop=np.array(4),
            spec_json=np.array("{}"),
        )
        assert cache.load_chunk("k", 0, 4) is None
        assert not path.exists()

    def test_iter_chunks_yields_valid_entries_in_order(self, cache):
        cache.store_chunk("k", 8, 12, np.full(4, 2.0), {})
        cache.store_chunk("k", 0, 8, np.full(8, 1.0), {})
        corrupt = cache.store_chunk("k", 12, 16, np.full(4, 3.0), {})
        corrupt.write_bytes(b"garbage")
        chunks = list(cache.iter_chunks("k"))
        assert [(start, stop) for start, stop, _ in chunks] == [(0, 8), (8, 12)]
        assert not corrupt.exists()
        assert list(cache.iter_chunks("missing")) == []

    def test_clear_removes_chunk_entries_too(self, cache):
        cache.store("k", np.ones(2), {})
        cache.store_chunk("k", 0, 2, np.ones(2), {})
        cache.store_chunk("k", 2, 4, np.ones(2), {})
        assert cache.clear() == 3
        assert not cache.chunk_dir_for("k").exists()


class TestDefaultDirectory:
    def test_env_override(self, monkeypatch, tmp_path):
        monkeypatch.setenv(CACHE_DIR_ENV, str(tmp_path / "override"))
        assert default_cache_dir() == tmp_path / "override"

    def test_default_under_home(self, monkeypatch):
        monkeypatch.delenv(CACHE_DIR_ENV, raising=False)
        assert default_cache_dir().name == "campaigns"
