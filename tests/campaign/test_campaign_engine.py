"""End-to-end tests of the campaign engine: execution, caching, reuse."""

import numpy as np
import pytest

from repro.campaign.cache import CampaignCache
from repro.campaign.engine import evaluate_ensemble, run_campaign
from repro.campaign.executors import MultiprocessExecutor
from repro.campaign.spec import CampaignSpec, FadingSpec
from repro.channels.fading import sample_gain_ensemble
from repro.core.capacity import optimal_sum_rate
from repro.core.gaussian import GaussianChannel
from repro.core.protocols import Protocol
from repro.exceptions import InvalidParameterError


@pytest.fixture
def fading_spec(paper_gains):
    return CampaignSpec(
        protocols=(Protocol.MABC, Protocol.TDBC, Protocol.HBC),
        powers_db=(0.0, 10.0),
        gains=(paper_gains,),
        fading=FadingSpec(n_draws=16, seed=5),
    )


class TestRunCampaign:
    def test_result_shape_and_metadata(self, fading_spec):
        result = run_campaign(fading_spec, executor="vectorized")
        assert result.values.shape == fading_spec.grid_shape
        assert result.executor_name == "vectorized"
        assert not result.from_cache
        assert result.shard is None
        assert result.cells_computed == fading_spec.n_units
        assert result.cells_from_cache == 0
        assert np.all(result.values > 0)

    def test_executors_agree_bitwise_on_seeded_ensemble(self, fading_spec):
        serial = run_campaign(fading_spec, executor="serial")
        vectorized = run_campaign(fading_spec, executor="vectorized")
        pooled = run_campaign(fading_spec, executor=MultiprocessExecutor(processes=2))
        assert np.array_equal(serial.values, vectorized.values)
        assert np.array_equal(serial.values, pooled.values)

    def test_chunked_execution_is_bitwise_identical(self, fading_spec):
        whole = run_campaign(fading_spec)
        chunked = run_campaign(fading_spec, chunk_size=7)
        assert np.array_equal(whole.values, chunked.values)

    def test_hbc_dominates_mabc_and_tdbc_per_draw(self, fading_spec):
        result = run_campaign(fading_spec)
        mabc, tdbc, hbc = result.values
        assert np.all(hbc >= mabc - 1e-9)
        assert np.all(hbc >= tdbc - 1e-9)

    def test_values_match_legacy_lp_path(self, fading_spec):
        """The engine reproduces per-draw scipy LP optima to LP tolerance."""
        result = run_campaign(fading_spec)
        draws = fading_spec.sample_gain_draws()
        from repro.channels.gains import LinkGains

        for pi, protocol in enumerate(fading_spec.protocols):
            for wi, power_db in enumerate(fading_spec.powers_db):
                power = 10.0 ** (power_db / 10.0)
                for di in range(4):  # spot-check a few draws
                    gains = LinkGains(*draws[0, di])
                    reference = optimal_sum_rate(
                        protocol, GaussianChannel(gains=gains, power=power)
                    ).sum_rate
                    assert result.values[pi, wi, 0, di] == pytest.approx(
                        reference, abs=1e-7
                    )

    def test_progress_reports_total_units(self, fading_spec):
        ticks = []
        run_campaign(
            fading_spec, progress=lambda done, total: ticks.append((done, total))
        )
        assert ticks[-1] == (fading_spec.n_units, fading_spec.n_units)


class TestCaching:
    def test_repeated_spec_hits_the_cache(self, fading_spec, tmp_path):
        cache = CampaignCache(tmp_path)
        first = run_campaign(fading_spec, cache=cache)
        second = run_campaign(fading_spec, cache=cache)
        assert not first.from_cache
        assert first.cells_computed == fading_spec.n_units
        assert second.from_cache
        assert second.cells_from_cache == fading_spec.n_units
        assert second.cells_computed == 0
        assert np.array_equal(first.values, second.values)

    def test_cache_shared_across_executors(self, fading_spec, tmp_path):
        cache = CampaignCache(tmp_path)
        run_campaign(fading_spec, executor="vectorized", cache=cache)
        hit = run_campaign(fading_spec, executor="serial", cache=cache)
        assert hit.from_cache

    def test_changed_spec_misses(self, fading_spec, tmp_path, paper_gains):
        cache = CampaignCache(tmp_path)
        run_campaign(fading_spec, cache=cache)
        changed = CampaignSpec(
            protocols=fading_spec.protocols,
            powers_db=fading_spec.powers_db,
            gains=(paper_gains,),
            fading=FadingSpec(n_draws=16, seed=6),
        )
        result = run_campaign(changed, cache=cache)
        assert not result.from_cache

    def test_cache_path_argument(self, fading_spec, tmp_path):
        run_campaign(fading_spec, cache=tmp_path / "store")
        hit = run_campaign(fading_spec, cache=tmp_path / "store")
        assert hit.from_cache

    def test_untrusted_executor_never_writes_the_cache(self, fading_spec, tmp_path):
        """Only the bitwise-verified built-ins may populate the store."""

        class ApproximateExecutor:
            name = "approximate"

            def run(self, batches, progress=None):
                return [np.zeros(len(batch)) for batch in batches]

        cache = CampaignCache(tmp_path)
        run_campaign(fading_spec, executor=ApproximateExecutor(), cache=cache)
        result = run_campaign(fading_spec, executor="vectorized", cache=cache)
        assert not result.from_cache
        assert np.all(result.values > 0)

    def test_cache_hit_reports_full_progress(self, fading_spec, tmp_path):
        run_campaign(fading_spec, cache=tmp_path)
        ticks = []
        run_campaign(
            fading_spec,
            cache=tmp_path,
            progress=lambda done, total: ticks.append((done, total)),
        )
        assert ticks == [(fading_spec.n_units, fading_spec.n_units)]


class TestResultAccessors:
    def test_slicing_and_statistics(self, fading_spec):
        result = run_campaign(fading_spec)
        slice_ = result.values_for(Protocol.HBC, 10.0)
        assert slice_.shape == (1, 16)
        assert result.ergodic_mean(Protocol.HBC, 10.0) == pytest.approx(
            float(slice_.mean())
        )
        assert (
            result.outage_rate(Protocol.HBC, 10.0, 0.1)
            <= result.ergodic_mean(Protocol.HBC, 10.0) + 1e-9
        )
        rows = result.summary_rows()
        assert len(rows) == 6
        with pytest.raises(InvalidParameterError):
            result.values_for(Protocol.DT, 10.0)
        with pytest.raises(InvalidParameterError):
            result.values_for(Protocol.HBC, 3.0)
        with pytest.raises(InvalidParameterError):
            result.outage_rate(Protocol.HBC, 10.0, 1.5)


class TestEvaluateEnsemble:
    def test_matches_per_draw_lp(self, paper_gains, rng):
        ensemble = sample_gain_ensemble(paper_gains, 10, rng)
        values = evaluate_ensemble(Protocol.MABC, ensemble, 10.0)
        reference = [
            optimal_sum_rate(
                Protocol.MABC, GaussianChannel(gains=draw, power=10.0)
            ).sum_rate
            for draw in ensemble
        ]
        np.testing.assert_allclose(values, reference, atol=1e-7)

    def test_accepts_plain_arrays(self, paper_gains):
        triple = (paper_gains.gab, paper_gains.gar, paper_gains.gbr)
        values = evaluate_ensemble(Protocol.MABC, [triple, triple], 10.0)
        assert values.shape == (2,)
        assert values[0] == values[1]

    def test_chunked_evaluation_is_bitwise_identical(self, paper_gains, rng):
        ensemble = sample_gain_ensemble(paper_gains, 11, rng)
        whole = evaluate_ensemble(Protocol.HBC, ensemble, 10.0)
        chunked = evaluate_ensemble(Protocol.HBC, ensemble, 10.0, chunk_size=3)
        assert np.array_equal(whole, chunked)

    def test_bad_shapes_rejected(self):
        with pytest.raises(InvalidParameterError):
            evaluate_ensemble(Protocol.MABC, [(1.0, 2.0)], 10.0)
