"""Importance sampling through the campaign seam, plus adaptive accounting.

Two contracts:

* An IS-bearing campaign is *bitwise identical* across executors and
  across shard-then-gather — the proposal twist lives inside the fused
  kernel, below everything the campaign layer permutes.
* ``CampaignResult.unresolved_cells`` surfaces how many adaptive cells
  exhausted ``max_rounds`` without meeting ``target_rel_error``, and is
  honestly ``None`` whenever the in-process tally cannot know (cache
  hits, worker processes, non-adaptive campaigns).
"""

import numpy as np
import pytest

from repro.campaign.engine import gather_campaign, run_campaign
from repro.campaign.spec import CampaignSpec, FadingSpec, LinkSimSpec
from repro.channels.gains import LinkGains
from repro.core.protocols import Protocol


def importance_spec(**overrides):
    link_kwargs = {
        "n_rounds": 8,
        "payload_bits": 24,
        "seed": 5,
        "code": "test",
        "crc": "crc8",
        "metric": "fer",
        "importance_sampling": {"noise_scale": 1.05, "noise_shift": 0.1},
    }
    link_kwargs.update(overrides.pop("link_kwargs", {}))
    return CampaignSpec(
        protocols=(Protocol.DT, Protocol.NAIVE4),
        powers_db=(0.0, 6.0),
        gains=(LinkGains.from_db(-7.0, 0.0, 5.0),),
        fading=FadingSpec(n_draws=3, seed=13),
        link=LinkSimSpec(**link_kwargs),
        **overrides,
    )


class TestBitwiseAcrossTheSeam:
    @pytest.fixture(scope="class")
    def reference(self):
        return run_campaign(importance_spec(), executor="serial")

    def test_vectorized_matches_serial_bitwise(self, reference):
        vectorized = run_campaign(importance_spec(), executor="vectorized")
        assert (
            vectorized.values.tobytes() == reference.values.tobytes()
        )

    def test_sharded_then_gathered_matches_bitwise(self, reference, tmp_path):
        spec = importance_spec()
        for index in range(3):
            run_campaign(
                spec,
                shard=spec.shard(index, 3),
                cache=tmp_path,
                executor="vectorized",
            )
        gathered = gather_campaign(spec, tmp_path)
        assert gathered.values.tobytes() == reference.values.tobytes()

    def test_proposal_changes_the_realized_values(self, reference):
        """The twist is live: vanilla values differ from biased ones."""
        vanilla = importance_spec(
            link_kwargs={"importance_sampling": None}
        )
        result = run_campaign(vanilla, executor="serial")
        assert result.values.tobytes() != reference.values.tobytes()


class TestUnresolvedAccounting:
    def adaptive_spec(self, **link_overrides):
        """High-SNR cells that cannot produce errors: never resolve."""
        link_kwargs = {
            "target_rel_error": 0.5,
            "max_rounds": 16,
            "importance_sampling": None,
        }
        link_kwargs.update(link_overrides)
        return CampaignSpec(
            protocols=(Protocol.DT,),
            powers_db=(20.0,),
            gains=(LinkGains.from_db(20.0, 20.0, 20.0),),
            fading=FadingSpec(n_draws=2, seed=13),
            link=LinkSimSpec(
                n_rounds=8,
                payload_bits=24,
                seed=5,
                code="test",
                crc="crc8",
                metric="fer",
                **link_kwargs,
            ),
        )

    def test_unresolved_cells_are_counted(self):
        result = run_campaign(self.adaptive_spec(), executor="vectorized")
        assert result.unresolved_cells == result.spec.n_units == 2

    def test_importance_sampled_unresolved_cells_are_counted(self):
        spec = self.adaptive_spec(
            importance_sampling={"noise_scale": 1.01}
        )
        result = run_campaign(spec, executor="serial")
        assert result.unresolved_cells == 2

    def test_non_adaptive_campaign_reports_unknown(self):
        result = run_campaign(importance_spec(), executor="serial")
        assert result.unresolved_cells is None

    def test_all_cache_run_reports_unknown(self, tmp_path):
        spec = self.adaptive_spec()
        first = run_campaign(spec, cache=tmp_path, executor="vectorized")
        assert first.unresolved_cells == 2
        rerun = run_campaign(spec, cache=tmp_path, executor="vectorized")
        assert rerun.from_cache
        assert rerun.unresolved_cells is None

    def test_evaluation_result_passthrough(self):
        from repro.api import evaluate
        from repro.scenarios import Scenario

        scenario = Scenario.from_campaign_spec(
            self.adaptive_spec(),
            name="unresolved-probe",
            description="adaptive accounting passthrough",
            objective="operational_fer",
        )
        outcome = evaluate(scenario, executor="vectorized", cache=False)
        assert outcome.unresolved_cells == 2


class TestResolvedFlags:
    def test_reports_carry_resolution_flags(self):
        from repro.simulation.linkcodec import LinkCodec
        from repro.simulation.convolutional import TEST_CODE
        from repro.simulation.crc import CRC8
        from repro.simulation.montecarlo import simulate_protocol

        codec = LinkCodec(payload_bits=24, code=TEST_CODE, crc=CRC8)
        fixed = simulate_protocol(
            Protocol.DT,
            LinkGains.from_db(-7.0, 0.0, 5.0),
            1.0,
            8,
            np.random.default_rng(3),
            codec=codec,
        )
        assert fixed.resolved is None
        adaptive = simulate_protocol(
            Protocol.DT,
            LinkGains.from_db(-7.0, 0.0, 5.0),
            1.0,
            8,
            np.random.default_rng(3),
            codec=codec,
            target_rel_error=0.5,
            max_rounds=512,
        )
        assert adaptive.resolved in (True, False)
