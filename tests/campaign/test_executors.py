"""Executor equivalence: serial, multiprocessing and vectorized must agree
bitwise on identical work, so cached results are execution-independent."""

import numpy as np
import pytest

from repro.campaign.executors import (
    MultiprocessExecutor,
    SerialExecutor,
    UnitBatch,
    VectorizedExecutor,
    get_executor,
)
from repro.campaign.spec import CampaignSpec, FadingSpec
from repro.core.protocols import Protocol
from repro.exceptions import InvalidParameterError


@pytest.fixture(scope="module")
def seeded_batches():
    """Per-protocol unit batches over one seeded Rayleigh ensemble."""
    from repro.channels.gains import LinkGains

    paper_gains = LinkGains.from_db(-7.0, 0.0, 5.0)
    spec = CampaignSpec(
        protocols=(Protocol.MABC, Protocol.TDBC, Protocol.HBC),
        powers_db=(10.0,),
        gains=(paper_gains,),
        fading=FadingSpec(n_draws=24, seed=99),
    )
    draws = spec.sample_gain_draws().reshape(-1, 3)
    return [
        UnitBatch(
            protocol=protocol,
            gab=draws[:, 0],
            gar=draws[:, 1],
            gbr=draws[:, 2],
            power=np.full(draws.shape[0], 10.0),
        )
        for protocol in spec.protocols
    ]


@pytest.fixture(scope="module")
def serial_results(seeded_batches):
    return SerialExecutor().run(seeded_batches)


class TestBitwiseEquivalence:
    def test_vectorized_matches_serial(self, seeded_batches, serial_results):
        vectorized = VectorizedExecutor().run(seeded_batches)
        for fast, reference in zip(vectorized, serial_results):
            assert np.array_equal(fast, reference)

    def test_chunked_vectorized_matches_serial(self, seeded_batches, serial_results):
        chunked = VectorizedExecutor(max_batch=7).run(seeded_batches)
        for fast, reference in zip(chunked, serial_results):
            assert np.array_equal(fast, reference)

    def test_multiprocess_matches_serial(self, seeded_batches, serial_results):
        pooled = MultiprocessExecutor(processes=2).run(seeded_batches)
        for fast, reference in zip(pooled, serial_results):
            assert np.array_equal(fast, reference)

    def test_multiprocess_chunking_invariant(self, seeded_batches, serial_results):
        pooled = MultiprocessExecutor(processes=2, chunksize=5).run(seeded_batches)
        for fast, reference in zip(pooled, serial_results):
            assert np.array_equal(fast, reference)


@pytest.fixture(scope="module")
def link_batch():
    """One operational (link-level) unit batch of six fused cells."""
    from repro.campaign.spec import LinkSimSpec
    from repro.channels.gains import LinkGains

    gains = [LinkGains.from_db(-7.0 + i, 0.0, 5.0 - i) for i in range(6)]
    return UnitBatch(
        protocol=Protocol.MABC,
        gab=np.array([g.gab for g in gains]),
        gar=np.array([g.gar for g in gains]),
        gbr=np.array([g.gbr for g in gains]),
        power=np.full(6, 10**1.2),
        link=LinkSimSpec(n_rounds=4, payload_bits=24, seed=5, code="test",
                         crc="crc8"),
        indices=np.arange(6),
    )


class TestLinkBatchMemoryCap:
    """`max_batch` must bound fused link-unit batches, not just analytic ones."""

    def test_capped_vectorized_matches_serial(self, link_batch):
        reference = SerialExecutor().run([link_batch])[0]
        for max_batch in (1, 2, 4, None):
            capped = VectorizedExecutor(max_batch=max_batch).run([link_batch])[0]
            assert np.array_equal(capped, reference)

    def test_cap_bounds_cells_per_fused_call(self, link_batch, monkeypatch):
        from repro.simulation import montecarlo

        widths = []
        original = montecarlo.simulate_protocol_cells

        def recording(protocol, gains_cells, *args, **kwargs):
            widths.append(len(tuple(gains_cells)))
            return original(protocol, gains_cells, *args, **kwargs)

        monkeypatch.setattr(montecarlo, "simulate_protocol_cells", recording)
        VectorizedExecutor(max_batch=2).run([link_batch])
        assert widths and max(widths) <= 2
        assert sum(widths) == len(link_batch)


class TestProgress:
    def test_progress_reaches_total(self, seeded_batches):
        ticks = []
        VectorizedExecutor().run(
            seeded_batches, progress=lambda done, total: ticks.append((done, total))
        )
        total = sum(len(b) for b in seeded_batches)
        assert ticks[-1] == (total, total)
        assert [t[0] for t in ticks] == sorted(t[0] for t in ticks)

    def test_serial_progress_counts_every_unit(self, seeded_batches):
        ticks = []
        SerialExecutor().run(
            seeded_batches[:1],
            progress=lambda done, total: ticks.append((done, total)),
        )
        assert len(ticks) == len(seeded_batches[0])


class TestRegistry:
    def test_names_resolve(self):
        assert isinstance(get_executor("serial"), SerialExecutor)
        assert isinstance(get_executor("process"), MultiprocessExecutor)
        assert isinstance(get_executor("vectorized"), VectorizedExecutor)
        assert isinstance(get_executor(None), VectorizedExecutor)

    def test_instances_pass_through(self):
        executor = VectorizedExecutor(max_batch=3)
        assert get_executor(executor) is executor

    def test_unknown_name_rejected(self):
        with pytest.raises(InvalidParameterError):
            get_executor("gpu")

    def test_invalid_parameters_rejected(self):
        with pytest.raises(InvalidParameterError):
            MultiprocessExecutor(processes=0)
        with pytest.raises(InvalidParameterError):
            MultiprocessExecutor(chunksize=0)
        with pytest.raises(InvalidParameterError):
            VectorizedExecutor(max_batch=0)
