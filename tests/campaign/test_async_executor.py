"""AsyncExecutor: chunk futures with work-stealing must be bitwise
identical to serial execution, and the engine's chunk-future seam must
checkpoint and resume exactly like the sequential loop."""

import numpy as np
import pytest

from repro.campaign.cache import CampaignCache
from repro.campaign.engine import gather_campaign, run_campaign
from repro.campaign.executors import (
    AsyncExecutor,
    SerialExecutor,
    UnitBatch,
    get_executor,
)
from repro.campaign.spec import CampaignSpec, FadingSpec, LinkSimSpec
from repro.core.protocols import Protocol
from repro.exceptions import InvalidParameterError


@pytest.fixture(scope="module")
def spec():
    from repro.channels.gains import LinkGains

    return CampaignSpec(
        protocols=(Protocol.MABC, Protocol.HBC),
        powers_db=(0.0, 10.0),
        gains=(LinkGains.from_db(-7.0, 0.0, 5.0),),
        fading=FadingSpec(n_draws=9, seed=41),
    )


@pytest.fixture(scope="module")
def reference(spec):
    return run_campaign(spec, executor="serial")


class TestBitwiseEquivalence:
    def test_run_matches_serial(self, spec, reference):
        result = run_campaign(spec, executor=AsyncExecutor(processes=3))
        assert result.values.tobytes() == reference.values.tobytes()

    def test_single_worker_matches_serial(self, spec, reference):
        result = run_campaign(spec, executor=AsyncExecutor(processes=1))
        assert result.values.tobytes() == reference.values.tobytes()

    def test_chunked_cached_run_matches_serial(self, spec, reference, tmp_path):
        result = run_campaign(
            spec,
            executor=AsyncExecutor(processes=2),
            cache=tmp_path,
            chunk_size=5,
        )
        assert result.values.tobytes() == reference.values.tobytes()
        assert result.cells_computed == spec.n_units

    def test_operational_cells_match_serial(self):
        from repro.channels.gains import LinkGains

        op_spec = CampaignSpec(
            protocols=(Protocol.DT, Protocol.MABC),
            powers_db=(10.0,),
            gains=(LinkGains.from_db(-7.0, 0.0, 5.0),),
            link=LinkSimSpec(n_rounds=2, payload_bits=32, seed=5),
        )
        serial = run_campaign(op_spec, executor="serial")
        futures = run_campaign(op_spec, executor=AsyncExecutor(processes=2))
        assert futures.values.tobytes() == serial.values.tobytes()


class TestChunkFutureSeam:
    def test_run_chunks_yields_every_tag(self, spec):
        draws = spec.sample_gain_draws().reshape(-1, 3)
        batch = UnitBatch(
            protocol=Protocol.MABC,
            gab=draws[:, 0],
            gar=draws[:, 1],
            gbr=draws[:, 2],
            power=np.full(draws.shape[0], 10.0),
        )
        jobs = [
            ((lo, lo + 3), [batch.slice(lo, lo + 3)]) for lo in range(0, 9, 3)
        ]
        executor = AsyncExecutor(processes=2)
        with executor.reserve():
            results = dict(executor.run_chunks(jobs))
        assert set(results) == {(0, 3), (3, 6), (6, 9)}
        reference = SerialExecutor().run([batch])[0]
        for (lo, hi), values in results.items():
            assert values.tobytes() == reference[lo:hi].tobytes()

    def test_checkpoints_written_per_chunk(self, spec, tmp_path):
        cache = CampaignCache(tmp_path)
        run_campaign(
            spec, executor=AsyncExecutor(processes=2), cache=cache, chunk_size=6
        )
        key_dirs = list(tmp_path.glob("*.chunks"))
        assert len(key_dirs) == 1
        assert len(list(key_dirs[0].glob("units-*.npz"))) == spec.n_units // 6

    def test_resumes_from_partial_checkpoints(self, spec, reference, tmp_path):
        cache = CampaignCache(tmp_path)
        shard = spec.shard(0, 2)
        run_campaign(
            spec,
            executor=AsyncExecutor(processes=2),
            cache=cache,
            shard=shard,
            chunk_size=6,
        )
        resumed = run_campaign(
            spec, executor=AsyncExecutor(processes=2), cache=cache, chunk_size=6
        )
        assert resumed.cells_from_cache > 0
        assert resumed.cells_computed == spec.n_units - resumed.cells_from_cache
        assert resumed.values.tobytes() == reference.values.tobytes()

    def test_shard_gather_matches_unsharded(self, spec, reference, tmp_path):
        cache = CampaignCache(tmp_path)
        for index in range(3):
            run_campaign(
                spec,
                executor=AsyncExecutor(processes=2),
                cache=cache,
                shard=spec.shard(index, 3),
                chunk_size=4,
            )
        gathered = gather_campaign(spec, cache)
        assert gathered.values.tobytes() == reference.values.tobytes()

    def test_progress_reaches_total(self, spec, tmp_path):
        seen = []
        run_campaign(
            spec,
            executor=AsyncExecutor(processes=2),
            cache=tmp_path,
            chunk_size=6,
            progress=lambda done, total: seen.append((done, total)),
        )
        assert seen[-1] == (spec.n_units, spec.n_units)
        dones = [done for done, _ in seen]
        assert dones == sorted(dones)


class TestConstruction:
    def test_registry_resolves_async(self):
        executor = get_executor("async", processes=2)
        assert isinstance(executor, AsyncExecutor)
        assert executor.processes == 2

    def test_rejects_bad_process_count(self):
        with pytest.raises(InvalidParameterError):
            AsyncExecutor(processes=0)

    def test_reserve_is_reentrant(self, spec, reference):
        executor = AsyncExecutor(processes=2)
        with executor.reserve():
            pool = executor._pool
            with executor.reserve():
                assert executor._pool is pool
            assert executor._pool is pool
            result = run_campaign(spec, executor=executor)
        assert executor._pool is None
        assert result.values.tobytes() == reference.values.tobytes()
