"""Cache-corruption recovery under concurrent access.

A shared cache directory is the only coordination point between
executors (shards, daemon requests, resumed runs), so a damaged entry
must never poison any of them: every reader detects the bad digest,
discards the entry, recomputes the cells, and still produces the
bitwise-identical grid — even while another executor is hitting the
same directory.
"""

import threading

import numpy as np
import pytest

from repro.campaign.cache import CampaignCache
from repro.campaign.engine import _cache_key, run_campaign
from repro.campaign.spec import CampaignSpec, FadingSpec
from repro.core.protocols import Protocol

CHUNK = 16


@pytest.fixture
def spec(paper_gains):
    return CampaignSpec(
        protocols=(Protocol.MABC, Protocol.TDBC, Protocol.HBC),
        powers_db=(0.0, 10.0),
        gains=(paper_gains,),
        fading=FadingSpec(n_draws=20, seed=11),
    )


@pytest.fixture
def reference(spec):
    return run_campaign(spec, executor="serial")


def _damage_one_chunk(cache, spec):
    """Checkpoint the campaign, then truncate one chunk and drop the
    full entry, leaving a cache that looks resumable but is partly bad."""
    run_campaign(spec, executor="serial", cache=cache, chunk_size=CHUNK)
    key = _cache_key(spec)
    cache.path_for(key).unlink()
    chunk_path = cache.chunk_path_for(key, CHUNK, 2 * CHUNK)
    chunk_path.write_bytes(chunk_path.read_bytes()[: chunk_path.stat().st_size // 2])
    return chunk_path


class TestConcurrentRecovery:
    def test_two_executors_recover_bitwise_identically(
        self, spec, reference, tmp_path
    ):
        cache = CampaignCache(tmp_path)
        _damage_one_chunk(cache, spec)

        results = {}
        errors = []

        def rerun(tag, executor):
            try:
                result = run_campaign(
                    spec,
                    executor=executor,
                    cache=CampaignCache(tmp_path),
                    chunk_size=CHUNK,
                )
                results[tag] = result
            except Exception as error:  # pragma: no cover - failure detail
                errors.append((tag, error))

        threads = [
            threading.Thread(target=rerun, args=("serial", "serial")),
            threading.Thread(target=rerun, args=("vectorized", "vectorized")),
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120)
            assert not thread.is_alive()

        assert not errors, errors
        for tag in ("serial", "vectorized"):
            assert results[tag].values.tobytes() == reference.values.tobytes(), tag

    def test_cache_is_healthy_after_recovery(self, spec, reference, tmp_path):
        cache = CampaignCache(tmp_path)
        _damage_one_chunk(cache, spec)
        recovered = run_campaign(
            spec, executor="serial", cache=cache, chunk_size=CHUNK
        )
        assert recovered.values.tobytes() == reference.values.tobytes()
        # The recomputed run healed the store: a fresh run is a pure hit.
        healed = run_campaign(spec, executor="serial", cache=cache)
        assert healed.from_cache
        assert healed.values.tobytes() == reference.values.tobytes()

    def test_recovery_recomputes_only_the_damaged_cells(
        self, spec, reference, tmp_path
    ):
        cache = CampaignCache(tmp_path)
        _damage_one_chunk(cache, spec)
        result = run_campaign(
            spec, executor="serial", cache=cache, chunk_size=CHUNK
        )
        assert result.cells_computed == CHUNK
        assert result.cells_from_cache == spec.n_units - CHUNK
        assert result.values.tobytes() == reference.values.tobytes()
