"""Per-node power support through the campaign stack.

The tentpole guarantees of the power-allocation work:

* equal per-node powers evaluate **bitwise identically** to the classic
  scalar path (same kernel cells, same cache entries),
* asymmetric powers flow through the kernel, the ``node_powers_db``
  grid axis, every executor and shard+gather without changing
  ``KERNEL_VERSION`` or any allocation-free spec hash.
"""

import numpy as np
import pytest

from repro.campaign.cache import CampaignCache
from repro.campaign.engine import evaluate_ensemble, gather_campaign, run_campaign
from repro.campaign.kernel import batched_sum_rates, mi_value_table
from repro.campaign.spec import CampaignSpec, FadingSpec, GridAxis
from repro.channels.gains import LinkGains
from repro.channels.power import NodePowers
from repro.core.protocols import Protocol
from repro.exceptions import InvalidParameterError

PAPER_GAINS = LinkGains.from_db(-7.0, 0.0, 5.0)
ALL_PROTOCOLS = tuple(Protocol)


def _random_gain_columns(n, seed=5):
    rng = np.random.default_rng(seed)
    return tuple(rng.uniform(0.05, 4.0, size=n) for _ in range(3))


class TestKernelScalarEquivalence:
    @pytest.mark.parametrize("protocol", ALL_PROTOCOLS)
    def test_uniform_node_powers_match_scalar_bitwise(self, protocol):
        gab, gar, gbr = _random_gain_columns(40)
        scalar = batched_sum_rates(protocol, gab, gar, gbr, 10.0)
        uniform = batched_sum_rates(protocol, gab, gar, gbr, NodePowers.uniform(10.0))
        assert np.array_equal(scalar, uniform)

    @pytest.mark.parametrize("protocol", ALL_PROTOCOLS)
    def test_uniform_mapping_matches_scalar_bitwise(self, protocol):
        gab, gar, gbr = _random_gain_columns(17)
        scalar = batched_sum_rates(protocol, gab, gar, gbr, 10.0)
        mapped = batched_sum_rates(
            protocol, gab, gar, gbr, {"a": 10.0, "b": 10.0, "r": 10.0}
        )
        assert np.array_equal(scalar, mapped)

    @pytest.mark.parametrize("protocol", ALL_PROTOCOLS)
    def test_uniform_columns_match_scalar_bitwise(self, protocol):
        gab, gar, gbr = _random_gain_columns(23)
        scalar = batched_sum_rates(protocol, gab, gar, gbr, 10.0)
        columns = batched_sum_rates(
            protocol, gab, gar, gbr, np.full((gab.size, 3), 10.0)
        )
        assert np.array_equal(scalar, columns)

    def test_mixed_batch_uniform_rows_match_classic_rows(self):
        """An asymmetric batch's equal-power rows equal the scalar cells."""
        gab, gar, gbr = _random_gain_columns(6)
        powers = np.tile([4.0, 4.0, 4.0], (6, 1))
        powers[1] = [8.0, 2.0, 4.0]
        powers[4] = [1.0, 1.0, 9.0]
        mixed = batched_sum_rates(Protocol.HBC, gab, gar, gbr, powers)
        classic = batched_sum_rates(Protocol.HBC, gab, gar, gbr, 4.0)
        for i in (0, 2, 3, 5):
            assert mixed[i] == classic[i]


class TestKernelAsymmetric:
    @pytest.mark.parametrize("protocol", ALL_PROTOCOLS)
    def test_batch_matches_per_unit(self, protocol):
        gab, gar, gbr = _random_gain_columns(12)
        rng = np.random.default_rng(11)
        powers = rng.uniform(0.5, 12.0, size=(12, 3))
        batch = batched_sum_rates(protocol, gab, gar, gbr, powers)
        singles = [
            batched_sum_rates(
                protocol,
                gab[i : i + 1],
                gar[i : i + 1],
                gbr[i : i + 1],
                powers[i : i + 1],
            )[0]
            for i in range(12)
        ]
        assert np.array_equal(batch, np.array(singles))

    def test_more_relay_power_helps_relay_protocols(self):
        gab = np.array([0.2])
        gar = np.array([1.0])
        gbr = np.array([3.0])
        starved = batched_sum_rates(
            Protocol.MABC, gab, gar, gbr, np.array([[10.0, 10.0, 0.5]])
        )
        boosted = batched_sum_rates(
            Protocol.MABC, gab, gar, gbr, np.array([[10.0, 10.0, 20.0]])
        )
        assert boosted[0] > starved[0]

    def test_bad_power_shape_rejected(self):
        gab, gar, gbr = _random_gain_columns(4)
        with pytest.raises(InvalidParameterError):
            batched_sum_rates(Protocol.MABC, gab, gar, gbr, np.ones((4, 2)))

    def test_negative_node_power_rejected(self):
        gab, gar, gbr = _random_gain_columns(4)
        powers = np.ones((4, 3))
        powers[2, 1] = -1.0
        with pytest.raises(InvalidParameterError):
            batched_sum_rates(Protocol.MABC, gab, gar, gbr, powers)

    def test_mi_value_table_accepts_node_powers(self):
        gab, gar, gbr = _random_gain_columns(5)
        table = mi_value_table(gab, gar, gbr, NodePowers(pa=2.0, pb=6.0, pr=1.0))
        scalar = mi_value_table(gab, gar, gbr, 2.0)
        assert table.shape == scalar.shape
        uniform = mi_value_table(gab, gar, gbr, NodePowers.uniform(2.0))
        assert np.array_equal(uniform, scalar)


def allocation_spec():
    """A (protocols x powers x allocation x gains x draws) grid."""
    return CampaignSpec(
        protocols=(Protocol.MABC, Protocol.TDBC, Protocol.HBC),
        powers_db=(6.0, 12.0),
        gains=(PAPER_GAINS, LinkGains.from_db(-4.0, 2.0, 2.0)),
        fading=FadingSpec(n_draws=6, seed=21),
        extra_axes=(
            GridAxis(
                name="power_allocation",
                values=(
                    {"node_powers_db": (0.0, 0.0, 0.0)},
                    {"node_powers_db": (-3.0, -3.0, 3.0)},
                    {"node_powers_db": (2.0, -4.0, 0.0)},
                ),
            ),
        ),
    )


class TestSpecAxis:
    def test_allocation_axis_serializes_only_when_set(self):
        classic = CampaignSpec(
            protocols=(Protocol.MABC,),
            powers_db=(10.0,),
            gains=(PAPER_GAINS,),
        )
        assert "axes" not in classic.to_dict()
        assert "axes" in allocation_spec().to_dict()

    def test_block_params_accumulate_node_offsets(self):
        spec = allocation_spec()
        # block axes: (protocol, power, allocation); pick the
        # (-3, -3, +3) allocation at base power 6 dB.
        block = np.ravel_multi_index((0, 0, 1), spec.block_shape)
        _, power, _ = spec.block_params(block)
        assert isinstance(power, NodePowers)
        assert power.to_db() == pytest.approx((3.0, 3.0, 9.0))

    def test_zero_offset_cell_is_classic_scalar_power(self):
        spec = allocation_spec()
        block = np.ravel_multi_index((0, 0, 0), spec.block_shape)
        _, power, _ = spec.block_params(block)
        assert isinstance(power, NodePowers)
        assert power.is_uniform()

    def test_malformed_node_offsets_rejected(self):
        with pytest.raises(InvalidParameterError):
            CampaignSpec(
                protocols=(Protocol.MABC,),
                powers_db=(10.0,),
                gains=(PAPER_GAINS,),
                extra_axes=(
                    GridAxis(
                        name="power_allocation",
                        values=({"node_powers_db": (0.0, 1.0)},),
                    ),
                ),
            )

    def test_operational_link_rejects_allocation_axes(self):
        from repro.campaign.spec import LinkSimSpec

        with pytest.raises(InvalidParameterError, match="analytic"):
            CampaignSpec(
                protocols=(Protocol.MABC,),
                powers_db=(10.0,),
                gains=(PAPER_GAINS,),
                link=LinkSimSpec(n_rounds=4, payload_bits=32, seed=1),
                extra_axes=(
                    GridAxis(
                        name="power_allocation",
                        values=({"node_powers_db": (0.0, 0.0, 0.0)},),
                    ),
                ),
            )


class TestExecutorsAndSharding:
    @pytest.fixture(scope="class")
    def spec(self):
        return allocation_spec()

    @pytest.fixture(scope="class")
    def serial_values(self, spec):
        return run_campaign(spec, executor="serial", cache=False).values

    @pytest.mark.parametrize("executor", ["process", "vectorized", "async"])
    def test_executors_agree_bitwise_on_allocation_grid(
        self, spec, serial_values, executor
    ):
        values = run_campaign(spec, executor=executor, cache=False).values
        assert np.array_equal(values, serial_values)

    def test_shard_gather_matches_unsharded_bitwise(
        self, spec, serial_values, tmp_path
    ):
        cache = CampaignCache(tmp_path)
        for index in range(3):
            run_campaign(
                spec,
                executor="vectorized",
                cache=cache,
                shard=spec.shard(index, 3),
            )
        gathered = gather_campaign(spec, cache)
        assert np.array_equal(gathered.values, serial_values)

    def test_uniform_allocation_axis_reproduces_scalar_grid(self):
        """A uniform dB offset equals the same shift of the power axis."""
        base = CampaignSpec(
            protocols=(Protocol.MABC, Protocol.HBC),
            powers_db=(8.0,),
            gains=(PAPER_GAINS,),
            fading=FadingSpec(n_draws=5, seed=13),
        )
        shifted = CampaignSpec(
            protocols=base.protocols,
            powers_db=(6.0,),
            gains=base.gains,
            fading=base.fading,
            extra_axes=(
                GridAxis(
                    name="power_allocation",
                    values=({"node_powers_db": (2.0, 2.0, 2.0)},),
                ),
            ),
        )
        assert shifted.spec_hash() != base.spec_hash()
        base_values = run_campaign(base, executor="vectorized", cache=False)
        shifted_values = run_campaign(shifted, executor="vectorized", cache=False)
        assert np.array_equal(
            shifted_values.values.reshape(-1), base_values.values.reshape(-1)
        )


class TestEnsembleWidening:
    def test_node_powers_match_scalar_bitwise(self, rng):
        draws = rng.uniform(0.05, 3.0, size=(20, 3))
        scalar = evaluate_ensemble(Protocol.TDBC, draws, 10.0)
        uniform = evaluate_ensemble(Protocol.TDBC, draws, NodePowers.uniform(10.0))
        mapped = evaluate_ensemble(
            Protocol.TDBC, draws, {"a": 10.0, "b": 10.0, "r": 10.0}
        )
        assert np.array_equal(scalar, uniform)
        assert np.array_equal(scalar, mapped)

    def test_per_draw_power_columns(self, rng):
        draws = rng.uniform(0.05, 3.0, size=(8, 3))
        powers = rng.uniform(0.5, 10.0, size=(8, 3))
        values = evaluate_ensemble(Protocol.HBC, draws, powers)
        singles = [
            evaluate_ensemble(Protocol.HBC, draws[i : i + 1], powers[i : i + 1])[0]
            for i in range(8)
        ]
        assert np.array_equal(values, np.array(singles))

    def test_bad_power_matrix_shape_rejected(self, rng):
        draws = rng.uniform(0.05, 3.0, size=(8, 3))
        with pytest.raises(InvalidParameterError):
            evaluate_ensemble(Protocol.HBC, draws, np.ones((8, 2)))
