"""Unit tests for the command-line interface."""

import numpy as np
import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_subcommands_registered(self):
        parser = build_parser()
        actions = {
            action.dest: action for action in parser._actions
        }
        subparsers = actions["command"]
        assert set(subparsers.choices) == {
            "fig3", "fig4", "region", "sumrate", "simulate", "diagrams",
            "sweep", "adaptive", "fairness", "fading", "campaign", "gather",
            "scenarios", "serve", "client",
        }

    def test_region_requires_protocol(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["region"])

    def test_bad_protocol_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["region", "--protocol", "bogus"])


class TestCommands:
    def test_diagrams(self, capsys):
        assert main(["diagrams"]) == 0
        out = capsys.readouterr().out
        assert "MABC" in out and "HBC" in out

    def test_sumrate(self, capsys):
        code = main(["sumrate", "--power-db", "10"])
        out = capsys.readouterr().out
        assert code == 0
        assert "best protocol" in out
        assert "MABC" in out

    def test_region(self, capsys):
        code = main(["region", "--protocol", "mabc", "--points", "5"])
        out = capsys.readouterr().out
        assert code == 0
        assert "max sum rate" in out

    def test_region_outer(self, capsys):
        code = main(["region", "--protocol", "tdbc", "--outer", "--points", "5"])
        out = capsys.readouterr().out
        assert code == 0
        assert "outer bound" in out

    def test_simulate(self, capsys):
        code = main([
            "simulate", "--protocol", "mabc", "--rounds", "3",
            "--payload-bits", "32", "--power-db", "20",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "goodput" in out

    def test_simulate_dt(self, capsys):
        code = main([
            "simulate", "--protocol", "dt", "--rounds", "2",
            "--payload-bits", "32", "--power-db", "25", "--gab-db", "0",
        ])
        assert code == 0

    def test_simulate_adaptive_budget(self, capsys):
        code = main([
            "simulate", "--protocol", "dt", "--rounds", "2",
            "--payload-bits", "32", "--power-db", "-10",
            "--target-rel-error", "0.5", "--max-rounds", "8",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "rounds" in out

    def test_simulate_adaptive_needs_both_flags(self, capsys):
        code = main([
            "simulate", "--protocol", "dt", "--rounds", "2",
            "--payload-bits", "32", "--target-rel-error", "0.5",
        ])
        out = capsys.readouterr().out
        assert code == 2
        assert "max_rounds" in out

    def test_simulate_importance_sampling(self, capsys):
        code = main([
            "simulate", "--protocol", "dt", "--rounds", "64",
            "--payload-bits", "16", "--power-db", "-8", "--gab-db", "0",
            "--importance-sampling", "1.05", "--is-noise-shift", "0.1",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "weighted FER" in out
        assert "ESS" in out

    def test_simulate_importance_sampling_warns_unresolved(self, capsys):
        code = main([
            "simulate", "--protocol", "dt", "--rounds", "4",
            "--payload-bits", "16", "--power-db", "25",
            "--target-rel-error", "0.1", "--max-rounds", "8",
            "--importance-sampling", "1.01",
        ])
        captured = capsys.readouterr()
        assert code == 0
        assert "unresolved" in captured.err

    def test_simulate_is_flags_need_importance_sampling(self, capsys):
        code = main([
            "simulate", "--protocol", "dt", "--rounds", "2",
            "--payload-bits", "16", "--is-noise-shift", "0.2",
        ])
        out = capsys.readouterr().out
        assert code == 2
        assert "--importance-sampling" in out

    def test_simulate_is_incompatible_with_reference(self, capsys):
        code = main([
            "simulate", "--protocol", "dt", "--rounds", "2",
            "--payload-bits", "16", "--importance-sampling", "1.1",
            "--reference",
        ])
        out = capsys.readouterr().out
        assert code == 2
        assert "--reference" in out

    def test_simulate_is_rejects_bad_scale(self, capsys):
        code = main([
            "simulate", "--protocol", "dt", "--rounds", "2",
            "--payload-bits", "16", "--importance-sampling", "-2.0",
        ])
        out = capsys.readouterr().out
        assert code == 2
        assert "noise_scale" in out

    def test_sweep(self, capsys):
        code = main(["sweep", "--min-db", "0", "--max-db", "5",
                     "--step-db", "5"])
        out = capsys.readouterr().out
        assert code == 0
        assert "power sweep" in out
        assert "NAIVE4" in out

    def test_adaptive(self, capsys):
        code = main(["adaptive", "--draws", "5", "--power-db", "10"])
        out = capsys.readouterr().out
        assert code == 0
        assert "adaptivity gain" in out
        assert "ADAPTIVE" in out

    def test_fairness(self, capsys):
        code = main(["fairness", "--power-db", "10"])
        out = capsys.readouterr().out
        assert code == 0
        assert "fairness analysis" in out
        assert "cost of symmetry" in out

    def test_fading(self, capsys):
        code = main(["fading"])
        out = capsys.readouterr().out
        assert code == 0
        assert "fading campaign" in out
        assert "hbc_dominates_ergodically" in out


class TestCampaignCommand:
    def test_campaign_runs_and_reports(self, capsys, tmp_path):
        code = main([
            "campaign", "--powers-db", "0,10", "--draws", "8",
            "--cache-dir", str(tmp_path), "--quiet",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "ergodic mean" in out
        assert "vectorized executor" in out

    def test_campaign_repeat_hits_cache(self, capsys, tmp_path):
        args = ["campaign", "--powers-db", "10", "--draws", "6",
                "--cache-dir", str(tmp_path), "--quiet"]
        assert main(args) == 0
        capsys.readouterr()
        assert main(args) == 0
        out = capsys.readouterr().out
        assert "via cache" in out

    def test_campaign_placements_and_executor(self, capsys, tmp_path):
        code = main([
            "campaign", "--placements", "3", "--draws", "0",
            "--protocols", "mabc,hbc", "--executor", "serial",
            "--no-cache", "--quiet",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "3 relay placements" in out
        assert "serial executor" in out

    def test_campaign_progress_meter(self, capsys, tmp_path):
        code = main(["campaign", "--powers-db", "10", "--draws", "5",
                     "--no-cache"])
        captured = capsys.readouterr()
        assert code == 0
        assert "[campaign]" in captured.err
        assert "100%" in captured.err

    def test_campaign_bad_protocol_rejected(self, capsys):
        code = main(["campaign", "--protocols", "bogus", "--quiet",
                     "--no-cache"])
        out = capsys.readouterr().out
        assert code == 2
        assert "unknown protocol" in out

    def test_campaign_bad_powers_rejected(self, capsys):
        code = main(["campaign", "--powers-db", "ten", "--quiet",
                     "--no-cache"])
        out = capsys.readouterr().out
        assert code == 2
        assert "error" in out

    def test_campaign_bad_executor_params_rejected(self, capsys):
        code = main(["campaign", "--executor", "process", "--processes",
                     "-2", "--quiet", "--no-cache"])
        out = capsys.readouterr().out
        assert code == 2
        assert "error" in out

    def test_campaign_negative_draws_rejected(self, capsys):
        code = main(["campaign", "--draws", "-5", "--quiet", "--no-cache"])
        out = capsys.readouterr().out
        assert code == 2
        assert "non-negative" in out

    def test_campaign_duplicate_protocols_rejected(self, capsys):
        code = main(["campaign", "--protocols", "mabc,mabc", "--quiet",
                     "--no-cache"])
        out = capsys.readouterr().out
        assert code == 2
        assert "duplicate" in out

    def test_campaign_prints_full_spec_hash(self, capsys):
        code = main(["campaign", "--powers-db", "10", "--draws", "4",
                     "--no-cache", "--quiet"])
        out = capsys.readouterr().out
        assert code == 0
        hash_lines = [l for l in out.splitlines() if l.startswith("spec ")]
        assert len(hash_lines) == 1
        digest = hash_lines[0].split()[1]
        assert len(digest) == 64
        assert set(digest) <= set("0123456789abcdef")


class TestShardGatherCommands:
    GRID = ["--powers-db", "0,10", "--draws", "6", "--protocols",
            "mabc,hbc", "--seed", "2"]

    def test_shard_gather_matches_unsharded_bitwise(self, capsys, tmp_path):
        cached = [*self.GRID, "--cache-dir", str(tmp_path / "cache")]
        for i in (1, 2, 3):
            assert main(["campaign", *cached, "--shard", f"{i}/3",
                         "--chunk-size", "5", "--quiet"]) == 0
        capsys.readouterr()
        gathered_path = str(tmp_path / "gathered.npy")
        assert main(["gather", *cached, "--dump", gathered_path]) == 0
        out = capsys.readouterr().out
        assert "gathered 24/24 cells" in out
        assert "spec " in out
        reference_path = str(tmp_path / "reference.npy")
        assert main(["campaign", *self.GRID, "--no-cache", "--quiet",
                     "--dump", reference_path]) == 0
        gathered = np.load(gathered_path)
        reference = np.load(reference_path)
        assert gathered.shape == reference.shape
        assert gathered.tobytes() == reference.tobytes()

    def test_rerun_shard_reports_cache_resumption(self, capsys, tmp_path):
        cached = [*self.GRID, "--cache-dir", str(tmp_path)]
        shard = ["campaign", *cached, "--shard", "2/3", "--chunk-size", "5",
                 "--quiet"]
        assert main(shard) == 0
        capsys.readouterr()
        assert main(shard) == 0
        out = capsys.readouterr().out
        assert "shard 2/3: 8/8 cells via cache" in out
        assert "8 from cache, 0 computed" in out

    def test_gather_incomplete_campaign_fails(self, capsys, tmp_path):
        cached = [*self.GRID, "--cache-dir", str(tmp_path)]
        assert main(["campaign", *cached, "--shard", "1/3",
                     "--chunk-size", "5", "--quiet"]) == 0
        capsys.readouterr()
        code = main(["gather", *cached])
        out = capsys.readouterr().out
        assert code == 1
        assert "missing" in out

    def test_gather_missing_cache_directory_fails(self, capsys, tmp_path):
        code = main(["gather", *self.GRID,
                     "--cache-dir", str(tmp_path / "nowhere")])
        out = capsys.readouterr().out
        assert code == 1
        assert "does not exist" in out

    def test_gather_empty_cache_directory_fails(self, capsys, tmp_path):
        code = main(["gather", *self.GRID, "--cache-dir", str(tmp_path)])
        out = capsys.readouterr().out
        assert code == 1
        assert "no campaign artifacts" in out

    def test_bad_shard_values_rejected(self, capsys):
        for bad in ("4/3", "0/3", "x/3", "1/0", "12"):
            code = main(["campaign", *self.GRID, "--shard", bad, "--quiet"])
            out = capsys.readouterr().out
            assert code == 2, bad
            assert "error" in out

    def test_shard_with_no_cache_rejected(self, capsys):
        code = main(["campaign", *self.GRID, "--shard", "1/2", "--no-cache",
                     "--quiet"])
        out = capsys.readouterr().out
        assert code == 2
        assert "--no-cache" in out

    def test_bad_chunk_size_rejected(self, capsys):
        code = main(["campaign", *self.GRID, "--chunk-size", "0",
                     "--no-cache", "--quiet"])
        out = capsys.readouterr().out
        assert code == 2
        assert "chunk-size" in out


class TestScenariosCommand:
    def test_list_names_every_registered_scenario(self, capsys):
        from repro.scenarios import list_scenarios

        assert main(["scenarios", "list"]) == 0
        out = capsys.readouterr().out
        for name in list_scenarios():
            assert name in out
        assert "objective" in out

    def test_list_json_is_machine_readable(self, capsys):
        import json

        from repro.scenarios import list_scenarios

        assert main(["scenarios", "list", "--json"]) == 0
        entries = json.loads(capsys.readouterr().out)
        assert [entry["name"] for entry in entries] == sorted(list_scenarios())
        for entry in entries:
            assert entry["axes"]
            assert entry["objective"]
            assert entry["grounding"]
            assert entry["cells"] > 0

    def test_catalog_prints_markdown(self, capsys):
        assert main(["scenarios", "catalog"]) == 0
        out = capsys.readouterr().out
        assert "# Scenario catalog" in out
        assert "| scenario |" in out

    def test_catalog_write_then_check_round_trips(self, capsys, tmp_path):
        page = str(tmp_path / "scenarios.md")
        assert main(["scenarios", "catalog", "--write", page]) == 0
        capsys.readouterr()
        assert main(["scenarios", "catalog", "--check", page]) == 0
        out = capsys.readouterr().out
        assert "matches" in out

    def test_catalog_check_flags_stale_page(self, capsys, tmp_path):
        page = tmp_path / "scenarios.md"
        page.write_text("# Scenario catalog\n\nout of date\n")
        code = main(["scenarios", "catalog", "--check", str(page)])
        out = capsys.readouterr().out
        assert code == 1
        assert "stale" in out

    def test_catalog_check_missing_page_fails(self, capsys, tmp_path):
        code = main(["scenarios", "catalog", "--check",
                     str(tmp_path / "absent.md")])
        out = capsys.readouterr().out
        assert code == 1

    def test_committed_catalog_page_is_fresh(self, capsys):
        """The checked-in docs/scenarios.md must track the registry."""
        from pathlib import Path

        page = Path(__file__).resolve().parent.parent / "docs" / "scenarios.md"
        assert main(["scenarios", "catalog", "--check", str(page)]) == 0

    def test_run_two_pair_scenario(self, capsys, tmp_path):
        code = main(["scenarios", "run", "two-pair-round-robin",
                     "--cache-dir", str(tmp_path), "--quiet"])
        out = capsys.readouterr().out
        assert code == 0
        assert "round_robin_sum_rate over 2 pairs" in out
        assert "spec " in out

    def test_run_repeat_hits_cache(self, capsys, tmp_path):
        args = ["scenarios", "run", "fig4-operating-points",
                "--cache-dir", str(tmp_path), "--quiet"]
        assert main(args) == 0
        capsys.readouterr()
        assert main(args) == 0
        out = capsys.readouterr().out
        assert "via cache" in out

    def test_run_unknown_scenario_rejected(self, capsys):
        code = main(["scenarios", "run", "bogus", "--no-cache", "--quiet"])
        out = capsys.readouterr().out
        assert code == 2
        assert "unknown scenario" in out

    def test_run_deepfade_warns_about_unresolved_cells(self, capsys):
        code = main(["scenarios", "run", "operational-deepfade-fer",
                     "--no-cache", "--quiet"])
        captured = capsys.readouterr()
        assert code == 0
        assert "spec " in captured.out
        assert "3 adaptive cells unresolved" in captured.err

    def test_run_dump_writes_grid(self, capsys, tmp_path):
        dump = str(tmp_path / "values.npy")
        code = main(["scenarios", "run", "two-pair-round-robin", "--no-cache",
                     "--quiet", "--dump", dump])
        assert code == 0
        values = np.load(dump)
        assert values.shape == (4, 1, 2, 1, 25)

    def test_scenarios_requires_action(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["scenarios"])


class TestScenarioParams:
    """`scenarios run --param key=value` factory passthrough."""

    def test_params_reach_the_factory(self, capsys):
        code = main(["scenarios", "run", "finite-snr-dmt", "--no-cache",
                     "--quiet", "--param", "n_draws=6", "--param", "seed=3"])
        out = capsys.readouterr().out
        assert code == 0
        assert "spec " in out

    def test_dashed_keys_map_to_underscores(self, capsys):
        code = main(["scenarios", "run", "finite-snr-dmt", "--no-cache",
                     "--quiet", "--param", "n-draws=6"])
        assert code == 0

    def test_tuple_values_parse(self, capsys):
        code = main(["scenarios", "run", "finite-snr-dmt", "--no-cache",
                     "--quiet", "--param", "snr_points_db=5,10",
                     "--param", "n_draws=6"])
        assert code == 0

    def test_unknown_param_rejected(self, capsys):
        code = main(["scenarios", "run", "finite-snr-dmt", "--no-cache",
                     "--quiet", "--param", "bogus=1"])
        out = capsys.readouterr().out
        assert code == 2
        assert "does not accept" in out

    def test_malformed_pair_rejected(self, capsys):
        code = main(["scenarios", "run", "finite-snr-dmt", "--no-cache",
                     "--quiet", "--param", "n_draws"])
        out = capsys.readouterr().out
        assert code == 2
        assert "key=value" in out

    def test_duplicate_key_rejected(self, capsys):
        code = main(["scenarios", "run", "finite-snr-dmt", "--no-cache",
                     "--quiet", "--param", "n_draws=6", "--param", "n_draws=8"])
        out = capsys.readouterr().out
        assert code == 2
        assert "duplicate --param key 'n_draws'" in out

    def test_duplicate_after_dash_normalization_rejected(self, capsys):
        code = main(["scenarios", "run", "finite-snr-dmt", "--no-cache",
                     "--quiet", "--param", "n-draws=6", "--param", "n_draws=8"])
        out = capsys.readouterr().out
        assert code == 2
        assert "duplicate --param key 'n_draws'" in out


class TestScenarioShardGather:
    """`scenarios run --shard` + `scenarios gather` on an operational grid."""

    NAME = "operational-fading-fer"

    def test_sharded_scenario_gathers_bitwise_identically(
        self, capsys, tmp_path
    ):
        cache = str(tmp_path / "cache")
        for shard in ("1/2", "2/2"):
            code = main(["scenarios", "run", self.NAME, "--shard", shard,
                         "--cache-dir", cache, "--chunk-size", "4",
                         "--quiet"])
            out = capsys.readouterr().out
            assert code == 0
            assert f"shard {shard}" in out
        gathered = str(tmp_path / "gathered.npy")
        code = main(["scenarios", "gather", self.NAME, "--cache-dir", cache,
                     "--dump", gathered])
        out = capsys.readouterr().out
        assert code == 0
        assert "gathered" in out
        reference = str(tmp_path / "reference.npy")
        assert main(["scenarios", "run", self.NAME, "--no-cache", "--quiet",
                     "--dump", reference]) == 0
        capsys.readouterr()
        assert np.load(gathered).tobytes() == np.load(reference).tobytes()

    def test_shard_requires_cache(self, capsys):
        code = main(["scenarios", "run", self.NAME, "--shard", "1/2",
                     "--no-cache", "--quiet"])
        out = capsys.readouterr().out
        assert code == 2
        assert "--no-cache" in out

    def test_malformed_shard_rejected(self, capsys):
        code = main(["scenarios", "run", self.NAME, "--shard", "3",
                     "--quiet"])
        out = capsys.readouterr().out
        assert code == 2
        assert "shard" in out

    def test_gather_without_artifacts_fails(self, capsys, tmp_path):
        code = main(["scenarios", "gather", self.NAME,
                     "--cache-dir", str(tmp_path)])
        out = capsys.readouterr().out
        assert code == 1
        assert "no campaign artifacts" in out

    def test_gather_missing_directory_fails(self, capsys, tmp_path):
        code = main(["scenarios", "gather", self.NAME,
                     "--cache-dir", str(tmp_path / "never-created")])
        out = capsys.readouterr().out
        assert code == 1
        assert "does not exist" in out
        assert "run the shards first" in out

    def test_gather_incomplete_shard_reports_missing_ranges(
        self, capsys, tmp_path
    ):
        cache = str(tmp_path / "cache")
        assert main(["scenarios", "run", self.NAME, "--shard", "1/2",
                     "--cache-dir", cache, "--chunk-size", "4",
                     "--quiet"]) == 0
        capsys.readouterr()
        code = main(["scenarios", "gather", self.NAME, "--cache-dir", cache])
        out = capsys.readouterr().out
        assert code == 1
        assert "missing" in out

    def test_fer_units_labelled(self, capsys, tmp_path):
        code = main(["scenarios", "run", self.NAME,
                     "--cache-dir", str(tmp_path), "--quiet"])
        out = capsys.readouterr().out
        assert code == 0
        assert "frame error rate" in out


class TestSweepValidation:
    def test_zero_step_rejected(self, capsys):
        code = main(["sweep", "--min-db", "0", "--max-db", "5",
                     "--step-db", "0"])
        out = capsys.readouterr().out
        assert code == 2
        assert "must be positive" in out

    def test_inverted_range_rejected(self, capsys):
        code = main(["sweep", "--min-db", "5", "--max-db", "0",
                     "--step-db", "1"])
        assert code == 2


class TestClientCommand:
    def test_missing_daemon_exits_2_with_clear_message(self, capsys, tmp_path):
        socket_path = str(tmp_path / "nobody-home.sock")
        code = main(["client", "--socket", socket_path, "ping"])
        captured = capsys.readouterr()
        assert code == 2
        assert f"daemon not running at {socket_path}" in captured.err
        assert "Traceback" not in captured.err

    def test_run_against_missing_daemon_exits_2(self, capsys, tmp_path):
        socket_path = str(tmp_path / "stale.sock")
        code = main(["client", "--socket", socket_path, "run",
                     "fig4-operating-points", "--quiet"])
        captured = capsys.readouterr()
        assert code == 2
        assert "daemon not running" in captured.err
