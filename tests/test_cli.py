"""Unit tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_subcommands_registered(self):
        parser = build_parser()
        actions = {
            action.dest: action for action in parser._actions
        }
        subparsers = actions["command"]
        assert set(subparsers.choices) == {
            "fig3", "fig4", "region", "sumrate", "simulate", "diagrams",
            "sweep", "adaptive", "fairness", "fading", "campaign",
        }

    def test_region_requires_protocol(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["region"])

    def test_bad_protocol_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["region", "--protocol", "bogus"])


class TestCommands:
    def test_diagrams(self, capsys):
        assert main(["diagrams"]) == 0
        out = capsys.readouterr().out
        assert "MABC" in out and "HBC" in out

    def test_sumrate(self, capsys):
        code = main(["sumrate", "--power-db", "10"])
        out = capsys.readouterr().out
        assert code == 0
        assert "best protocol" in out
        assert "MABC" in out

    def test_region(self, capsys):
        code = main(["region", "--protocol", "mabc", "--points", "5"])
        out = capsys.readouterr().out
        assert code == 0
        assert "max sum rate" in out

    def test_region_outer(self, capsys):
        code = main(["region", "--protocol", "tdbc", "--outer", "--points", "5"])
        out = capsys.readouterr().out
        assert code == 0
        assert "outer bound" in out

    def test_simulate(self, capsys):
        code = main([
            "simulate", "--protocol", "mabc", "--rounds", "3",
            "--payload-bits", "32", "--power-db", "20",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "goodput" in out

    def test_simulate_dt(self, capsys):
        code = main([
            "simulate", "--protocol", "dt", "--rounds", "2",
            "--payload-bits", "32", "--power-db", "25", "--gab-db", "0",
        ])
        assert code == 0

    def test_sweep(self, capsys):
        code = main(["sweep", "--min-db", "0", "--max-db", "5",
                     "--step-db", "5"])
        out = capsys.readouterr().out
        assert code == 0
        assert "power sweep" in out
        assert "NAIVE4" in out

    def test_adaptive(self, capsys):
        code = main(["adaptive", "--draws", "5", "--power-db", "10"])
        out = capsys.readouterr().out
        assert code == 0
        assert "adaptivity gain" in out
        assert "ADAPTIVE" in out

    def test_fairness(self, capsys):
        code = main(["fairness", "--power-db", "10"])
        out = capsys.readouterr().out
        assert code == 0
        assert "fairness analysis" in out
        assert "cost of symmetry" in out

    def test_fading(self, capsys):
        code = main(["fading"])
        out = capsys.readouterr().out
        assert code == 0
        assert "fading campaign" in out
        assert "hbc_dominates_ergodically" in out


class TestCampaignCommand:
    def test_campaign_runs_and_reports(self, capsys, tmp_path):
        code = main([
            "campaign", "--powers-db", "0,10", "--draws", "8",
            "--cache-dir", str(tmp_path), "--quiet",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "ergodic mean" in out
        assert "vectorized executor" in out

    def test_campaign_repeat_hits_cache(self, capsys, tmp_path):
        args = ["campaign", "--powers-db", "10", "--draws", "6",
                "--cache-dir", str(tmp_path), "--quiet"]
        assert main(args) == 0
        capsys.readouterr()
        assert main(args) == 0
        out = capsys.readouterr().out
        assert "via cache" in out

    def test_campaign_placements_and_executor(self, capsys, tmp_path):
        code = main([
            "campaign", "--placements", "3", "--draws", "0",
            "--protocols", "mabc,hbc", "--executor", "serial",
            "--no-cache", "--quiet",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "3 relay placements" in out
        assert "serial executor" in out

    def test_campaign_progress_meter(self, capsys, tmp_path):
        code = main(["campaign", "--powers-db", "10", "--draws", "5",
                     "--no-cache"])
        captured = capsys.readouterr()
        assert code == 0
        assert "[campaign]" in captured.err
        assert "100%" in captured.err

    def test_campaign_bad_protocol_rejected(self, capsys):
        code = main(["campaign", "--protocols", "bogus", "--quiet",
                     "--no-cache"])
        out = capsys.readouterr().out
        assert code == 2
        assert "unknown protocol" in out

    def test_campaign_bad_powers_rejected(self, capsys):
        code = main(["campaign", "--powers-db", "ten", "--quiet",
                     "--no-cache"])
        out = capsys.readouterr().out
        assert code == 2
        assert "error" in out

    def test_campaign_bad_executor_params_rejected(self, capsys):
        code = main(["campaign", "--executor", "process", "--processes",
                     "-2", "--quiet", "--no-cache"])
        out = capsys.readouterr().out
        assert code == 2
        assert "error" in out

    def test_campaign_negative_draws_rejected(self, capsys):
        code = main(["campaign", "--draws", "-5", "--quiet", "--no-cache"])
        out = capsys.readouterr().out
        assert code == 2
        assert "non-negative" in out

    def test_campaign_duplicate_protocols_rejected(self, capsys):
        code = main(["campaign", "--protocols", "mabc,mabc", "--quiet",
                     "--no-cache"])
        out = capsys.readouterr().out
        assert code == 2
        assert "duplicate" in out


class TestSweepValidation:
    def test_zero_step_rejected(self, capsys):
        code = main(["sweep", "--min-db", "0", "--max-db", "5",
                     "--step-db", "0"])
        out = capsys.readouterr().out
        assert code == 2
        assert "must be positive" in out

    def test_inverted_range_rejected(self, capsys):
        code = main(["sweep", "--min-db", "5", "--max-db", "0",
                     "--step-db", "1"])
        assert code == 2
