"""Unit tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_subcommands_registered(self):
        parser = build_parser()
        actions = {
            action.dest: action for action in parser._actions
        }
        subparsers = actions["command"]
        assert set(subparsers.choices) == {
            "fig3", "fig4", "region", "sumrate", "simulate", "diagrams",
            "sweep", "adaptive", "fairness",
        }

    def test_region_requires_protocol(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["region"])

    def test_bad_protocol_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["region", "--protocol", "bogus"])


class TestCommands:
    def test_diagrams(self, capsys):
        assert main(["diagrams"]) == 0
        out = capsys.readouterr().out
        assert "MABC" in out and "HBC" in out

    def test_sumrate(self, capsys):
        code = main(["sumrate", "--power-db", "10"])
        out = capsys.readouterr().out
        assert code == 0
        assert "best protocol" in out
        assert "MABC" in out

    def test_region(self, capsys):
        code = main(["region", "--protocol", "mabc", "--points", "5"])
        out = capsys.readouterr().out
        assert code == 0
        assert "max sum rate" in out

    def test_region_outer(self, capsys):
        code = main(["region", "--protocol", "tdbc", "--outer", "--points", "5"])
        out = capsys.readouterr().out
        assert code == 0
        assert "outer bound" in out

    def test_simulate(self, capsys):
        code = main([
            "simulate", "--protocol", "mabc", "--rounds", "3",
            "--payload-bits", "32", "--power-db", "20",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "goodput" in out

    def test_simulate_dt(self, capsys):
        code = main([
            "simulate", "--protocol", "dt", "--rounds", "2",
            "--payload-bits", "32", "--power-db", "25", "--gab-db", "0",
        ])
        assert code == 0

    def test_sweep(self, capsys):
        code = main(["sweep", "--min-db", "0", "--max-db", "5",
                     "--step-db", "5"])
        out = capsys.readouterr().out
        assert code == 0
        assert "power sweep" in out
        assert "NAIVE4" in out

    def test_adaptive(self, capsys):
        code = main(["adaptive", "--draws", "5", "--power-db", "10"])
        out = capsys.readouterr().out
        assert code == 0
        assert "adaptivity gain" in out
        assert "ADAPTIVE" in out

    def test_fairness(self, capsys):
        code = main(["fairness", "--power-db", "10"])
        out = capsys.readouterr().out
        assert code == 0
        assert "fairness analysis" in out
        assert "cost of symmetry" in out


class TestSweepValidation:
    def test_zero_step_rejected(self, capsys):
        code = main(["sweep", "--min-db", "0", "--max-db", "5",
                     "--step-db", "0"])
        out = capsys.readouterr().out
        assert code == 2
        assert "must be positive" in out

    def test_inverted_range_rejected(self, capsys):
        code = main(["sweep", "--min-db", "5", "--max-db", "0",
                     "--step-db", "1"])
        assert code == 2
