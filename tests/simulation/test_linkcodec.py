"""Unit tests for repro.simulation.linkcodec."""

import numpy as np
import pytest

from repro.exceptions import InvalidParameterError
from repro.simulation.bits import random_bits
from repro.simulation.convolutional import TEST_CODE
from repro.simulation.crc import CRC8
from repro.simulation.linkcodec import LinkCodec, default_codec


@pytest.fixture
def codec():
    """A small, fast codec for unit tests."""
    return LinkCodec(payload_bits=32, code=TEST_CODE, crc=CRC8)


class TestDimensions:
    def test_frame_bits(self, codec):
        assert codec.frame_bits == 32 + 8

    def test_coded_bits(self, codec):
        assert codec.coded_bits == (40 + 2) * 2

    def test_n_symbols_bpsk(self, codec):
        assert codec.n_symbols == codec.coded_bits

    def test_rate(self, codec):
        assert codec.rate == pytest.approx(32 / codec.n_symbols)

    def test_default_codec_dimensions(self):
        codec = default_codec(128)
        assert codec.frame_bits == 128 + 16
        assert codec.coded_bits == (144 + 6) * 2

    def test_invalid_payload_rejected(self):
        with pytest.raises(InvalidParameterError):
            LinkCodec(payload_bits=0)


class TestRoundtrip:
    def test_noiseless(self, codec, rng):
        payload = random_bits(rng, 32)
        symbols = codec.encode(payload)
        frame = codec.decode(symbols, 1.0 + 0j, noise_power=1e-9)
        assert frame.crc_ok
        np.testing.assert_array_equal(frame.payload, payload)

    def test_with_gain_and_amplitude(self, codec, rng):
        payload = random_bits(rng, 32)
        gain = 0.4 * np.exp(1j * 1.2)
        amplitude = 2.5
        received = amplitude * gain * codec.encode(payload)
        frame = codec.decode(received, gain, noise_power=1e-9, amplitude=amplitude)
        assert frame.crc_ok
        np.testing.assert_array_equal(frame.payload, payload)

    def test_moderate_noise_decodes(self, codec, rng):
        payload = random_bits(rng, 32)
        received = 3.0 * codec.encode(payload) + 0.5 * (
            rng.normal(size=codec.n_symbols) + 1j * rng.normal(size=codec.n_symbols)
        )
        frame = codec.decode(received, 1.0 + 0j, noise_power=0.25, amplitude=3.0)
        assert frame.crc_ok
        np.testing.assert_array_equal(frame.payload, payload)

    def test_pure_noise_fails_crc(self, codec, rng):
        noise = rng.normal(size=codec.n_symbols) + 1j * rng.normal(size=codec.n_symbols)
        frame = codec.decode(noise, 1.0 + 0j, noise_power=1.0)
        assert not frame.crc_ok

    def test_frame_bits_roundtrip(self, codec, rng):
        frame_bits = codec.crc.append(random_bits(rng, 32))
        symbols = codec.encode_frame_bits(frame_bits)
        decoded = codec.decode(symbols, 1.0 + 0j, noise_power=1e-9)
        np.testing.assert_array_equal(decoded.frame_bits, frame_bits)


class TestValidation:
    def test_wrong_payload_size_rejected(self, codec, rng):
        with pytest.raises(InvalidParameterError):
            codec.encode(random_bits(rng, 31))

    def test_wrong_frame_size_rejected(self, codec, rng):
        with pytest.raises(InvalidParameterError):
            codec.encode_frame_bits(random_bits(rng, 32))

    def test_wrong_symbol_count_rejected(self, codec):
        with pytest.raises(InvalidParameterError):
            codec.decode(np.zeros(5, dtype=complex), 1.0 + 0j, 1.0)

    def test_wrong_llr_count_rejected(self, codec):
        with pytest.raises(InvalidParameterError):
            codec.decode_llrs(np.zeros(5))


class TestInterleaving:
    def test_different_seeds_give_different_symbols(self, rng):
        payload = random_bits(rng, 32)
        codec_a = LinkCodec(
            payload_bits=32, code=TEST_CODE, crc=CRC8, interleaver_seed=1
        )
        codec_b = LinkCodec(
            payload_bits=32, code=TEST_CODE, crc=CRC8, interleaver_seed=2
        )
        assert not np.allclose(codec_a.encode(payload), codec_b.encode(payload))

    def test_seed_mismatch_breaks_decoding(self, rng):
        payload = random_bits(rng, 32)
        codec_a = LinkCodec(
            payload_bits=32, code=TEST_CODE, crc=CRC8, interleaver_seed=1
        )
        codec_b = LinkCodec(
            payload_bits=32, code=TEST_CODE, crc=CRC8, interleaver_seed=2
        )
        frame = codec_b.decode(codec_a.encode(payload), 1.0 + 0j, 1e-9)
        assert not frame.crc_ok


class TestBatchedPipeline:
    """The row-batched codec must equal the scalar pipeline bit for bit."""

    def test_encode_rows_match_scalar(self, codec, rng):
        rows = np.stack([random_bits(rng, 32) for _ in range(6)])
        batch = codec.encode_rows(rows)
        for index in range(rows.shape[0]):
            np.testing.assert_array_equal(batch[index], codec.encode(rows[index]))

    def test_decode_rows_match_scalar(self, codec, rng):
        gain = 0.9 + 0.2j
        symbols = np.stack(
            [gain * codec.encode(random_bits(rng, 32)) for _ in range(6)]
        )
        noisy = symbols + 0.4 * (
            rng.normal(size=symbols.shape) + 1j * rng.normal(size=symbols.shape)
        )
        batch = codec.decode_rows(noisy, gain, 0.32, amplitude=1.0)
        for index in range(noisy.shape[0]):
            scalar = codec.decode(noisy[index], gain, 0.32, amplitude=1.0)
            frame = batch.frame(index)
            np.testing.assert_array_equal(frame.payload, scalar.payload)
            np.testing.assert_array_equal(frame.frame_bits, scalar.frame_bits)
            assert frame.crc_ok == scalar.crc_ok

    def test_round_trip_rows(self, codec, rng):
        rows = np.stack([random_bits(rng, 32) for _ in range(5)])
        decoded = codec.decode_rows(codec.encode_rows(rows), 1.0 + 0j, 1e-9)
        np.testing.assert_array_equal(decoded.payload, rows)
        assert decoded.crc_ok.all()
        assert len(decoded) == 5

    def test_row_shapes_validated(self, codec):
        with pytest.raises(InvalidParameterError):
            codec.encode_rows(np.zeros((2, 16), dtype=np.uint8))
        with pytest.raises(InvalidParameterError):
            codec.encode_frame_rows(np.zeros((2, 16), dtype=np.uint8))
        with pytest.raises(InvalidParameterError):
            codec.demodulate_rows(np.zeros((2, 5), dtype=complex), 1.0 + 0j, 1.0)
        with pytest.raises(InvalidParameterError):
            codec.decode_llr_rows(np.zeros((2, 5)))
