"""Unit tests for repro.simulation.linkcodec."""

import numpy as np
import pytest

from repro.exceptions import InvalidParameterError
from repro.simulation.bits import random_bits
from repro.simulation.convolutional import TEST_CODE
from repro.simulation.crc import CRC8
from repro.simulation.linkcodec import LinkCodec, default_codec


@pytest.fixture
def codec():
    """A small, fast codec for unit tests."""
    return LinkCodec(payload_bits=32, code=TEST_CODE, crc=CRC8)


class TestDimensions:
    def test_frame_bits(self, codec):
        assert codec.frame_bits == 32 + 8

    def test_coded_bits(self, codec):
        assert codec.coded_bits == (40 + 2) * 2

    def test_n_symbols_bpsk(self, codec):
        assert codec.n_symbols == codec.coded_bits

    def test_rate(self, codec):
        assert codec.rate == pytest.approx(32 / codec.n_symbols)

    def test_default_codec_dimensions(self):
        codec = default_codec(128)
        assert codec.frame_bits == 128 + 16
        assert codec.coded_bits == (144 + 6) * 2

    def test_invalid_payload_rejected(self):
        with pytest.raises(InvalidParameterError):
            LinkCodec(payload_bits=0)


class TestRoundtrip:
    def test_noiseless(self, codec, rng):
        payload = random_bits(rng, 32)
        symbols = codec.encode(payload)
        frame = codec.decode(symbols, 1.0 + 0j, noise_power=1e-9)
        assert frame.crc_ok
        np.testing.assert_array_equal(frame.payload, payload)

    def test_with_gain_and_amplitude(self, codec, rng):
        payload = random_bits(rng, 32)
        gain = 0.4 * np.exp(1j * 1.2)
        amplitude = 2.5
        received = amplitude * gain * codec.encode(payload)
        frame = codec.decode(received, gain, noise_power=1e-9,
                             amplitude=amplitude)
        assert frame.crc_ok
        np.testing.assert_array_equal(frame.payload, payload)

    def test_moderate_noise_decodes(self, codec, rng):
        payload = random_bits(rng, 32)
        received = 3.0 * codec.encode(payload) + 0.5 * (
            rng.normal(size=codec.n_symbols)
            + 1j * rng.normal(size=codec.n_symbols)
        )
        frame = codec.decode(received, 1.0 + 0j, noise_power=0.25,
                             amplitude=3.0)
        assert frame.crc_ok
        np.testing.assert_array_equal(frame.payload, payload)

    def test_pure_noise_fails_crc(self, codec, rng):
        noise = rng.normal(size=codec.n_symbols) + 1j * rng.normal(
            size=codec.n_symbols
        )
        frame = codec.decode(noise, 1.0 + 0j, noise_power=1.0)
        assert not frame.crc_ok

    def test_frame_bits_roundtrip(self, codec, rng):
        frame_bits = codec.crc.append(random_bits(rng, 32))
        symbols = codec.encode_frame_bits(frame_bits)
        decoded = codec.decode(symbols, 1.0 + 0j, noise_power=1e-9)
        np.testing.assert_array_equal(decoded.frame_bits, frame_bits)


class TestValidation:
    def test_wrong_payload_size_rejected(self, codec, rng):
        with pytest.raises(InvalidParameterError):
            codec.encode(random_bits(rng, 31))

    def test_wrong_frame_size_rejected(self, codec, rng):
        with pytest.raises(InvalidParameterError):
            codec.encode_frame_bits(random_bits(rng, 32))

    def test_wrong_symbol_count_rejected(self, codec):
        with pytest.raises(InvalidParameterError):
            codec.decode(np.zeros(5, dtype=complex), 1.0 + 0j, 1.0)

    def test_wrong_llr_count_rejected(self, codec):
        with pytest.raises(InvalidParameterError):
            codec.decode_llrs(np.zeros(5))


class TestInterleaving:
    def test_different_seeds_give_different_symbols(self, rng):
        payload = random_bits(rng, 32)
        codec_a = LinkCodec(payload_bits=32, code=TEST_CODE, crc=CRC8,
                            interleaver_seed=1)
        codec_b = LinkCodec(payload_bits=32, code=TEST_CODE, crc=CRC8,
                            interleaver_seed=2)
        assert not np.allclose(codec_a.encode(payload), codec_b.encode(payload))

    def test_seed_mismatch_breaks_decoding(self, rng):
        payload = random_bits(rng, 32)
        codec_a = LinkCodec(payload_bits=32, code=TEST_CODE, crc=CRC8,
                            interleaver_seed=1)
        codec_b = LinkCodec(payload_bits=32, code=TEST_CODE, crc=CRC8,
                            interleaver_seed=2)
        frame = codec_b.decode(codec_a.encode(payload), 1.0 + 0j, 1e-9)
        assert not frame.crc_ok
