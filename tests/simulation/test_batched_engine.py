"""Batched-vs-reference equivalence: the tentpole proof of this subsystem.

The batched link-level kernel must reproduce the per-round reference
implementation *exactly* — every field of every report — across all
protocols, both shipped convolutional codes, both modulations and any
batch size. These tests are the executable form of that contract.
"""

import numpy as np
import pytest

from repro.channels.gains import LinkGains
from repro.channels.halfduplex import HalfDuplexMedium
from repro.core.protocols import Protocol
from repro.exceptions import InvalidParameterError
from repro.simulation.convolutional import NASA_CODE, TEST_CODE
from repro.simulation.crc import CRC8, CRC16_CCITT
from repro.simulation.engine import (
    PROTOCOL_PHASE_COUNTS,
    BatchedProtocolEngine,
    ProtocolEngine,
    spawn_phase_streams,
)
from repro.simulation.linkcodec import LinkCodec
from repro.simulation.modulation import Qpsk
from repro.simulation.montecarlo import simulate_protocol

FAST_CODEC = LinkCodec(payload_bits=32, code=TEST_CODE, crc=CRC8)
NASA_CODEC = LinkCodec(payload_bits=32, code=NASA_CODE, crc=CRC16_CCITT)
QPSK_CODEC = LinkCodec(payload_bits=32, code=TEST_CODE, crc=CRC8, modulation=Qpsk())
GAINS = LinkGains.from_db(-7.0, 0.0, 5.0)

#: Moderate SNR so the batch contains successes *and* failures — the
#: regime where an arbitration or accounting mismatch would actually show.
POWER = 1.0


def _report_pair(
    protocol, codec, *, n_rounds=21, seed=123, power=POWER, batch_size=None
):
    reference = simulate_protocol(
        protocol,
        GAINS,
        power,
        n_rounds,
        np.random.default_rng(seed),
        codec=codec,
        method="reference",
    )
    batched = simulate_protocol(
        protocol,
        GAINS,
        power,
        n_rounds,
        np.random.default_rng(seed),
        codec=codec,
        batch_size=batch_size,
    )
    return reference, batched


class TestReportEquality:
    """simulate_protocol: batched == per-round reference, field for field."""

    @pytest.mark.parametrize(
        "protocol", list(Protocol), ids=[p.value for p in Protocol]
    )
    @pytest.mark.parametrize(
        "codec", [FAST_CODEC, NASA_CODEC], ids=["test-code", "nasa-code"]
    )
    def test_batched_equals_reference(self, protocol, codec):
        reference, batched = _report_pair(protocol, codec)
        assert batched == reference

    @pytest.mark.parametrize(
        "protocol", list(Protocol), ids=[p.value for p in Protocol]
    )
    def test_qpsk_batched_equals_reference(self, protocol):
        reference, batched = _report_pair(protocol, QPSK_CODEC)
        assert batched == reference

    def test_mixed_outcomes_are_exercised(self):
        """The chosen SNR produces both successes and failures (regression
        guard: an all-success batch would vacuously pass arbitration)."""
        reference, _ = _report_pair(Protocol.TDBC, FAST_CODEC, n_rounds=40)
        errors = (reference.a_to_b.frame_errors + reference.b_to_a.frame_errors)
        assert 0 < errors < 80


class TestBatchSizeInvariance:
    """Results are a pure function of the rng state — never of batching."""

    @pytest.mark.parametrize(
        "batch_size", [1, 7, 64], ids=["one", "prime", "over-campaign"]
    )
    @pytest.mark.parametrize(
        "protocol", list(Protocol), ids=[p.value for p in Protocol]
    )
    def test_odd_batch_sizes(self, protocol, batch_size):
        reference, batched = _report_pair(
            protocol, FAST_CODEC, n_rounds=23, batch_size=batch_size
        )
        assert batched == reference

    def test_invalid_batch_size_rejected(self, paper_gains, rng):
        with pytest.raises(InvalidParameterError):
            simulate_protocol(
                Protocol.DT, paper_gains, 1.0, 2, rng, codec=FAST_CODEC, batch_size=0
            )

    def test_invalid_method_rejected(self, paper_gains, rng):
        with pytest.raises(InvalidParameterError):
            simulate_protocol(
                Protocol.DT, paper_gains, 1.0, 2, rng, codec=FAST_CODEC, method="turbo"
            )


class TestEngineRounds:
    """Engine-level equivalence over explicitly shared phase streams."""

    @pytest.mark.parametrize(
        "protocol", list(Protocol), ids=[p.value for p in Protocol]
    )
    def test_round_batch_matches_per_round_results(self, protocol):
        n_rounds = 9
        reference = ProtocolEngine(
            medium=HalfDuplexMedium(gains=GAINS), codec=FAST_CODEC, power=POWER
        )
        batched = BatchedProtocolEngine(
            medium=HalfDuplexMedium(gains=GAINS), codec=FAST_CODEC, power=POWER
        )
        root_ref = np.random.default_rng(7)
        root_bat = np.random.default_rng(7)
        payloads = root_ref.spawn(1)[0].integers(
            0, 2, size=(n_rounds, 2, 32), dtype=np.uint8
        )
        payloads_bat = root_bat.spawn(1)[0].integers(
            0, 2, size=(n_rounds, 2, 32), dtype=np.uint8
        )
        streams_ref = spawn_phase_streams(protocol, root_ref)
        streams_bat = spawn_phase_streams(protocol, root_bat)
        batch = batched.run_rounds(
            protocol, payloads_bat[:, 0], payloads_bat[:, 1], phase_streams=streams_bat,
        )
        assert len(batch) == n_rounds
        for index in range(n_rounds):
            result = reference.run_round(
                protocol,
                payloads[index, 0],
                payloads[index, 1],
                phase_streams=streams_ref,
            )
            assert batch.round_result(index) == result

    def test_phase_stream_count_validated(self):
        engine = BatchedProtocolEngine(
            medium=HalfDuplexMedium(gains=GAINS), codec=FAST_CODEC, power=POWER
        )
        payloads = np.zeros((3, 32), dtype=np.uint8)
        streams = np.random.default_rng(0).spawn(1)
        with pytest.raises(InvalidParameterError):
            engine.run_rounds(Protocol.TDBC, payloads, payloads, phase_streams=streams)

    def test_rng_or_streams_required(self):
        engine = BatchedProtocolEngine(
            medium=HalfDuplexMedium(gains=GAINS), codec=FAST_CODEC, power=POWER
        )
        payloads = np.zeros((3, 32), dtype=np.uint8)
        with pytest.raises(InvalidParameterError):
            engine.run_rounds(Protocol.DT, payloads, payloads)

    def test_mismatched_round_counts_rejected(self, rng):
        engine = BatchedProtocolEngine(
            medium=HalfDuplexMedium(gains=GAINS), codec=FAST_CODEC, power=POWER
        )
        with pytest.raises(InvalidParameterError):
            engine.run_rounds(
                Protocol.DT,
                np.zeros((3, 32), dtype=np.uint8),
                np.zeros((4, 32), dtype=np.uint8),
                rng,
            )

    def test_phase_counts_cover_all_protocols(self):
        assert set(PROTOCOL_PHASE_COUNTS) == set(Protocol)
