"""Unit tests for repro.simulation.modulation."""

import numpy as np
import pytest

from repro.exceptions import InvalidParameterError
from repro.simulation.bits import random_bits
from repro.simulation.modulation import Bpsk, Qpsk, hard_decisions


class TestBpsk:
    def test_mapping(self):
        symbols = Bpsk().modulate([0, 1, 0])
        np.testing.assert_allclose(symbols, [1.0, -1.0, 1.0])

    def test_unit_energy(self, rng):
        symbols = Bpsk().modulate(random_bits(rng, 256))
        assert np.mean(np.abs(symbols) ** 2) == pytest.approx(1.0)

    def test_llr_sign_noiseless(self):
        mod = Bpsk()
        bits = np.array([0, 1, 1, 0], dtype=np.uint8)
        symbols = mod.modulate(bits)
        llrs = mod.demodulate_llr(symbols, 1.0 + 0j, noise_power=1.0)
        np.testing.assert_array_equal(hard_decisions(llrs), bits)

    def test_llr_scales_with_snr(self):
        mod = Bpsk()
        symbols = mod.modulate([0])
        weak = mod.demodulate_llr(symbols, 1.0 + 0j, noise_power=10.0)
        strong = mod.demodulate_llr(symbols, 1.0 + 0j, noise_power=0.1)
        assert strong[0] > weak[0] > 0

    def test_llr_honours_complex_gain(self):
        mod = Bpsk()
        bits = np.array([0, 1], dtype=np.uint8)
        gain = 0.7 * np.exp(1j * 2.1)
        received = gain * mod.modulate(bits)
        llrs = mod.demodulate_llr(received, gain, noise_power=1.0)
        np.testing.assert_array_equal(hard_decisions(llrs), bits)

    def test_amplitude_scaling(self):
        mod = Bpsk()
        received = 3.0 * mod.modulate([0])
        llr = mod.demodulate_llr(received, 1.0 + 0j, noise_power=1.0, amplitude=3.0)
        assert llr[0] == pytest.approx(4.0 * 3.0 * 3.0)

    def test_invalid_noise_rejected(self):
        with pytest.raises(InvalidParameterError):
            Bpsk().demodulate_llr(np.ones(2), 1.0, noise_power=0.0)

    def test_symbols_for_bits(self):
        assert Bpsk().symbols_for_bits(7) == 7


class TestQpsk:
    def test_unit_energy(self, rng):
        symbols = Qpsk().modulate(random_bits(rng, 256))
        assert np.mean(np.abs(symbols) ** 2) == pytest.approx(1.0)

    def test_gray_mapping_quadrants(self):
        symbols = Qpsk().modulate([0, 0, 0, 1, 1, 0, 1, 1])
        signs = np.stack([np.sign(symbols.real), np.sign(symbols.imag)], axis=1)
        np.testing.assert_array_equal(signs, [[1, 1], [1, -1], [-1, 1], [-1, -1]])

    def test_odd_bit_count_rejected(self):
        with pytest.raises(InvalidParameterError):
            Qpsk().modulate([0, 1, 0])

    def test_roundtrip_noiseless(self, rng):
        mod = Qpsk()
        bits = random_bits(rng, 128)
        gain = 1.3 * np.exp(1j * 0.4)
        llrs = mod.demodulate_llr(gain * mod.modulate(bits), gain, noise_power=1e-3)
        np.testing.assert_array_equal(hard_decisions(llrs), bits)

    def test_symbols_for_bits_rounds_up(self):
        mod = Qpsk()
        assert mod.symbols_for_bits(8) == 4
        assert mod.symbols_for_bits(9) == 5


class TestHardDecisions:
    def test_signs(self):
        np.testing.assert_array_equal(
            hard_decisions(np.array([2.0, -0.5, 0.0, -3.0])), [0, 1, 0, 1]
        )


class TestBatchedRows:
    """Row-batched modulation must equal the scalar path bit for bit."""

    @pytest.mark.parametrize("mod", [Bpsk(), Qpsk()], ids=["bpsk", "qpsk"])
    def test_modulate_rows_match_scalar(self, mod, rng):
        rows = rng.integers(0, 2, size=(6, 24), dtype=np.uint8)
        batch = mod.modulate_rows(rows)
        for index in range(rows.shape[0]):
            np.testing.assert_array_equal(batch[index], mod.modulate(rows[index]))

    @pytest.mark.parametrize("mod", [Bpsk(), Qpsk()], ids=["bpsk", "qpsk"])
    def test_demodulate_llr_rows_match_scalar(self, mod, rng):
        gain = 0.8 - 0.3j
        symbols = rng.normal(size=(6, 12)) + 1j * rng.normal(size=(6, 12))
        batch = mod.demodulate_llr_rows(symbols, gain, 0.5, amplitude=2.0)
        for index in range(symbols.shape[0]):
            np.testing.assert_array_equal(
                batch[index],
                mod.demodulate_llr(symbols[index], gain, 0.5, amplitude=2.0),
            )

    def test_qpsk_rows_need_even_bits(self):
        with pytest.raises(InvalidParameterError):
            Qpsk().modulate_rows(np.zeros((2, 5), dtype=np.uint8))

    def test_rows_noise_power_validated(self):
        with pytest.raises(InvalidParameterError):
            Qpsk().demodulate_llr_rows(np.zeros((2, 4), dtype=complex), 1.0 + 0j, 0.0)
