"""The (cells × rounds)-fused campaign kernel and adaptive round allocation.

Acceptance criteria of the fused-cells PR live here:

* fused per-cell reports are bitwise-identical to the per-cell
  ``method="batched"`` path and the per-round ``method="reference"``
  loop across all five protocols and both convolutional codes;
* fused reports are invariant to the fusion width (how many cells share
  one kernel call), the wave/row-cap execution splits and the campaign
  chunk size;
* adaptive round allocation (``target_rel_error`` / ``max_rounds``) is a
  deterministic, spec-derived wave schedule: budgets stop at the first
  boundary where the FER precision target is met, never exceed the cap,
  and never depend on how the cells were fused.
"""

import numpy as np
import pytest

from repro.channels.gains import LinkGains
from repro.channels.halfduplex import FusedHalfDuplexMedium, FusedPhaseStream
from repro.core.protocols import Protocol
from repro.exceptions import InvalidParameterError
from repro.simulation.convolutional import NASA_CODE, TEST_CODE
from repro.simulation.crc import CRC8, CRC16_CCITT
from repro.simulation.engine import FusedCellEngine
from repro.simulation.linkcodec import LinkCodec
from repro.simulation.modulation import Qpsk
from repro.simulation.montecarlo import (
    simulate_protocol,
    simulate_protocol_cells,
    wave_bounds,
)

ALL_PROTOCOLS = (
    Protocol.DT,
    Protocol.NAIVE4,
    Protocol.MABC,
    Protocol.TDBC,
    Protocol.HBC,
)

#: Three cells spanning weak and strong channels, including one whose
#: SIC ordering differs from the others (gar > gbr), so the fused
#: per-row ordering decision is actually exercised.
CELL_GAINS = (
    LinkGains.from_db(-7.0, 0.0, 5.0),
    LinkGains.from_db(-3.0, 4.0, 1.0),
    LinkGains.from_db(0.0, 2.0, 2.0),
)
CELL_POWERS = (10**1.2, 10**0.4, 10**0.8)
SEED = 17


def small_codec(code=TEST_CODE, crc=CRC8, modulation=None, payload_bits=24):
    kwargs = {"payload_bits": payload_bits, "code": code, "crc": crc}
    if modulation is not None:
        kwargs["modulation"] = modulation
    return LinkCodec(**kwargs)


def cell_rngs(n=len(CELL_GAINS)):
    return [np.random.default_rng([SEED, i]) for i in range(n)]


def run_fused(protocol, codec, n_rounds=6, **kwargs):
    return simulate_protocol_cells(
        protocol, CELL_GAINS, CELL_POWERS, n_rounds, cell_rngs(), codec=codec, **kwargs
    )


class TestFusedEquivalence:
    @pytest.mark.parametrize("protocol", ALL_PROTOCOLS)
    @pytest.mark.parametrize(
        "code,crc,payload_bits",
        [(TEST_CODE, CRC8, 24), (NASA_CODE, CRC16_CCITT, 16)],
        ids=["test-code", "nasa-code"],
    )
    def test_fused_equals_per_cell_batched_and_reference(
        self, protocol, code, crc, payload_bits
    ):
        codec = small_codec(code=code, crc=crc, payload_bits=payload_bits)
        fused = run_fused(protocol, codec)
        for i, report in enumerate(fused):
            batched = simulate_protocol(
                protocol,
                CELL_GAINS[i],
                CELL_POWERS[i],
                6,
                np.random.default_rng([SEED, i]),
                codec=codec,
            )
            reference = simulate_protocol(
                protocol,
                CELL_GAINS[i],
                CELL_POWERS[i],
                6,
                np.random.default_rng([SEED, i]),
                codec=codec,
                method="reference",
            )
            assert report == batched
            assert report == reference

    def test_fused_equals_per_cell_with_qpsk(self):
        codec = small_codec(modulation=Qpsk())
        fused = run_fused(Protocol.MABC, codec)
        for i, report in enumerate(fused):
            assert report == simulate_protocol(
                Protocol.MABC,
                CELL_GAINS[i],
                CELL_POWERS[i],
                6,
                np.random.default_rng([SEED, i]),
                codec=codec,
            )

    @pytest.mark.parametrize("row_cap", [1, 2, 5, 7, 10_000])
    def test_fused_invariant_to_row_cap(self, row_cap):
        codec = small_codec()
        baseline = run_fused(Protocol.TDBC, codec)
        assert run_fused(Protocol.TDBC, codec, row_cap=row_cap) == baseline

    def test_row_cap_bounds_every_engine_call(self, monkeypatch):
        from repro.simulation import montecarlo

        codec = small_codec()
        rows_seen = []
        original = montecarlo.FusedCellEngine.for_cells.__func__

        def recording(cls, codec, gab, gar, gbr, power, rounds_per_cell, **kwargs):
            rows_seen.append(len(np.atleast_1d(gab)) * rounds_per_cell)
            return original(cls, codec, gab, gar, gbr, power, rounds_per_cell, **kwargs)

        monkeypatch.setattr(
            montecarlo.FusedCellEngine, "for_cells", classmethod(recording)
        )
        # A cap below the cell count must split the cells axis too, never
        # exceed `cap` rows per call.
        baseline = run_fused(Protocol.DT, codec)
        for cap in (1, 2):
            rows_seen.clear()
            assert run_fused(Protocol.DT, codec, row_cap=cap) == baseline
            assert rows_seen and max(rows_seen) <= cap

    def test_fused_invariant_to_fusion_width(self):
        codec = small_codec()
        together = run_fused(Protocol.HBC, codec)
        singly = [
            simulate_protocol_cells(
                Protocol.HBC,
                CELL_GAINS[i : i + 1],
                CELL_POWERS[i : i + 1],
                6,
                [np.random.default_rng([SEED, i])],
                codec=codec,
            )[0]
            for i in range(len(CELL_GAINS))
        ]
        assert together == singly

    def test_fer_property_counts_both_directions(self):
        codec = small_codec()
        report = run_fused(Protocol.DT, codec)[0]
        frames = report.a_to_b.frames + report.b_to_a.frames
        errors = report.a_to_b.frame_errors + report.b_to_a.frame_errors
        assert frames == 2 * report.n_rounds
        assert report.fer == errors / frames


class TestWaveBounds:
    def test_fixed_budget_is_one_wave(self):
        assert wave_bounds(12) == (12,)

    def test_escalation_doubles_to_the_cap(self):
        assert wave_bounds(8, target_rel_error=0.3, max_rounds=100) == (
            8,
            16,
            32,
            64,
            100,
        )

    def test_cap_equal_to_initial_wave_is_one_wave(self):
        assert wave_bounds(8, target_rel_error=0.3, max_rounds=8) == (8,)

    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            wave_bounds(0)
        with pytest.raises(InvalidParameterError):
            wave_bounds(8, target_rel_error=0.3)
        with pytest.raises(InvalidParameterError):
            wave_bounds(8, max_rounds=16)
        with pytest.raises(InvalidParameterError):
            wave_bounds(8, target_rel_error=-0.1, max_rounds=16)
        with pytest.raises(InvalidParameterError):
            wave_bounds(8, target_rel_error=0.3, max_rounds=4)


class TestAdaptiveAllocation:
    def adaptive(self, powers, **kwargs):
        kwargs.setdefault("target_rel_error", 0.4)
        kwargs.setdefault("max_rounds", 64)
        return simulate_protocol_cells(
            Protocol.MABC,
            (CELL_GAINS[0],) * len(powers),
            powers,
            4,
            cell_rngs(len(powers)),
            codec=small_codec(),
            **kwargs,
        )

    def test_noisy_cells_stop_early_clean_cells_hit_the_cap(self):
        reports = self.adaptive((10**-0.5, 10**1.2))
        noisy, clean = reports
        assert noisy.fer > 0
        assert noisy.n_rounds < 64  # resolved before the cap
        assert clean.n_rounds == 64  # zero errors: runs to max_rounds
        assert clean.fer == 0.0

    def test_budgets_follow_the_wave_schedule(self):
        bounds = wave_bounds(4, target_rel_error=0.4, max_rounds=64)
        reports = self.adaptive((10**-0.5, 10**0.1, 10**1.2))
        for report in reports:
            assert report.n_rounds in bounds

    def test_adaptive_deterministic_and_fusion_invariant(self):
        powers = (10**-0.5, 10**0.1, 10**1.2)
        together = self.adaptive(powers)
        repeat = self.adaptive(powers)
        assert together == repeat
        for i, report in enumerate(together):
            single = simulate_protocol_cells(
                Protocol.MABC,
                (CELL_GAINS[0],),
                powers[i : i + 1],
                4,
                [np.random.default_rng([SEED, i])],
                codec=small_codec(),
                target_rel_error=0.4,
                max_rounds=64,
            )[0]
            assert report == single

    def test_adaptive_invariant_to_row_cap(self):
        powers = (10**-0.5, 10**0.1, 10**1.2)
        baseline = self.adaptive(powers)
        for row_cap in (1, 3, 11):
            assert self.adaptive(powers, row_cap=row_cap) == baseline

    def test_simulate_protocol_routes_adaptive_budgets(self):
        report = simulate_protocol(
            Protocol.MABC,
            CELL_GAINS[0],
            10**-0.5,
            4,
            np.random.default_rng([SEED, 0]),
            codec=small_codec(),
            target_rel_error=0.4,
            max_rounds=64,
        )
        expected = self.adaptive((10**-0.5,))[0]
        assert report == expected

    def test_adaptive_rejects_reference_method(self):
        with pytest.raises(InvalidParameterError):
            simulate_protocol(
                Protocol.MABC,
                CELL_GAINS[0],
                1.0,
                4,
                np.random.default_rng(0),
                codec=small_codec(),
                method="reference",
                target_rel_error=0.4,
                max_rounds=64,
            )


class TestValidation:
    def test_cell_and_rng_counts_must_agree(self):
        with pytest.raises(InvalidParameterError):
            simulate_protocol_cells(
                Protocol.DT, CELL_GAINS, CELL_POWERS, 4, cell_rngs(2),
                codec=small_codec(),
            )

    def test_at_least_one_cell(self):
        with pytest.raises(InvalidParameterError):
            simulate_protocol_cells(Protocol.DT, (), (), 4, [], codec=small_codec())

    def test_row_cap_must_be_positive(self):
        with pytest.raises(InvalidParameterError):
            run_fused(Protocol.DT, small_codec(), row_cap=0)

    def test_fused_phase_stream_validation(self):
        with pytest.raises(InvalidParameterError):
            FusedPhaseStream(streams=(), rounds_per_cell=1)
        with pytest.raises(InvalidParameterError):
            FusedPhaseStream(streams=(np.random.default_rng(0),), rounds_per_cell=0)

    def test_fused_medium_validation(self):
        with pytest.raises(InvalidParameterError):
            FusedHalfDuplexMedium(
                gab=[1.0, 2.0], gar=[1.0], gbr=[1.0, 2.0], rounds_per_cell=2
            )
        with pytest.raises(InvalidParameterError):
            FusedHalfDuplexMedium(gab=[1.0], gar=[1.0], gbr=[1.0], rounds_per_cell=0)
        with pytest.raises(InvalidParameterError):
            FusedHalfDuplexMedium(gab=[-1.0], gar=[1.0], gbr=[1.0], rounds_per_cell=1)

    def test_fused_engine_validation(self):
        medium = FusedHalfDuplexMedium(
            gab=[1.0, 2.0], gar=[1.0, 1.0], gbr=[1.0, 1.0], rounds_per_cell=2
        )
        codec = small_codec()
        with pytest.raises(InvalidParameterError):
            FusedCellEngine(medium=medium, codec=codec, power=np.ones(4))
        with pytest.raises(InvalidParameterError):
            FusedCellEngine(medium=medium, codec=codec, power=np.ones((3, 1)))
        with pytest.raises(InvalidParameterError):
            FusedCellEngine(medium=medium, codec=codec, power=np.zeros((4, 1)))

    def test_fused_engine_for_cells_broadcasts_scalar_power(self):
        engine = FusedCellEngine.for_cells(
            small_codec(), [1.0, 2.0], [1.0, 1.0], [1.0, 1.0], 4.0, 3
        )
        assert engine.power.shape == (6, 1)
        assert np.all(engine.power == 4.0)
        assert engine.medium.n_rows == 6
