"""Unit tests for adaptive protocol selection under fading."""

import numpy as np
import pytest

from repro.core.protocols import Protocol
from repro.exceptions import InvalidParameterError
from repro.simulation.adaptive import (
    AdaptiveReport,
    adaptive_sum_rate,
    selection_frequencies,
)


class TestAdaptiveSumRate:
    def test_adaptive_dominates_fixed(self, paper_gains):
        report = adaptive_sum_rate(
            paper_gains, power=10.0, n_draws=50, rng=np.random.default_rng(1)
        )
        for mean in report.fixed_means.values():
            assert report.adaptive_mean >= mean - 1e-12
        assert report.adaptivity_gain >= -1e-12

    def test_winner_counts_partition_draws(self, paper_gains):
        report = adaptive_sum_rate(
            paper_gains, power=10.0, n_draws=40, rng=np.random.default_rng(2)
        )
        assert sum(report.winner_counts.values()) == 40
        assert sum(
            report.selection_frequency(p) for p in report.winner_counts
        ) == pytest.approx(1.0)

    def test_both_protocols_win_sometimes(self, paper_gains):
        """Fading sweeps the channel through both regimes, so the MABC/TDBC
        selection should be genuinely mixed at a mid power."""
        report = adaptive_sum_rate(
            paper_gains, power=10.0, n_draws=120, rng=np.random.default_rng(3)
        )
        assert report.winner_counts[Protocol.MABC] > 0
        assert report.winner_counts[Protocol.TDBC] > 0

    def test_single_candidate_has_zero_gain(self, paper_gains):
        report = adaptive_sum_rate(
            paper_gains,
            power=5.0,
            n_draws=20,
            rng=np.random.default_rng(4),
            candidates=(Protocol.MABC,),
        )
        assert report.adaptivity_gain == pytest.approx(0.0, abs=1e-12)
        assert report.selection_frequency(Protocol.MABC) == 1.0

    def test_hbc_candidate_absorbs_all_wins(self, paper_gains):
        """HBC contains the other two, so with HBC in the pool the
        adaptivity gain over fixed HBC is exactly zero."""
        report = adaptive_sum_rate(
            paper_gains,
            power=10.0,
            n_draws=25,
            rng=np.random.default_rng(5),
            candidates=(Protocol.HBC, Protocol.MABC, Protocol.TDBC),
        )
        assert report.adaptive_mean == pytest.approx(
            report.fixed_means[Protocol.HBC], abs=1e-9
        )

    def test_validation(self, paper_gains, rng):
        with pytest.raises(InvalidParameterError):
            adaptive_sum_rate(paper_gains, power=1.0, n_draws=0, rng=rng)
        with pytest.raises(InvalidParameterError):
            adaptive_sum_rate(paper_gains, power=1.0, n_draws=5, rng=rng, candidates=())

    def test_report_type(self, paper_gains):
        report = adaptive_sum_rate(
            paper_gains, power=1.0, n_draws=5, rng=np.random.default_rng(6)
        )
        assert isinstance(report, AdaptiveReport)
        assert report.n_draws == 5


class TestSelectionFrequencies:
    def test_frequencies_sum_to_one(self, paper_gains):
        freqs = selection_frequencies(
            paper_gains, power=10.0, n_draws=30, rng=np.random.default_rng(7)
        )
        assert sum(freqs.values()) == pytest.approx(1.0)

    def test_reproducible_with_seed(self, paper_gains):
        a = selection_frequencies(
            paper_gains, power=10.0, n_draws=20, rng=np.random.default_rng(8)
        )
        b = selection_frequencies(
            paper_gains, power=10.0, n_draws=20, rng=np.random.default_rng(8)
        )
        assert a == b
