"""Unit tests for repro.simulation.bits."""

import numpy as np
import pytest

from repro.exceptions import InvalidParameterError
from repro.simulation.bits import (
    as_bits,
    bit_error_rate,
    bits_to_int,
    hamming_distance,
    int_to_bits,
    pad_bits,
    random_bits,
    xor_bits,
)


class TestAsBits:
    def test_accepts_binary(self):
        out = as_bits([0, 1, 1, 0])
        assert out.dtype == np.uint8
        np.testing.assert_array_equal(out, [0, 1, 1, 0])

    def test_rejects_non_binary(self):
        with pytest.raises(InvalidParameterError):
            as_bits([0, 2, 1])

    def test_rejects_2d(self):
        with pytest.raises(InvalidParameterError):
            as_bits([[0, 1], [1, 0]])

    def test_copy_semantics(self):
        source = np.array([0, 1], dtype=np.uint8)
        out = as_bits(source)
        out[0] = 1
        assert source[0] == 0


class TestRandomBits:
    def test_length(self, rng):
        assert random_bits(rng, 100).shape == (100,)

    def test_roughly_balanced(self, rng):
        bits = random_bits(rng, 20000)
        assert bits.mean() == pytest.approx(0.5, abs=0.02)

    def test_negative_rejected(self, rng):
        with pytest.raises(InvalidParameterError):
            random_bits(rng, -1)

    def test_zero_ok(self, rng):
        assert random_bits(rng, 0).size == 0


class TestIntConversion:
    def test_roundtrip(self):
        for value in (0, 1, 5, 255, 1023):
            assert bits_to_int(int_to_bits(value, 10)) == value

    def test_big_endian(self):
        np.testing.assert_array_equal(int_to_bits(4, 3), [1, 0, 0])
        assert bits_to_int([1, 0, 0]) == 4

    def test_width_overflow_rejected(self):
        with pytest.raises(InvalidParameterError):
            int_to_bits(8, 3)

    def test_negative_rejected(self):
        with pytest.raises(InvalidParameterError):
            int_to_bits(-1, 4)


class TestXorPadHamming:
    def test_xor(self):
        np.testing.assert_array_equal(
            xor_bits([1, 0, 1, 0], [1, 1, 0, 0]), [0, 1, 1, 0]
        )

    def test_xor_self_is_zero(self, rng):
        bits = random_bits(rng, 64)
        assert xor_bits(bits, bits).sum() == 0

    def test_xor_length_mismatch_rejected(self):
        with pytest.raises(InvalidParameterError):
            xor_bits([1, 0], [1, 0, 1])

    def test_pad(self):
        np.testing.assert_array_equal(pad_bits([1, 1], 4), [1, 1, 0, 0])

    def test_pad_noop(self):
        np.testing.assert_array_equal(pad_bits([1, 0], 2), [1, 0])

    def test_pad_shrink_rejected(self):
        with pytest.raises(InvalidParameterError):
            pad_bits([1, 0, 1], 2)

    def test_hamming(self):
        assert hamming_distance([1, 0, 1], [0, 0, 1]) == 1
        assert hamming_distance([1, 1], [1, 1]) == 0

    def test_ber(self):
        assert bit_error_rate([1, 0, 1, 0], [1, 1, 1, 1]) == pytest.approx(0.5)

    def test_ber_empty_rejected(self):
        with pytest.raises(InvalidParameterError):
            bit_error_rate([], [])
