"""Unit tests for repro.simulation.terminals."""

import numpy as np
import pytest

from repro.simulation.bits import random_bits, xor_bits
from repro.simulation.convolutional import TEST_CODE
from repro.simulation.crc import CRC8
from repro.simulation.linkcodec import DecodedFrame, LinkCodec
from repro.simulation.terminals import (
    DecodePath,
    arbitrate_paths,
    resolve_via_relay,
)


@pytest.fixture
def codec():
    return LinkCodec(payload_bits=32, code=TEST_CODE, crc=CRC8)


def make_frame(codec, payload, *, crc_ok=True, corrupt=False):
    frame_bits = codec.crc.append(payload)
    if corrupt:
        frame_bits = frame_bits.copy()
        frame_bits[0] ^= 1
    return DecodedFrame(
        payload=codec.crc.strip(frame_bits),
        frame_bits=frame_bits,
        crc_ok=crc_ok and codec.crc.check(frame_bits),
    )


class TestResolveViaRelay:
    def test_partner_recovered(self, codec, rng):
        wa, wb = random_bits(rng, 32), random_bits(rng, 32)
        own = codec.crc.append(wa)
        partner = codec.crc.append(wb)
        relay = make_frame(codec, codec.crc.strip(xor_bits(own, partner)))
        relay = DecodedFrame(
            payload=codec.crc.strip(xor_bits(own, partner)),
            frame_bits=xor_bits(own, partner),
            crc_ok=True,
        )
        estimate = resolve_via_relay(relay, own, codec.crc)
        assert estimate.crc_ok
        assert estimate.path is DecodePath.RELAY
        np.testing.assert_array_equal(estimate.payload, wb)

    def test_corrupted_relay_flagged(self, codec, rng):
        wa, wb = random_bits(rng, 32), random_bits(rng, 32)
        own = codec.crc.append(wa)
        partner = codec.crc.append(wb)
        bad = xor_bits(own, partner).copy()
        bad[3] ^= 1
        relay = DecodedFrame(
            payload=codec.crc.strip(bad), frame_bits=bad, crc_ok=codec.crc.check(bad)
        )
        estimate = resolve_via_relay(relay, own, codec.crc)
        assert not estimate.crc_ok
        assert estimate.path is DecodePath.FAILED


class TestArbitration:
    def test_relay_path_preferred(self, codec, rng):
        wa, wb = random_bits(rng, 32), random_bits(rng, 32)
        own = codec.crc.append(wa)
        relay = DecodedFrame(
            payload=None,
            frame_bits=xor_bits(own, codec.crc.append(wb)),
            crc_ok=True,
        )
        relay = DecodedFrame(
            payload=codec.crc.strip(relay.frame_bits),
            frame_bits=relay.frame_bits,
            crc_ok=True,
        )
        direct = make_frame(codec, random_bits(rng, 32))  # valid but different
        estimate = arbitrate_paths(
            codec, relay_frame=relay, own_frame_bits=own, direct_frame=direct
        )
        assert estimate.path is DecodePath.RELAY
        np.testing.assert_array_equal(estimate.payload, wb)

    def test_direct_fallback_when_relay_bad(self, codec, rng):
        wa, wb = random_bits(rng, 32), random_bits(rng, 32)
        own = codec.crc.append(wa)
        bad_relay_bits = xor_bits(own, codec.crc.append(wb)).copy()
        bad_relay_bits[1] ^= 1
        relay = DecodedFrame(
            payload=codec.crc.strip(bad_relay_bits),
            frame_bits=bad_relay_bits,
            crc_ok=False,
        )
        direct = make_frame(codec, wb)
        estimate = arbitrate_paths(
            codec, relay_frame=relay, own_frame_bits=own, direct_frame=direct
        )
        assert estimate.path is DecodePath.DIRECT
        assert estimate.crc_ok
        np.testing.assert_array_equal(estimate.payload, wb)

    def test_both_paths_bad_reports_failure(self, codec, rng):
        wa = random_bits(rng, 32)
        own = codec.crc.append(wa)
        bad_bits = codec.crc.append(random_bits(rng, 32)).copy()
        bad_bits[0] ^= 1
        relay = DecodedFrame(
            payload=codec.crc.strip(bad_bits), frame_bits=bad_bits, crc_ok=False
        )
        direct = DecodedFrame(
            payload=codec.crc.strip(bad_bits), frame_bits=bad_bits, crc_ok=False
        )
        estimate = arbitrate_paths(
            codec, relay_frame=relay, own_frame_bits=own, direct_frame=direct
        )
        assert estimate.path is DecodePath.FAILED
        assert not estimate.crc_ok

    def test_no_relay_uses_direct(self, codec, rng):
        wb = random_bits(rng, 32)
        own = codec.crc.append(random_bits(rng, 32))
        direct = make_frame(codec, wb)
        estimate = arbitrate_paths(
            codec, relay_frame=None, own_frame_bits=own, direct_frame=direct
        )
        assert estimate.path is DecodePath.DIRECT
        np.testing.assert_array_equal(estimate.payload, wb)

    def test_nothing_available_fails_gracefully(self, codec, rng):
        own = codec.crc.append(random_bits(rng, 32))
        estimate = arbitrate_paths(
            codec, relay_frame=None, own_frame_bits=own, direct_frame=None
        )
        assert estimate.path is DecodePath.FAILED
        assert estimate.payload.shape == (32,)
