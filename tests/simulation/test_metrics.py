"""Unit tests for repro.simulation.metrics."""

import numpy as np
import pytest

from repro.exceptions import InvalidParameterError
from repro.simulation.metrics import LinkCounter, ThroughputReport, wilson_interval


class TestWilsonInterval:
    def test_contains_point_estimate(self):
        lo, hi = wilson_interval(30, 100)
        assert lo < 0.3 < hi

    def test_zero_trials_is_vacuous(self):
        assert wilson_interval(0, 0) == (0.0, 1.0)

    def test_all_successes_upper_is_one_ish(self):
        lo, hi = wilson_interval(50, 50)
        assert hi == pytest.approx(1.0)
        assert lo > 0.9

    def test_no_successes_lower_is_zero(self):
        lo, hi = wilson_interval(0, 50)
        assert lo == pytest.approx(0.0)
        assert hi < 0.1

    def test_narrows_with_more_trials(self):
        narrow = wilson_interval(500, 1000)
        wide = wilson_interval(5, 10)
        assert (narrow[1] - narrow[0]) < (wide[1] - wide[0])

    def test_invalid_counts_rejected(self):
        with pytest.raises(InvalidParameterError):
            wilson_interval(5, 4)
        with pytest.raises(InvalidParameterError):
            wilson_interval(-1, 4)


class TestLinkCounter:
    def test_accumulates(self):
        counter = LinkCounter()
        counter.record(success=True, n_bits=100, n_bit_errors=0)
        counter.record(success=False, n_bits=100, n_bit_errors=7)
        assert counter.frames == 2
        assert counter.fer == pytest.approx(0.5)
        assert counter.ber == pytest.approx(7 / 200)

    def test_empty_counter_rates_zero(self):
        counter = LinkCounter()
        assert counter.fer == 0.0
        assert counter.ber == 0.0

    def test_invalid_bit_counts_rejected(self):
        counter = LinkCounter()
        with pytest.raises(InvalidParameterError):
            counter.record(success=True, n_bits=10, n_bit_errors=11)

    def test_fer_interval(self):
        counter = LinkCounter()
        for _ in range(10):
            counter.record(success=False, n_bits=10, n_bit_errors=1)
        lo, hi = counter.fer_interval()
        assert lo > 0.6


class TestThroughputReport:
    def test_goodput_accounting(self):
        report = ThroughputReport()
        report.add_symbols(1000)
        report.record("a->b", delivered_bits=128)
        report.record("b->a", delivered_bits=128)
        assert report.sum_throughput == pytest.approx(0.256)
        assert report.direction_throughput("a->b") == pytest.approx(0.128)

    def test_empty_report(self):
        report = ThroughputReport()
        assert report.sum_throughput == 0.0
        assert report.direction_throughput("a->b") == 0.0

    def test_validation(self):
        report = ThroughputReport()
        with pytest.raises(InvalidParameterError):
            report.record("a->b", delivered_bits=-1)
        with pytest.raises(InvalidParameterError):
            report.add_symbols(-5)


class TestBatchedRecords:
    """Batched recorders must equal the per-frame record loop exactly."""

    def test_link_counter_record_rows(self):
        success = np.array([True, False, True, True, False])
        errors = np.array([0, 3, 0, 0, 7])
        batched = LinkCounter()
        batched.record_rows(success=success, n_bits=32, n_bit_errors=errors)
        looped = LinkCounter()
        for ok, err in zip(success, errors):
            looped.record(success=bool(ok), n_bits=32, n_bit_errors=int(err))
        assert batched == looped

    def test_link_counter_rows_validated(self):
        counter = LinkCounter()
        with pytest.raises(InvalidParameterError):
            counter.record_rows(
                success=np.array([True]), n_bits=4, n_bit_errors=np.array([5])
            )
        with pytest.raises(InvalidParameterError):
            counter.record_rows(
                success=np.array([True, False]), n_bits=4, n_bit_errors=np.array([1])
            )

    def test_throughput_record_rows(self):
        success = np.array([True, False, True])
        batched = ThroughputReport()
        batched.add_symbols(3 * 100)
        batched.record_rows("a->b", delivered_bits_per_frame=32, successes=success)
        batched.record_rows(
            "b->a", delivered_bits_per_frame=32, successes=np.zeros(3, dtype=bool)
        )
        looped = ThroughputReport()
        for ok in success:
            looped.add_symbols(100)
            if ok:
                looped.record("a->b", delivered_bits=32)
        assert batched == looped
        assert "b->a" not in batched.per_direction
