"""Unit tests for repro.simulation.montecarlo."""

import numpy as np
import pytest

from repro.channels.gains import LinkGains
from repro.core.protocols import Protocol
from repro.exceptions import InvalidParameterError
from repro.simulation.convolutional import TEST_CODE
from repro.simulation.crc import CRC8
from repro.simulation.linkcodec import LinkCodec
from repro.simulation.montecarlo import (
    ergodic_sum_rate,
    outage_probability,
    simulate_protocol,
)


@pytest.fixture
def fast_codec():
    return LinkCodec(payload_bits=32, code=TEST_CODE, crc=CRC8)


class TestSimulateProtocol:
    def test_high_snr_campaign_is_clean(self, fast_codec, paper_gains):
        rng = np.random.default_rng(1)
        report = simulate_protocol(
            Protocol.MABC,
            paper_gains,
            power=10**2.0,  # 20 dB
            n_rounds=15,
            rng=rng,
            codec=fast_codec,
        )
        assert report.a_to_b.fer == 0.0
        assert report.b_to_a.fer == 0.0
        assert report.sum_goodput > 0.0
        assert report.relay_failures == 0

    def test_zero_snr_campaign_fails(self, fast_codec):
        rng = np.random.default_rng(2)
        weak = LinkGains.from_db(-30.0, -30.0, -30.0)
        report = simulate_protocol(
            Protocol.TDBC, weak, power=1.0, n_rounds=10, rng=rng, codec=fast_codec
        )
        assert report.a_to_b.fer > 0.5
        assert report.sum_goodput < 0.05

    def test_round_count_respected(self, fast_codec, paper_gains):
        rng = np.random.default_rng(3)
        report = simulate_protocol(
            Protocol.DT, paper_gains, power=100.0, n_rounds=7, rng=rng, codec=fast_codec
        )
        assert report.n_rounds == 7
        assert report.a_to_b.frames == 7

    def test_invalid_rounds_rejected(self, fast_codec, paper_gains, rng):
        with pytest.raises(InvalidParameterError):
            simulate_protocol(
                Protocol.DT,
                paper_gains,
                power=1.0,
                n_rounds=0,
                rng=rng,
                codec=fast_codec,
            )

    def test_goodput_below_analytic_bound(self, fast_codec, paper_gains):
        """Operational goodput can never exceed the capacity bound."""
        from repro.core.capacity import optimal_sum_rate
        from repro.core.gaussian import GaussianChannel

        rng = np.random.default_rng(4)
        power = 10.0
        report = simulate_protocol(
            Protocol.MABC,
            paper_gains,
            power=power,
            n_rounds=10,
            rng=rng,
            codec=fast_codec,
        )
        bound = optimal_sum_rate(
            Protocol.MABC, GaussianChannel(gains=paper_gains, power=power)
        ).sum_rate
        assert report.sum_goodput <= bound + 1e-9


class TestFadingStatistics:
    def test_ergodic_rate_positive(self, paper_gains):
        rng = np.random.default_rng(5)
        stats = ergodic_sum_rate(
            Protocol.MABC, paper_gains, power=10.0, n_draws=40, rng=rng
        )
        assert stats.mean > 0
        assert stats.std_error > 0
        assert stats.samples.shape == (40,)

    def test_quantile_ordering(self, paper_gains):
        rng = np.random.default_rng(6)
        stats = ergodic_sum_rate(
            Protocol.MABC, paper_gains, power=10.0, n_draws=60, rng=rng
        )
        assert stats.quantile(0.1) <= stats.quantile(0.9)
        with pytest.raises(InvalidParameterError):
            stats.quantile(1.5)

    def test_rician_concentrates_toward_static(self, paper_gains):
        """High K-factor fading must approach the no-fading sum rate."""
        from repro.core.capacity import optimal_sum_rate
        from repro.core.gaussian import GaussianChannel

        rng = np.random.default_rng(7)
        static = optimal_sum_rate(
            Protocol.MABC, GaussianChannel(gains=paper_gains, power=10.0)
        ).sum_rate
        stats = ergodic_sum_rate(
            Protocol.MABC, paper_gains, power=10.0, n_draws=40, rng=rng, k_factor=1000.0
        )
        assert stats.mean == pytest.approx(static, rel=0.05)

    def test_draw_count_validated(self, paper_gains, rng):
        with pytest.raises(InvalidParameterError):
            ergodic_sum_rate(Protocol.DT, paper_gains, 1.0, 0, rng)


class TestOutage:
    def test_outage_monotone_in_target(self, paper_gains):
        rng = np.random.default_rng(8)
        low = outage_probability(
            Protocol.MABC,
            paper_gains,
            power=10.0,
            target_sum_rate=0.5,
            n_draws=60,
            rng=np.random.default_rng(8),
        )
        high = outage_probability(
            Protocol.MABC,
            paper_gains,
            power=10.0,
            target_sum_rate=5.0,
            n_draws=60,
            rng=np.random.default_rng(8),
        )
        assert low <= high

    def test_zero_target_never_in_outage(self, paper_gains):
        outage = outage_probability(
            Protocol.MABC,
            paper_gains,
            power=10.0,
            target_sum_rate=0.0,
            n_draws=30,
            rng=np.random.default_rng(9),
        )
        assert outage == 0.0

    def test_negative_target_rejected(self, paper_gains, rng):
        with pytest.raises(InvalidParameterError):
            outage_probability(Protocol.MABC, paper_gains, 1.0, -1.0, 10, rng)
