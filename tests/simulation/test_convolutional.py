"""Unit tests for the convolutional code and Viterbi decoder."""

import numpy as np
import pytest

from repro.exceptions import InvalidParameterError
from repro.simulation.bits import random_bits
from repro.simulation.convolutional import NASA_CODE, TEST_CODE, ConvolutionalCode


class TestEncoding:
    def test_output_length(self):
        assert TEST_CODE.n_coded_bits(10) == (10 + 2) * 2
        assert NASA_CODE.n_coded_bits(100) == (100 + 6) * 2

    def test_known_sequence_k3(self):
        # (5, 7) code: g0 = 101, g1 = 111. Input 1 0 0 (impulse) gives the
        # generator taps on the two output streams.
        coded = TEST_CODE.encode([1])
        # T = 3 steps; outputs interleaved (g0, g1) per step.
        np.testing.assert_array_equal(coded, [1, 1, 0, 1, 1, 1])

    def test_linearity(self, rng):
        a = random_bits(rng, 20)
        b = random_bits(rng, 20)
        lhs = TEST_CODE.encode(np.bitwise_xor(a, b))
        rhs = np.bitwise_xor(TEST_CODE.encode(a), TEST_CODE.encode(b))
        np.testing.assert_array_equal(lhs, rhs)

    def test_zero_input_gives_zero_output(self):
        coded = TEST_CODE.encode(np.zeros(16, dtype=np.uint8))
        assert coded.sum() == 0

    def test_empty_block_rejected(self):
        with pytest.raises(InvalidParameterError):
            TEST_CODE.encode([])

    def test_generator_validation(self):
        with pytest.raises(InvalidParameterError):
            ConvolutionalCode(generators=(0o17,), constraint_length=3)
        with pytest.raises(InvalidParameterError):
            ConvolutionalCode(generators=(), constraint_length=3)
        with pytest.raises(InvalidParameterError):
            ConvolutionalCode(generators=(0o5,), constraint_length=1)


class TestViterbiDecoding:
    @pytest.mark.parametrize("code", [TEST_CODE, NASA_CODE], ids=["k3", "k7"])
    def test_noiseless_roundtrip(self, code, rng):
        for length in (1, 8, 57):
            bits = random_bits(rng, length)
            coded = code.encode(bits)
            np.testing.assert_array_equal(code.decode_hard(coded, length), bits)

    def test_corrects_scattered_errors_k7(self, rng):
        bits = random_bits(rng, 120)
        coded = NASA_CODE.encode(bits)
        corrupted = coded.copy()
        # d_free = 10 for (133, 171): 4 well-separated errors are correctable.
        for position in (5, 60, 130, 200):
            corrupted[position] ^= 1
        np.testing.assert_array_equal(NASA_CODE.decode_hard(corrupted, 120), bits)

    def test_corrects_two_adjacent_errors_k3(self, rng):
        bits = random_bits(rng, 40)
        coded = TEST_CODE.encode(bits)
        corrupted = coded.copy()
        corrupted[10] ^= 1
        corrupted[30] ^= 1
        np.testing.assert_array_equal(TEST_CODE.decode_hard(corrupted, 40), bits)

    def test_soft_beats_hard_at_moderate_noise(self):
        """Soft-decision Viterbi must not be worse than hard-decision."""
        rng = np.random.default_rng(99)
        code = TEST_CODE
        n_info, n_trials, sigma = 60, 60, 0.9
        hard_errors = soft_errors = 0
        for _ in range(n_trials):
            bits = random_bits(rng, n_info)
            coded = code.encode(bits).astype(float)
            tx = 1.0 - 2.0 * coded
            rx = tx + rng.normal(0.0, sigma, size=tx.shape)
            llrs = 2.0 * rx / sigma**2
            soft = code.decode(llrs, n_info)
            hard = code.decode_hard((rx < 0).astype(np.uint8), n_info)
            soft_errors += int(np.sum(soft != bits))
            hard_errors += int(np.sum(hard != bits))
        assert soft_errors <= hard_errors

    def test_llr_length_validated(self):
        with pytest.raises(InvalidParameterError):
            TEST_CODE.decode(np.zeros(10), 10)

    def test_decode_prefers_likely_path(self):
        # All-zero LLRs strongly favouring 0 decode to the all-zero word.
        n_info = 12
        llrs = np.full(TEST_CODE.n_coded_bits(n_info), 5.0)
        np.testing.assert_array_equal(
            TEST_CODE.decode(llrs, n_info), np.zeros(n_info, dtype=np.uint8)
        )


class TestCodeProperties:
    def test_rate(self):
        assert TEST_CODE.n_outputs == 2
        assert NASA_CODE.n_states == 64

    def test_rate_third_code(self, rng):
        code = ConvolutionalCode(generators=(0o5, 0o7, 0o7), constraint_length=3)
        bits = random_bits(rng, 30)
        coded = code.encode(bits)
        assert coded.size == (30 + 2) * 3
        np.testing.assert_array_equal(code.decode_hard(coded, 30), bits)

    def test_trellis_tables_cached(self):
        code = ConvolutionalCode(generators=(0o5, 0o7), constraint_length=3)
        first = code._trellis()
        second = code._trellis()
        assert first is second


class TestBatchedRows:
    """Batched encode/decode must equal the scalar paths bit for bit."""

    @pytest.mark.parametrize(
        "code", [TEST_CODE, NASA_CODE], ids=["test-code", "nasa-code"]
    )
    @pytest.mark.parametrize("n_info", [1, 5, 32, 144])
    def test_encode_rows_match_scalar(self, code, n_info, rng):
        rows = np.stack([random_bits(rng, n_info) for _ in range(7)])
        batch = code.encode_rows(rows)
        for index in range(rows.shape[0]):
            np.testing.assert_array_equal(batch[index], code.encode(rows[index]))

    @pytest.mark.parametrize(
        "code", [TEST_CODE, NASA_CODE], ids=["test-code", "nasa-code"]
    )
    @pytest.mark.parametrize("n_info", [1, 32, 144])
    def test_decode_rows_match_scalar(self, code, n_info, rng):
        llrs = rng.normal(0.0, 3.0, size=(7, code.n_coded_bits(n_info)))
        batch = code.decode_rows(llrs, n_info)
        for index in range(llrs.shape[0]):
            np.testing.assert_array_equal(
                batch[index], code.decode(llrs[index], n_info)
            )

    def test_rate_third_code_rows(self, rng):
        code = ConvolutionalCode(generators=(0o5, 0o7, 0o7), constraint_length=3)
        rows = np.stack([random_bits(rng, 20) for _ in range(5)])
        coded = code.encode_rows(rows).astype(float)
        decoded = code.decode_rows(1.0 - 2.0 * coded, 20)
        np.testing.assert_array_equal(decoded, rows)

    def test_decode_rows_shape_validated(self):
        with pytest.raises(InvalidParameterError):
            TEST_CODE.decode_rows(np.zeros((3, 10)), 10)
        with pytest.raises(InvalidParameterError):
            TEST_CODE.decode_rows(np.zeros(TEST_CODE.n_coded_bits(10)), 10)

    def test_encode_rows_empty_block_rejected(self):
        with pytest.raises(InvalidParameterError):
            TEST_CODE.encode_rows(np.zeros((3, 0), dtype=np.uint8))
