"""Unit tests for asymmetric-rate MABC (the group-L embedding)."""

import numpy as np
import pytest

from repro.channels.awgn import ComplexAwgn
from repro.channels.gains import LinkGains
from repro.channels.halfduplex import HalfDuplexMedium
from repro.exceptions import InvalidParameterError
from repro.simulation.asymmetric import run_mabc_asymmetric_round
from repro.simulation.bits import random_bits
from repro.simulation.convolutional import TEST_CODE
from repro.simulation.crc import CRC8, CRC16_CCITT
from repro.simulation.linkcodec import LinkCodec


@pytest.fixture
def codecs():
    long_codec = LinkCodec(payload_bits=48, code=TEST_CODE, crc=CRC8)
    short_codec = LinkCodec(payload_bits=16, code=TEST_CODE, crc=CRC8)
    return long_codec, short_codec


@pytest.fixture
def medium():
    # A clear gain gap between the two relay links so SIC has the SIR
    # margin it needs (the same requirement as the equal-length engine).
    return HalfDuplexMedium(
        gains=LinkGains.from_db(-3.0, 0.0, 10.0), noise=ComplexAwgn(1e-9)
    )


class TestCleanExchange:
    def test_both_directions_succeed(self, codecs, medium, rng):
        long_codec, short_codec = codecs
        wa = random_bits(rng, 48)
        wb = random_bits(rng, 16)
        result = run_mabc_asymmetric_round(
            medium, long_codec, short_codec, 10.0, wa, wb, rng
        )
        assert result.relay_ok
        assert result.success_a_to_b
        assert result.success_b_to_a
        assert result.bit_errors_a_to_b == 0
        assert result.bit_errors_b_to_a == 0

    def test_payload_sizes_reported(self, codecs, medium, rng):
        long_codec, short_codec = codecs
        result = run_mabc_asymmetric_round(
            medium,
            long_codec,
            short_codec,
            10.0,
            random_bits(rng, 48),
            random_bits(rng, 16),
            rng,
        )
        assert result.payload_bits_a == 48
        assert result.payload_bits_b == 16

    def test_symbols_sized_by_long_frame(self, codecs, medium, rng):
        long_codec, short_codec = codecs
        result = run_mabc_asymmetric_round(
            medium,
            long_codec,
            short_codec,
            10.0,
            random_bits(rng, 48),
            random_bits(rng, 16),
            rng,
        )
        assert result.n_symbols == 2 * long_codec.n_symbols

    def test_equal_sizes_degenerate_case(self, medium, rng):
        codec = LinkCodec(payload_bits=32, code=TEST_CODE, crc=CRC8)
        result = run_mabc_asymmetric_round(
            medium, codec, codec, 10.0, random_bits(rng, 32), random_bits(rng, 32), rng
        )
        assert result.success_a_to_b and result.success_b_to_a


class TestThroughputAdvantage:
    def test_asymmetric_beats_padding_to_equal(self, codecs, medium, rng):
        """Carrying 48+16 bits in 2 long frames beats padding b to 48 bits
        in terms of *useful* bits only if the asymmetric path works — the
        point of the group-L embedding; verify the exchange is clean and
        accounts the true payload sizes."""
        long_codec, short_codec = codecs
        result = run_mabc_asymmetric_round(
            medium,
            long_codec,
            short_codec,
            10.0,
            random_bits(rng, 48),
            random_bits(rng, 16),
            rng,
        )
        delivered = result.payload_bits_a + result.payload_bits_b
        assert result.success_a_to_b and result.success_b_to_a
        assert delivered == 64


class TestValidation:
    def test_wrong_payload_sizes_rejected(self, codecs, medium, rng):
        long_codec, short_codec = codecs
        with pytest.raises(InvalidParameterError):
            run_mabc_asymmetric_round(
                medium,
                long_codec,
                short_codec,
                10.0,
                random_bits(rng, 32),
                random_bits(rng, 16),
                rng,
            )
        with pytest.raises(InvalidParameterError):
            run_mabc_asymmetric_round(
                medium,
                long_codec,
                short_codec,
                10.0,
                random_bits(rng, 48),
                random_bits(rng, 8),
                rng,
            )

    def test_swapped_codecs_rejected(self, codecs, medium, rng):
        long_codec, short_codec = codecs
        with pytest.raises(InvalidParameterError):
            run_mabc_asymmetric_round(
                medium,
                short_codec,
                long_codec,
                10.0,
                random_bits(rng, 16),
                random_bits(rng, 48),
                rng,
            )

    def test_mismatched_crc_rejected(self, medium, rng):
        long_codec = LinkCodec(payload_bits=48, code=TEST_CODE, crc=CRC16_CCITT)
        short_codec = LinkCodec(payload_bits=16, code=TEST_CODE, crc=CRC8)
        with pytest.raises(InvalidParameterError):
            run_mabc_asymmetric_round(
                medium,
                long_codec,
                short_codec,
                10.0,
                random_bits(rng, 48),
                random_bits(rng, 16),
                rng,
            )

    def test_nonpositive_power_rejected(self, codecs, medium, rng):
        long_codec, short_codec = codecs
        with pytest.raises(InvalidParameterError):
            run_mabc_asymmetric_round(
                medium,
                long_codec,
                short_codec,
                0.0,
                random_bits(rng, 48),
                random_bits(rng, 16),
                rng,
            )
