"""Unit tests for the protocol execution engine."""

import numpy as np
import pytest

from repro.channels.awgn import ComplexAwgn
from repro.channels.gains import LinkGains
from repro.channels.halfduplex import HalfDuplexMedium
from repro.core.protocols import Protocol
from repro.exceptions import InvalidParameterError
from repro.simulation.bits import random_bits
from repro.simulation.convolutional import TEST_CODE
from repro.simulation.crc import CRC8
from repro.simulation.engine import ProtocolEngine
from repro.simulation.linkcodec import LinkCodec


@pytest.fixture
def codec():
    return LinkCodec(payload_bits=32, code=TEST_CODE, crc=CRC8)


def make_engine(codec, *, power=10.0, noise_power=1e-6, gains=None) -> ProtocolEngine:
    gains = gains or LinkGains.from_db(-3.0, 3.0, 6.0)
    medium = HalfDuplexMedium(gains=gains, noise=ComplexAwgn(noise_power))
    return ProtocolEngine(medium=medium, codec=codec, power=power)


class TestCleanChannelRounds:
    """At essentially zero noise every protocol must deliver both payloads."""

    @pytest.mark.parametrize(
        "protocol", list(Protocol), ids=[p.value for p in Protocol]
    )
    def test_round_succeeds(self, protocol, codec, rng):
        engine = make_engine(codec)
        wa, wb = random_bits(rng, 32), random_bits(rng, 32)
        result = engine.run_round(protocol, wa, wb, rng)
        assert result.success_a_to_b
        assert result.success_b_to_a
        assert result.bit_errors_a_to_b == 0
        assert result.bit_errors_b_to_a == 0

    def test_relay_ok_flag(self, codec, rng):
        engine = make_engine(codec)
        wa, wb = random_bits(rng, 32), random_bits(rng, 32)
        assert engine.run_mabc_round(wa, wb, rng).relay_ok
        assert engine.run_tdbc_round(wa, wb, rng).relay_ok
        assert engine.run_hbc_round(wa, wb, rng).relay_ok
        assert engine.run_dt_round(wa, wb, rng).relay_ok is None


class TestSymbolAccounting:
    def test_dt_uses_two_frames(self, codec, rng):
        engine = make_engine(codec)
        result = engine.run_dt_round(random_bits(rng, 32), random_bits(rng, 32), rng)
        assert result.n_symbols == 2 * codec.n_symbols

    def test_mabc_uses_two_frames(self, codec, rng):
        engine = make_engine(codec)
        result = engine.run_mabc_round(random_bits(rng, 32), random_bits(rng, 32), rng)
        assert result.n_symbols == 2 * codec.n_symbols

    def test_tdbc_uses_three_frames(self, codec, rng):
        engine = make_engine(codec)
        result = engine.run_tdbc_round(random_bits(rng, 32), random_bits(rng, 32), rng)
        assert result.n_symbols == 3 * codec.n_symbols

    def test_hbc_uses_five_half_frames(self, codec, rng):
        engine = make_engine(codec)
        half = engine._half_codec()
        result = engine.run_hbc_round(random_bits(rng, 32), random_bits(rng, 32), rng)
        assert result.n_symbols == 5 * half.n_symbols

    def test_mabc_beats_tdbc_on_symbols(self, codec, rng):
        # Network coding pays off: 2 frames instead of 3 for the same
        # payloads -- the core efficiency claim of coded bidirectional
        # cooperation over naive four-phase relaying.
        engine = make_engine(codec)
        wa, wb = random_bits(rng, 32), random_bits(rng, 32)
        mabc = engine.run_mabc_round(wa, wb, rng)
        tdbc = engine.run_tdbc_round(wa, wb, rng)
        assert mabc.n_symbols < tdbc.n_symbols


class TestDegradedChannels:
    def test_weak_direct_link_breaks_dt_not_mabc(self, codec):
        # Direct link at -30 dB is useless; relay links are strong.
        gains = LinkGains.from_db(-30.0, 8.0, 10.0)
        engine = make_engine(codec, gains=gains, noise_power=1.0, power=10.0)
        rng = np.random.default_rng(5)
        dt_fail = mabc_ok = 0
        for _ in range(10):
            wa, wb = random_bits(rng, 32), random_bits(rng, 32)
            dt = engine.run_dt_round(wa, wb, rng)
            mabc = engine.run_mabc_round(wa, wb, rng)
            dt_fail += int(not dt.success_a_to_b) + int(not dt.success_b_to_a)
            mabc_ok += int(mabc.success_a_to_b) + int(mabc.success_b_to_a)
        assert dt_fail >= 15  # DT almost always fails
        assert mabc_ok >= 15  # the relay path carries the traffic

    def test_failures_are_flagged_not_silent(self, codec):
        gains = LinkGains.from_db(-30.0, -30.0, -30.0)
        engine = make_engine(codec, gains=gains, noise_power=1.0, power=1.0)
        rng = np.random.default_rng(6)
        wa, wb = random_bits(rng, 32), random_bits(rng, 32)
        result = engine.run_tdbc_round(wa, wb, rng)
        assert not result.success_a_to_b
        assert not result.success_b_to_a


class TestValidation:
    def test_wrong_payload_size_rejected(self, codec, rng):
        engine = make_engine(codec)
        with pytest.raises(InvalidParameterError):
            engine.run_dt_round(random_bits(rng, 16), random_bits(rng, 32), rng)

    def test_nonpositive_power_rejected(self, codec):
        medium = HalfDuplexMedium(gains=LinkGains(1, 1, 1))
        with pytest.raises(InvalidParameterError):
            ProtocolEngine(medium=medium, codec=codec, power=0.0)

    def test_hbc_odd_payload_rejected(self, rng):
        odd_codec = LinkCodec(payload_bits=31, code=TEST_CODE, crc=CRC8)
        engine = make_engine(odd_codec)
        with pytest.raises(InvalidParameterError):
            engine.run_hbc_round(random_bits(rng, 31), random_bits(rng, 31), rng)

    def test_unknown_protocol_rejected(self, codec, rng):
        engine = make_engine(codec)
        with pytest.raises(InvalidParameterError):
            engine.run_round("mabc", random_bits(rng, 32), random_bits(rng, 32), rng)
