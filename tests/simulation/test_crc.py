"""Unit tests for repro.simulation.crc."""

import numpy as np
import pytest

from repro.exceptions import InvalidParameterError
from repro.simulation.bits import random_bits, xor_bits
from repro.simulation.crc import CRC8, CRC16_CCITT, CRC32, CrcCode


@pytest.fixture(params=[CRC8, CRC16_CCITT, CRC32],
                ids=["crc8", "crc16", "crc32"])
def crc(request):
    return request.param


class TestChecksumMechanics:
    def test_checksum_width(self, crc, rng):
        payload = random_bits(rng, 40)
        assert crc.checksum(payload).shape == (crc.n_bits,)

    def test_append_then_check(self, crc, rng):
        frame = crc.append(random_bits(rng, 64))
        assert crc.check(frame)

    def test_single_bit_flip_detected(self, crc, rng):
        frame = crc.append(random_bits(rng, 64))
        for position in (0, 17, frame.size - 1):
            corrupted = frame.copy()
            corrupted[position] ^= 1
            assert not crc.check(corrupted)

    def test_burst_error_detected(self, crc, rng):
        frame = crc.append(random_bits(rng, 64))
        corrupted = frame.copy()
        corrupted[10:10 + crc.n_bits // 2] ^= 1
        assert not crc.check(corrupted)

    def test_strip_returns_payload(self, crc, rng):
        payload = random_bits(rng, 32)
        np.testing.assert_array_equal(crc.strip(crc.append(payload)), payload)

    def test_short_frame_fails_check(self, crc):
        assert not crc.check(np.zeros(crc.n_bits - 1, dtype=np.uint8))

    def test_strip_short_frame_rejected(self, crc):
        with pytest.raises(InvalidParameterError):
            crc.strip(np.zeros(crc.n_bits - 1, dtype=np.uint8))


class TestLinearity:
    """Zero-init CRCs are GF(2)-linear — the property the XOR relay relies on."""

    def test_checksum_of_xor_is_xor_of_checksums(self, crc, rng):
        for _ in range(5):
            a = random_bits(rng, 48)
            b = random_bits(rng, 48)
            lhs = crc.checksum(xor_bits(a, b))
            rhs = xor_bits(crc.checksum(a), crc.checksum(b))
            np.testing.assert_array_equal(lhs, rhs)

    def test_xor_of_valid_frames_is_valid(self, crc, rng):
        frame_a = crc.append(random_bits(rng, 48))
        frame_b = crc.append(random_bits(rng, 48))
        assert crc.check(xor_bits(frame_a, frame_b))

    def test_zero_payload_has_zero_checksum(self, crc):
        assert crc.checksum(np.zeros(40, dtype=np.uint8)).sum() == 0


class TestValidation:
    def test_bad_polynomial_rejected(self):
        with pytest.raises(InvalidParameterError):
            CrcCode(polynomial=0, n_bits=8)
        with pytest.raises(InvalidParameterError):
            CrcCode(polynomial=1 << 8, n_bits=8)

    def test_bad_width_rejected(self):
        with pytest.raises(InvalidParameterError):
            CrcCode(polynomial=1, n_bits=0)

    def test_known_crc16_vector(self):
        # CRC-16-CCITT with zero init of the 8-bit message 0x31 ('1').
        # Independently computed with a reference bitwise implementation.
        bits = [0, 0, 1, 1, 0, 0, 0, 1]
        checksum = CRC16_CCITT.checksum(bits)
        value = int("".join(map(str, checksum)), 2)
        assert value == 0x2672

    def test_crc16_check_string(self):
        # The classic CRC-16/XMODEM check string "123456789" -> 0x31C3.
        bits = []
        for ch in b"123456789":
            bits.extend((ch >> (7 - i)) & 1 for i in range(8))
        checksum = CRC16_CCITT.checksum(bits)
        assert int("".join(map(str, checksum)), 2) == 0x31C3
