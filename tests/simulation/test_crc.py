"""Unit tests for repro.simulation.crc."""

import numpy as np
import pytest

from repro.exceptions import InvalidParameterError
from repro.simulation.bits import random_bits, xor_bits
from repro.simulation.crc import CRC8, CRC16_CCITT, CRC32, CrcCode


@pytest.fixture(params=[CRC8, CRC16_CCITT, CRC32], ids=["crc8", "crc16", "crc32"])
def crc(request):
    return request.param


class TestChecksumMechanics:
    def test_checksum_width(self, crc, rng):
        payload = random_bits(rng, 40)
        assert crc.checksum(payload).shape == (crc.n_bits,)

    def test_append_then_check(self, crc, rng):
        frame = crc.append(random_bits(rng, 64))
        assert crc.check(frame)

    def test_single_bit_flip_detected(self, crc, rng):
        frame = crc.append(random_bits(rng, 64))
        for position in (0, 17, frame.size - 1):
            corrupted = frame.copy()
            corrupted[position] ^= 1
            assert not crc.check(corrupted)

    def test_burst_error_detected(self, crc, rng):
        frame = crc.append(random_bits(rng, 64))
        corrupted = frame.copy()
        corrupted[10:10 + crc.n_bits // 2] ^= 1
        assert not crc.check(corrupted)

    def test_strip_returns_payload(self, crc, rng):
        payload = random_bits(rng, 32)
        np.testing.assert_array_equal(crc.strip(crc.append(payload)), payload)

    def test_short_frame_fails_check(self, crc):
        assert not crc.check(np.zeros(crc.n_bits - 1, dtype=np.uint8))

    def test_strip_short_frame_rejected(self, crc):
        with pytest.raises(InvalidParameterError):
            crc.strip(np.zeros(crc.n_bits - 1, dtype=np.uint8))


class TestLinearity:
    """Zero-init CRCs are GF(2)-linear — the property the XOR relay relies on."""

    def test_checksum_of_xor_is_xor_of_checksums(self, crc, rng):
        for _ in range(5):
            a = random_bits(rng, 48)
            b = random_bits(rng, 48)
            lhs = crc.checksum(xor_bits(a, b))
            rhs = xor_bits(crc.checksum(a), crc.checksum(b))
            np.testing.assert_array_equal(lhs, rhs)

    def test_xor_of_valid_frames_is_valid(self, crc, rng):
        frame_a = crc.append(random_bits(rng, 48))
        frame_b = crc.append(random_bits(rng, 48))
        assert crc.check(xor_bits(frame_a, frame_b))

    def test_zero_payload_has_zero_checksum(self, crc):
        assert crc.checksum(np.zeros(40, dtype=np.uint8)).sum() == 0


class TestBatchedChecksums:
    """The table-driven batch path must equal the scalar path bit for bit."""

    @pytest.mark.parametrize("length", [1, 7, 8, 9, 40, 41, 144])
    def test_checksum_rows_match_scalar(self, crc, rng, length):
        rows = np.stack([random_bits(rng, length) for _ in range(9)])
        batch = crc.checksum_rows(rows)
        for index in range(rows.shape[0]):
            np.testing.assert_array_equal(batch[index], crc.checksum(rows[index]))

    def test_append_and_check_rows(self, crc, rng):
        rows = np.stack([random_bits(rng, 48) for _ in range(6)])
        frames = crc.append_rows(rows)
        assert crc.check_rows(frames).all()
        corrupted = frames.copy()
        corrupted[2, 5] ^= 1
        verdicts = crc.check_rows(corrupted)
        assert not verdicts[2]
        assert verdicts.sum() == 5

    def test_short_frames_fail_check_rows(self, crc):
        rows = np.zeros((3, crc.n_bits - 1), dtype=np.uint8)
        assert not crc.check_rows(rows).any()

    def test_narrow_crc_without_byte_table(self, rng):
        # Widths below one byte exercise the pure bitwise update.
        narrow = CrcCode(polynomial=0x3, n_bits=3)
        rows = np.stack([random_bits(rng, 20) for _ in range(5)])
        batch = narrow.checksum_rows(rows)
        for index in range(rows.shape[0]):
            np.testing.assert_array_equal(batch[index], narrow.checksum(rows[index]))


class TestGoldenChecksums:
    """Pinned outputs of the historical bit-at-a-time implementation.

    The table-driven rewrite must reproduce these exactly; 0xF4 and
    0x31C3 are also the published zero-init check values of CRC-8 and
    CRC-16/XMODEM for ASCII "123456789".
    """

    @staticmethod
    def _ascii_bits(message: bytes) -> list:
        bits = []
        for ch in message:
            bits.extend((ch >> (7 - i)) & 1 for i in range(8))
        return bits

    @staticmethod
    def _value(checksum: np.ndarray) -> int:
        return int("".join(map(str, checksum)), 2)

    @pytest.mark.parametrize(
        ("code", "expected"),
        [(CRC8, 0xF4), (CRC16_CCITT, 0x31C3), (CRC32, 0x89A1897F)],
        ids=["crc8", "crc16", "crc32"],
    )
    def test_check_string(self, code, expected):
        bits = self._ascii_bits(b"123456789")
        assert self._value(code.checksum(bits)) == expected

    @pytest.mark.parametrize(
        ("code", "expected"),
        [(CRC8, 0x53), (CRC16_CCITT, 0x594E), (CRC32, 0x77B21CC4)],
        ids=["crc8", "crc16", "crc32"],
    )
    def test_byte_aligned_golden(self, code, expected):
        # 40 bits drawn from default_rng(2024): the byte-table fast path
        # alone, on a non-ASCII payload.
        bits = np.random.default_rng(2024).integers(0, 2, size=40)
        assert self._value(code.checksum(bits)) == expected

    @pytest.mark.parametrize(
        ("code", "expected"),
        [(CRC8, 0xA6), (CRC16_CCITT, 0xB29C), (CRC32, 0xEF643988)],
        ids=["crc8", "crc16", "crc32"],
    )
    def test_trailing_bits_golden(self, code, expected):
        # 41 bits: five table-driven bytes plus one bitwise trailing bit.
        bits = np.random.default_rng(2024).integers(0, 2, size=41)
        assert self._value(code.checksum(bits)) == expected


class TestValidation:
    def test_bad_polynomial_rejected(self):
        with pytest.raises(InvalidParameterError):
            CrcCode(polynomial=0, n_bits=8)
        with pytest.raises(InvalidParameterError):
            CrcCode(polynomial=1 << 8, n_bits=8)

    def test_bad_width_rejected(self):
        with pytest.raises(InvalidParameterError):
            CrcCode(polynomial=1, n_bits=0)

    def test_known_crc16_vector(self):
        # CRC-16-CCITT with zero init of the 8-bit message 0x31 ('1').
        # Independently computed with a reference bitwise implementation.
        bits = [0, 0, 1, 1, 0, 0, 0, 1]
        checksum = CRC16_CCITT.checksum(bits)
        value = int("".join(map(str, checksum)), 2)
        assert value == 0x2672

    def test_crc16_check_string(self):
        # The classic CRC-16/XMODEM check string "123456789" -> 0x31C3.
        bits = []
        for ch in b"123456789":
            bits.extend((ch >> (7 - i)) & 1 for i in range(8))
        checksum = CRC16_CCITT.checksum(bits)
        assert int("".join(map(str, checksum)), 2) == 0x31C3


class TestWideRegisters:
    """Widths past the 64-bit lane must still work (Python-int fallback)."""

    #: CRC-64/ECMA-182 generator polynomial (zero-init here, like the rest).
    CRC64 = CrcCode(polynomial=0x42F0E1EBA9EA3693, n_bits=64)

    def _reference_checksum(self, crc, bits):
        register = 0
        top = 1 << (crc.n_bits - 1)
        mask = (1 << crc.n_bits) - 1
        for bit in bits:
            feedback = ((register & top) != 0) ^ bool(bit)
            register = (register << 1) & mask
            if feedback:
                register ^= crc.polynomial
        return np.array(
            [(register >> (crc.n_bits - 1 - i)) & 1 for i in range(crc.n_bits)],
            dtype=np.uint8,
        )

    def test_matches_bitwise_reference(self, rng):
        for length in (1, 40, 71):
            bits = random_bits(rng, length)
            np.testing.assert_array_equal(
                self.CRC64.checksum(bits), self._reference_checksum(self.CRC64, bits)
            )

    def test_rows_append_check_and_linearity(self, rng):
        rows = np.stack([random_bits(rng, 80) for _ in range(4)])
        frames = self.CRC64.append_rows(rows)
        assert self.CRC64.check_rows(frames).all()
        combined = xor_bits(frames[0], frames[1])
        assert self.CRC64.check(combined)
