"""Unit tests for epsilon-outage capacity."""

import numpy as np
import pytest

from repro.core.protocols import Protocol
from repro.exceptions import InvalidParameterError
from repro.simulation.outage_capacity import (
    compute_outage_curve,
    outage_sum_rate,
)


@pytest.fixture(scope="module")
def curve(paper_gains=None):
    from repro.channels.gains import LinkGains

    gains = LinkGains.from_db(-7.0, 0.0, 5.0)
    return compute_outage_curve(
        Protocol.MABC, gains, power=10.0, n_draws=80, rng=np.random.default_rng(11)
    )


class TestOutageCurve:
    def test_samples_sorted(self, curve):
        assert np.all(np.diff(curve.samples) >= 0)

    def test_rate_monotone_in_epsilon(self, curve):
        rates = [curve.rate_at_outage(eps) for eps in (0.05, 0.25, 0.5, 0.9)]
        assert all(r1 <= r2 + 1e-12 for r1, r2 in zip(rates, rates[1:]))

    def test_outage_monotone_in_target(self, curve):
        outages = [curve.outage_at_rate(t) for t in (0.1, 1.0, 3.0, 10.0)]
        assert all(o1 <= o2 + 1e-12 for o1, o2 in zip(outages, outages[1:]))

    def test_round_trip_consistency(self, curve):
        """outage(rate_at_outage(eps)) <= eps up to the empirical grid."""
        for eps in (0.1, 0.3, 0.7):
            rate = curve.rate_at_outage(eps)
            assert curve.outage_at_rate(rate) <= eps + 1.0 / curve.samples.size

    def test_extreme_targets(self, curve):
        assert curve.outage_at_rate(0.0) == 0.0
        assert curve.outage_at_rate(1e9) == 1.0

    def test_domain_validation(self, curve):
        with pytest.raises(InvalidParameterError):
            curve.rate_at_outage(1.5)
        with pytest.raises(InvalidParameterError):
            curve.outage_at_rate(-1.0)


class TestOutageSumRate:
    def test_matches_curve_quantile(self, paper_gains):
        value = outage_sum_rate(
            Protocol.MABC,
            paper_gains,
            power=10.0,
            epsilon=0.1,
            n_draws=40,
            rng=np.random.default_rng(12),
        )
        curve = compute_outage_curve(
            Protocol.MABC,
            paper_gains,
            power=10.0,
            n_draws=40,
            rng=np.random.default_rng(12),
        )
        assert value == pytest.approx(curve.rate_at_outage(0.1))

    def test_hbc_outage_dominates(self, paper_gains):
        """Pointwise HBC >= MABC implies quantile dominance (paired RNG)."""
        hbc = outage_sum_rate(
            Protocol.HBC,
            paper_gains,
            power=10.0,
            epsilon=0.1,
            n_draws=40,
            rng=np.random.default_rng(13),
        )
        mabc = outage_sum_rate(
            Protocol.MABC,
            paper_gains,
            power=10.0,
            epsilon=0.1,
            n_draws=40,
            rng=np.random.default_rng(13),
        )
        assert hbc >= mabc - 1e-9

    def test_draws_validated(self, paper_gains, rng):
        with pytest.raises(InvalidParameterError):
            compute_outage_curve(Protocol.DT, paper_gains, 1.0, 0, rng)

    def test_campaign_path_matches_legacy_lp_loop(self, paper_gains):
        """Campaign executor and per-draw LP loop agree draw for draw."""
        fast = compute_outage_curve(
            Protocol.HBC,
            paper_gains,
            power=10.0,
            n_draws=20,
            rng=np.random.default_rng(21),
        )
        legacy = compute_outage_curve(
            Protocol.HBC,
            paper_gains,
            power=10.0,
            n_draws=20,
            rng=np.random.default_rng(21),
            executor=None,
        )
        np.testing.assert_allclose(fast.samples, legacy.samples, atol=1e-7)
