"""Unit tests for repro.simulation.relay (SIC + XOR forwarding)."""

import numpy as np
import pytest

from repro.exceptions import InvalidParameterError
from repro.simulation.bits import random_bits, xor_bits
from repro.simulation.convolutional import TEST_CODE
from repro.simulation.crc import CRC8
from repro.simulation.linkcodec import LinkCodec
from repro.simulation.relay import decode_frame, sic_decode_mac, xor_forward


@pytest.fixture
def codec():
    return LinkCodec(payload_bits=32, code=TEST_CODE, crc=CRC8)


def mac_received(codec, rng, *, wa, wb, gain_a, gain_b, amplitude, noise_std):
    xa = codec.encode(wa)
    xb = codec.encode(wb)
    noise = (
        noise_std
        * (rng.normal(size=codec.n_symbols) + 1j * rng.normal(size=codec.n_symbols))
        / np.sqrt(2)
    )
    return amplitude * gain_a * xa + amplitude * gain_b * xb + noise


class TestDecodeFrame:
    def test_clean_decode(self, codec, rng):
        payload = random_bits(rng, 32)
        received = 2.0 * 0.8 * codec.encode(payload)
        frame = decode_frame(codec, received, 0.8 + 0j, 1e-9, 2.0)
        assert frame.crc_ok
        np.testing.assert_array_equal(frame.payload, payload)


class TestSicDecoding:
    def test_recovers_both_with_gain_gap(self, codec, rng):
        wa, wb = random_bits(rng, 32), random_bits(rng, 32)
        received = mac_received(
            codec,
            rng,
            wa=wa,
            wb=wb,
            gain_a=2.0,
            gain_b=0.7,
            amplitude=3.0,
            noise_std=0.1,
        )
        result = sic_decode_mac(
            codec, received, gain_a=2.0, gain_b=0.7, noise_power=0.01, amplitude=3.0
        )
        assert result.decoded_first == "a"
        assert result.both_ok
        np.testing.assert_array_equal(result.frame_a.payload, wa)
        np.testing.assert_array_equal(result.frame_b.payload, wb)

    def test_order_follows_stronger_gain(self, codec, rng):
        wa, wb = random_bits(rng, 32), random_bits(rng, 32)
        received = mac_received(
            codec,
            rng,
            wa=wa,
            wb=wb,
            gain_a=0.7,
            gain_b=2.0,
            amplitude=3.0,
            noise_std=0.1,
        )
        result = sic_decode_mac(
            codec, received, gain_a=0.7, gain_b=2.0, noise_power=0.01, amplitude=3.0
        )
        assert result.decoded_first == "b"
        assert result.both_ok
        np.testing.assert_array_equal(result.frame_a.payload, wa)
        np.testing.assert_array_equal(result.frame_b.payload, wb)

    def test_equal_gains_heavy_interference_may_fail(self, codec, rng):
        # With equal gains stage 1 sees SIR = 0 dB; failures must be
        # *flagged* (crc_ok False), never silent.
        wa, wb = random_bits(rng, 32), random_bits(rng, 32)
        received = mac_received(
            codec,
            rng,
            wa=wa,
            wb=wb,
            gain_a=1.0,
            gain_b=1.0,
            amplitude=1.0,
            noise_std=1.0,
        )
        result = sic_decode_mac(
            codec, received, gain_a=1.0, gain_b=1.0, noise_power=1.0, amplitude=1.0
        )
        if not result.both_ok:
            assert not (result.frame_a.crc_ok and result.frame_b.crc_ok)

    def test_parameter_validation(self, codec):
        y = np.zeros(codec.n_symbols, dtype=complex)
        with pytest.raises(InvalidParameterError):
            sic_decode_mac(
                codec, y, gain_a=1.0, gain_b=1.0, noise_power=0.0, amplitude=1.0
            )
        with pytest.raises(InvalidParameterError):
            sic_decode_mac(
                codec, y, gain_a=1.0, gain_b=1.0, noise_power=1.0, amplitude=0.0
            )


class TestXorForward:
    def test_combines_frames(self, codec, rng):
        frame_a = codec.crc.append(random_bits(rng, 32))
        frame_b = codec.crc.append(random_bits(rng, 32))
        combined = xor_forward(frame_a, frame_b)
        np.testing.assert_array_equal(combined, xor_bits(frame_a, frame_b))

    def test_combined_frame_passes_crc(self, codec, rng):
        frame_a = codec.crc.append(random_bits(rng, 32))
        frame_b = codec.crc.append(random_bits(rng, 32))
        assert codec.crc.check(xor_forward(frame_a, frame_b))

    def test_length_mismatch_rejected(self, codec, rng):
        with pytest.raises(InvalidParameterError):
            xor_forward(random_bits(rng, 10), random_bits(rng, 12))
