"""Unit tests for the Theorem-2 random-coding construction."""

import numpy as np
import pytest

from repro.channels.binary_relay import BinaryRelayChannel
from repro.exceptions import InvalidParameterError
from repro.simulation.random_coding import (
    MabcRandomCodingReport,
    RandomBinaryCodebook,
    mabc_rate_pair_feasible,
    simulate_mabc_random_coding,
)


@pytest.fixture
def clean_channel():
    return BinaryRelayChannel(pab=0.4, par=0.02, pbr=0.02)


class TestCodebook:
    def test_dimensions(self, rng):
        book = RandomBinaryCodebook(8, 20, rng)
        assert book.n_messages == 8
        assert book.block_length == 20
        assert book.codewords.shape == (8, 20)

    def test_ml_decode_exact_codeword(self, rng):
        book = RandomBinaryCodebook(16, 48, rng)
        for message in (0, 7, 15):
            assert book.ml_decode(book.codeword(message)) == message

    def test_ml_decode_corrupted_codeword(self, rng):
        book = RandomBinaryCodebook(4, 64, rng)
        noisy = book.codeword(2).copy()
        noisy[:3] ^= 1
        assert book.ml_decode(noisy) == 2

    def test_validation(self, rng):
        with pytest.raises(InvalidParameterError):
            RandomBinaryCodebook(0, 8, rng)
        with pytest.raises(InvalidParameterError):
            RandomBinaryCodebook(4, 0, rng)
        book = RandomBinaryCodebook(4, 8, rng)
        with pytest.raises(InvalidParameterError):
            book.codeword(4)


class TestFeasibility:
    def test_deep_inside_is_feasible(self, clean_channel):
        assert mabc_rate_pair_feasible(
            clean_channel, n_mac=64, n_broadcast=64, bits_a=4, bits_b=4
        )

    def test_sum_constraint_binds(self, clean_channel):
        # XOR MAC: bits_a + bits_b <= n_mac * (1 - h(p_mac)).
        mac_cap = 64 * (1 - __import__(
            "repro.information.functions", fromlist=["binary_entropy"]
        ).binary_entropy(clean_channel.p_mac))
        assert not mabc_rate_pair_feasible(
            clean_channel,
            n_mac=64,
            n_broadcast=64,
            bits_a=int(mac_cap),
            bits_b=int(mac_cap),
        )

    def test_broadcast_constraint_binds(self, clean_channel):
        assert not mabc_rate_pair_feasible(
            clean_channel, n_mac=1000, n_broadcast=4, bits_a=20, bits_b=2
        )

    def test_negative_inputs_rejected(self, clean_channel):
        with pytest.raises(InvalidParameterError):
            mabc_rate_pair_feasible(clean_channel, -1, 8, 2, 2)


class TestSimulation:
    def test_inside_bound_decodes_reliably(self, clean_channel):
        report = simulate_mabc_random_coding(
            clean_channel,
            n_mac=64,
            n_broadcast=64,
            bits_a=4,
            bits_b=4,
            n_trials=25,
            rng=np.random.default_rng(3),
        )
        assert mabc_rate_pair_feasible(clean_channel, 64, 64, 4, 4)
        assert report.relay_error_rate <= 0.1
        assert report.max_error_rate <= 0.1

    def test_outside_bound_fails(self):
        # A very noisy MAC (capacity ~0.066 bits/use) cannot carry 10 bits
        # in 48 uses: the relay pair decoding must collapse.
        noisy = BinaryRelayChannel(pab=0.4, par=0.02, pbr=0.02, p_mac=0.35)
        report = simulate_mabc_random_coding(
            noisy,
            n_mac=48,
            n_broadcast=48,
            bits_a=5,
            bits_b=5,
            n_trials=25,
            rng=np.random.default_rng(4),
        )
        assert not mabc_rate_pair_feasible(noisy, 48, 48, 5, 5)
        assert report.relay_error_rate >= 0.5

    def test_noiseless_channel_never_errs(self):
        channel = BinaryRelayChannel(pab=0.0, par=0.0, pbr=0.0)
        report = simulate_mabc_random_coding(
            channel,
            n_mac=24,
            n_broadcast=24,
            bits_a=3,
            bits_b=3,
            n_trials=20,
            rng=np.random.default_rng(5),
        )
        assert report.relay_error_rate == 0.0
        assert report.max_error_rate == 0.0

    def test_asymmetric_message_sizes(self, clean_channel):
        report = simulate_mabc_random_coding(
            clean_channel,
            n_mac=64,
            n_broadcast=64,
            bits_a=5,
            bits_b=2,
            n_trials=15,
            rng=np.random.default_rng(6),
        )
        assert isinstance(report, MabcRandomCodingReport)
        assert report.max_error_rate <= 0.2

    def test_validation(self, clean_channel, rng):
        with pytest.raises(InvalidParameterError):
            simulate_mabc_random_coding(
                clean_channel,
                n_mac=8,
                n_broadcast=8,
                bits_a=1,
                bits_b=1,
                n_trials=0,
                rng=rng,
            )
        with pytest.raises(InvalidParameterError):
            simulate_mabc_random_coding(
                clean_channel,
                n_mac=8,
                n_broadcast=8,
                bits_a=0,
                bits_b=1,
                n_trials=1,
                rng=rng,
            )


class TestResourceGuard:
    def test_oversized_pair_decoder_rejected(self, clean_channel, rng):
        with pytest.raises(InvalidParameterError):
            simulate_mabc_random_coding(
                clean_channel,
                n_mac=64,
                n_broadcast=64,
                bits_a=14,
                bits_b=14,
                n_trials=1,
                rng=rng,
            )
