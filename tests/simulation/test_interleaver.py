"""Unit tests for repro.simulation.interleaver."""

import numpy as np
import pytest

from repro.exceptions import InvalidParameterError
from repro.simulation.interleaver import (
    BlockInterleaver,
    RandomInterleaver,
    identity_permutation,
)


class TestBlockInterleaver:
    def test_full_matrix_roundtrip(self, rng):
        interleaver = BlockInterleaver(rows=4, cols=8)
        data = rng.normal(size=32)
        out = interleaver.deinterleave(interleaver.interleave(data))
        np.testing.assert_array_equal(out, data)

    def test_partial_length_roundtrip(self, rng):
        interleaver = BlockInterleaver(rows=4, cols=8)
        data = rng.normal(size=27)
        out = interleaver.deinterleave(interleaver.interleave(data))
        np.testing.assert_array_equal(out, data)

    def test_column_read_order(self):
        interleaver = BlockInterleaver(rows=2, cols=3)
        out = interleaver.interleave(np.arange(6))
        np.testing.assert_array_equal(out, [0, 3, 1, 4, 2, 5])

    def test_disperses_bursts(self):
        interleaver = BlockInterleaver(rows=8, cols=8)
        burst = np.zeros(64)
        burst[:8] = 1.0  # 8 adjacent errors
        spread = interleaver.deinterleave(burst)
        positions = np.flatnonzero(spread)
        assert np.min(np.diff(positions)) >= 8  # at least a row apart

    def test_capacity_enforced(self):
        with pytest.raises(InvalidParameterError):
            BlockInterleaver(rows=2, cols=2).permutation(5)

    def test_invalid_shape_rejected(self):
        with pytest.raises(InvalidParameterError):
            BlockInterleaver(rows=0, cols=3)


class TestRandomInterleaver:
    def test_roundtrip(self, rng):
        interleaver = RandomInterleaver(seed=7)
        data = rng.normal(size=100)
        out = interleaver.deinterleave(interleaver.interleave(data))
        np.testing.assert_array_equal(out, data)

    def test_deterministic_per_seed(self):
        a = RandomInterleaver(seed=3).permutation(50)
        b = RandomInterleaver(seed=3).permutation(50)
        np.testing.assert_array_equal(a, b)

    def test_different_seeds_differ(self):
        a = RandomInterleaver(seed=3).permutation(50)
        b = RandomInterleaver(seed=4).permutation(50)
        assert not np.array_equal(a, b)

    def test_is_permutation(self):
        perm = RandomInterleaver(seed=0).permutation(64)
        assert sorted(perm.tolist()) == list(range(64))

    def test_negative_length_rejected(self):
        with pytest.raises(InvalidParameterError):
            RandomInterleaver(seed=0).permutation(-1)


class TestIdentity:
    def test_identity(self):
        np.testing.assert_array_equal(identity_permutation(4), [0, 1, 2, 3])

    def test_negative_rejected(self):
        with pytest.raises(InvalidParameterError):
            identity_permutation(-1)


class TestBatchedAxes:
    """Interleavers permute the last axis, so frame batches work directly."""

    @pytest.mark.parametrize(
        "interleaver",
        [BlockInterleaver(rows=6, cols=9), RandomInterleaver(seed=11)],
        ids=["block", "random"],
    )
    def test_rows_match_scalar(self, interleaver, rng):
        values = rng.normal(size=(5, 48))
        batch = interleaver.interleave(values)
        for index in range(values.shape[0]):
            np.testing.assert_array_equal(
                batch[index], interleaver.interleave(values[index])
            )
        np.testing.assert_array_equal(interleaver.deinterleave(batch), values)
