"""Importance sampling: twisted proposals, exact weights, ESS guard.

The contract under test, in order of appearance:

* ``ImportanceSamplingSpec`` validates its proposal parameters and
  serializes sparsely (defaults omitted — the spec-hash discipline).
* ``cell_twist`` parameterizes the twist per cell from its SNR columns.
* ``NoiseTwist.apply`` computes the *exact* per-phase log likelihood
  ratio of the nominal noise density against the proposal density — we
  recompute both densities by hand from the realized draws.
* ``direction_log_weights`` drops the independent other-direction phase
  factors for factorizing protocols and pools everything for coupled
  relay protocols.
* The identity twist is bitwise-invisible: same draws, unit weights.
* Degenerate proposals trip the ESS guard (cells refuse to resolve)
  and zero-error waves leave the weighted estimator well-defined.
* The weighted FER agrees with vanilla Monte Carlo within tolerance.
"""

import numpy as np
import pytest

from repro.channels.gains import LinkGains
from repro.core.protocols import Protocol
from repro.exceptions import InvalidParameterError
from repro.simulation.convolutional import TEST_CODE
from repro.simulation.crc import CRC8
from repro.simulation.linkcodec import LinkCodec
from repro.simulation.montecarlo import simulate_protocol
from repro.simulation.sampling import (
    DEFAULT_MIN_ESS_FRACTION,
    PHASE_DIRECTION_MASKS,
    ImportanceSamplingSpec,
    NoiseTwist,
    direction_log_weights,
)

FAST_CODEC = LinkCodec(payload_bits=24, code=TEST_CODE, crc=CRC8)
GAINS = LinkGains.from_db(-7.0, 0.0, 5.0)


def run(protocol, *, sampling=None, seed=3, n_rounds=64, gains=GAINS,
        power=10**0.6, **kwargs):
    return simulate_protocol(
        protocol,
        gains,
        power,
        n_rounds,
        np.random.default_rng(seed),
        codec=FAST_CODEC,
        importance_sampling=sampling,
        **kwargs,
    )


class TestImportanceSamplingSpec:
    def test_rejects_nonpositive_scale(self):
        with pytest.raises(InvalidParameterError, match="noise_scale"):
            ImportanceSamplingSpec(noise_scale=0.0)
        with pytest.raises(InvalidParameterError, match="noise_scale"):
            ImportanceSamplingSpec(noise_scale=-1.2)

    def test_target_snr_needs_inflation(self):
        with pytest.raises(InvalidParameterError, match="target_snr_db"):
            ImportanceSamplingSpec(noise_scale=0.9, target_snr_db=3.0)

    def test_rejects_bad_ess_fraction(self):
        with pytest.raises(InvalidParameterError, match="min_ess_fraction"):
            ImportanceSamplingSpec(noise_scale=1.1, min_ess_fraction=1.0)
        with pytest.raises(InvalidParameterError, match="min_ess_fraction"):
            ImportanceSamplingSpec(noise_scale=1.1, min_ess_fraction=-0.1)

    def test_to_dict_is_sparse(self):
        assert ImportanceSamplingSpec(noise_scale=1.1).to_dict() == {
            "noise_scale": 1.1
        }
        full = ImportanceSamplingSpec(
            noise_scale=1.1,
            noise_shift=0.2,
            target_snr_db=2.0,
            min_ess_fraction=0.05,
        )
        assert full.to_dict() == {
            "noise_scale": 1.1,
            "noise_shift": 0.2,
            "target_snr_db": 2.0,
            "min_ess_fraction": 0.05,
        }

    def test_cell_twist_uniform_without_target(self):
        spec = ImportanceSamplingSpec(noise_scale=1.2, noise_shift=0.1)
        twist = spec.cell_twist(
            np.array([0.1, 1.0]), np.array([1.0, 1.0]), np.array([1.0, 1.0]),
            np.array([1.0, 1.0]),
        )
        assert twist.scales == pytest.approx([1.2, 1.2])
        assert twist.shifts == pytest.approx([0.1, 0.1])

    def test_cell_twist_calibrates_per_cell(self):
        """Deep fades fall back toward vanilla; clean cells cap out."""
        spec = ImportanceSamplingSpec(noise_scale=1.2, target_snr_db=0.0)
        gab = np.array([1e-4, 1.0, 1e6])
        ones = np.ones(3)
        twist = spec.cell_twist(gab, 1e-6 * ones, 1e-6 * ones, ones)
        scales = np.asarray(twist.scales)
        assert scales[0] == pytest.approx(1.0)  # deep fade: vanilla
        assert scales[1] == pytest.approx(1.0)  # at threshold
        assert scales[2] == pytest.approx(1.2)  # clean: capped inflation


class TestNoiseTwistMath:
    def _manual_log_lr(self, nominal_draws, twisted, std, scales, shifts,
                       signs):
        """log p(x) - log q(x) from the two Gaussian densities, by hand."""
        n_cells = len(scales)
        rows = nominal_draws.shape[0] // n_cells
        per_cell = twisted.reshape(n_cells, rows, *twisted.shape[1:])
        out = np.zeros((n_cells, rows))
        for c in range(n_cells):
            x = per_cell[c, :, :, 0, :]  # the twisted in-phase components
            mean = -shifts[c] * std * signs[c]
            sigma = scales[c] * std
            log_p = -(x**2) / (2 * std**2) - np.log(std)
            log_q = -((x - mean) ** 2) / (2 * sigma**2) - np.log(sigma)
            out[c] = (log_p - log_q).sum(axis=(1, 2))
        return out

    def test_log_lr_matches_gaussian_densities(self):
        rng = np.random.default_rng(5)
        n_cells, rounds, n_listeners, n_symbols = 2, 7, 2, 5
        std = 0.8
        draws = rng.normal(
            0.0, std, size=(n_cells * rounds, n_listeners, 2, n_symbols)
        )
        nominal = draws.copy()
        signs = np.where(
            rng.normal(size=(n_cells, rounds, n_listeners, n_symbols)) > 0,
            1.0,
            -1.0,
        )
        twist = NoiseTwist(scales=(1.3, 1.0), shifts=(0.25, 0.4))
        twisted, log_lr = twist.apply(
            draws.reshape(n_cells, rounds, n_listeners, 2, n_symbols),
            std,
            signs,
        )
        twisted = twisted.reshape(n_cells * rounds, n_listeners, 2, n_symbols)
        # Quadrature components are never touched.
        np.testing.assert_array_equal(
            twisted[:, :, 1, :], nominal[:, :, 1, :]
        )
        expected = self._manual_log_lr(
            nominal, twisted, std, (1.3, 1.0), (0.25, 0.4), signs
        )
        np.testing.assert_allclose(log_lr, expected, rtol=1e-10)

    def test_identity_twist_is_a_no_op(self):
        rng = np.random.default_rng(6)
        draws = rng.normal(0.0, 0.5, size=(3, 4, 1, 2, 6))
        nominal = draws.copy()
        twist = NoiseTwist(scales=(1.0, 1.0, 1.0), shifts=(0.0, 0.0, 0.0))
        assert twist.is_identity
        twisted, log_lr = twist.apply(draws, 0.5)
        np.testing.assert_array_equal(twisted, nominal)
        np.testing.assert_array_equal(log_lr, np.zeros((3, 4)))

    def test_shift_needs_signs(self):
        twist = NoiseTwist(scales=(1.0,), shifts=(0.1,))
        draws = np.zeros((1, 2, 1, 2, 3))
        with pytest.raises(InvalidParameterError, match="signs"):
            twist.apply(draws, 1.0)


class TestDirectionLogWeights:
    def test_factorizing_protocols_split_by_direction(self):
        phases = [np.array([1.0, 2.0]), np.array([10.0, 20.0])]
        w_ab, w_ba = direction_log_weights(Protocol.DT, phases)
        np.testing.assert_array_equal(w_ab, [1.0, 2.0])
        np.testing.assert_array_equal(w_ba, [10.0, 20.0])

    def test_naive4_pools_its_two_relay_phases_per_direction(self):
        phases = [np.array([v]) for v in (1.0, 2.0, 4.0, 8.0)]
        w_ab, w_ba = direction_log_weights(Protocol.NAIVE4, phases)
        assert w_ab == pytest.approx([3.0])
        assert w_ba == pytest.approx([12.0])
        assert set(PHASE_DIRECTION_MASKS) == {Protocol.DT, Protocol.NAIVE4}

    def test_coupled_protocols_share_the_total(self):
        phases = [np.array([1.0]), np.array([2.0]), np.array([4.0])]
        w_ab, w_ba = direction_log_weights(Protocol.TDBC, phases)
        assert w_ab == pytest.approx([7.0])
        assert w_ba == pytest.approx([7.0])

    def test_rejects_missing_phases(self):
        with pytest.raises(InvalidParameterError):
            direction_log_weights(Protocol.DT, [])
        with pytest.raises(InvalidParameterError):
            direction_log_weights(Protocol.NAIVE4, [np.zeros(2)] * 3)


class TestIdentityEndToEnd:
    @pytest.mark.parametrize("protocol", list(Protocol))
    def test_identity_proposal_is_bitwise_invisible(self, protocol):
        """scale 1, shift 0: same counters as vanilla, unit weights."""
        vanilla = run(protocol)
        biased = run(
            protocol, sampling=ImportanceSamplingSpec(noise_scale=1.0)
        )
        assert biased.a_to_b == vanilla.a_to_b
        assert biased.b_to_a == vanilla.b_to_a
        assert biased.throughput == vanilla.throughput
        assert biased.relay_failures == vanilla.relay_failures
        counter = biased.sampling
        assert counter is not None
        assert counter.sum_weights == pytest.approx(counter.frames)
        assert counter.max_weight == pytest.approx(1.0)
        assert biased.fer == pytest.approx(vanilla.fer)


class TestEssGuardAndEdgeCases:
    def test_degenerate_proposal_refuses_to_resolve(self):
        """A wild twist collapses ESS; the guard keeps the cell open."""
        degenerate = ImportanceSamplingSpec(noise_scale=4.0, noise_shift=2.0)
        report = run(
            Protocol.DT,
            sampling=degenerate,
            n_rounds=64,
            target_rel_error=0.5,
            max_rounds=256,
        )
        counter = report.sampling
        assert counter.ess_fraction < DEFAULT_MIN_ESS_FRACTION
        assert report.resolved is False
        assert report.n_rounds == 256

    def test_mild_proposal_resolves_where_vanilla_would(self):
        report = run(
            Protocol.DT,
            sampling=ImportanceSamplingSpec(noise_scale=1.05),
            n_rounds=64,
            target_rel_error=0.5,
            max_rounds=4096,
            gains=LinkGains.from_db(-10.0, 0.0, 0.0),
            power=1.0,
        )
        assert report.resolved is True
        assert 0.0 < report.fer < 1.0

    def test_zero_error_waves_stay_well_defined(self):
        """No errors under the proposal: FER 0, infinite rel error."""
        report = run(
            Protocol.DT,
            sampling=ImportanceSamplingSpec(noise_scale=1.01),
            n_rounds=8,
            target_rel_error=0.5,
            max_rounds=16,
            gains=LinkGains.from_db(30.0, 0.0, 0.0),
            power=10.0,
        )
        counter = report.sampling
        assert report.fer == 0.0
        assert counter.weighted_errors == 0.0
        assert counter.rel_std_error == np.inf
        assert report.resolved is False

    def test_requires_the_batched_method(self):
        with pytest.raises(InvalidParameterError, match="batched"):
            run(
                Protocol.DT,
                sampling=ImportanceSamplingSpec(noise_scale=1.1),
                method="reference",
            )


class TestUnbiasedness:
    def test_weighted_fer_tracks_vanilla(self):
        """Moderate-FER cell: IS and vanilla agree within 3 pooled SE."""
        gains = LinkGains.from_db(-9.0, 0.0, 0.0)
        n_rounds = 4096
        vanilla = run(
            Protocol.DT, gains=gains, power=1.0, n_rounds=n_rounds, seed=21
        )
        biased = run(
            Protocol.DT,
            gains=gains,
            power=1.0,
            n_rounds=n_rounds,
            seed=22,
            sampling=ImportanceSamplingSpec(noise_scale=1.05, noise_shift=0.1),
        )
        counter = biased.sampling
        n_trials = 2 * n_rounds
        se_vanilla = np.sqrt(vanilla.fer * (1 - vanilla.fer) / n_trials)
        se_biased = counter.rel_std_error * counter.weighted_fer
        gap = abs(counter.weighted_fer - vanilla.fer)
        assert gap <= 3 * np.hypot(se_vanilla, se_biased)
