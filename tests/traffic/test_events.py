"""The deterministic event loop: ordering, clock, and validation."""

import pytest

from repro.exceptions import InvalidParameterError
from repro.traffic import ARRIVAL, SERVICE, EventLoop


class TestOrdering:
    def test_events_fire_in_time_order(self):
        loop = EventLoop()
        fired = []
        for t in (2.0, 0.5, 1.25):
            loop.schedule(t, ARRIVAL, fired.append, t)
        assert loop.run() == 3
        assert fired == [0.5, 1.25, 2.0]

    def test_priority_breaks_time_ties(self):
        """Arrivals at time t land before the slot-t service decision."""
        loop = EventLoop()
        fired = []
        loop.schedule(1.0, SERVICE, fired.append, "service")
        loop.schedule(1.0, ARRIVAL, fired.append, "arrival")
        loop.run()
        assert fired == ["arrival", "service"]

    def test_sequence_breaks_full_ties_fifo(self):
        loop = EventLoop()
        fired = []
        for tag in ("first", "second", "third"):
            loop.schedule(3.0, ARRIVAL, fired.append, tag)
        loop.run()
        assert fired == ["first", "second", "third"]

    def test_actions_may_schedule_followups(self):
        loop = EventLoop()
        fired = []

        def chain(depth):
            fired.append(depth)
            if depth < 3:
                loop.schedule(loop.now + 1.0, SERVICE, chain, depth + 1)

        loop.schedule(0.0, SERVICE, chain, 0)
        assert loop.run() == 4
        assert fired == [0, 1, 2, 3]


class TestClock:
    def test_now_tracks_the_fired_event(self):
        loop = EventLoop()
        seen = []
        for t in (0.25, 4.0):
            loop.schedule(t, ARRIVAL, lambda: seen.append(loop.now))
        loop.run()
        assert seen == [0.25, 4.0]
        assert loop.now == 4.0

    def test_scheduling_into_the_past_is_rejected(self):
        loop = EventLoop()
        loop.schedule(2.0, ARRIVAL, lambda: None)
        loop.run()
        with pytest.raises(InvalidParameterError):
            loop.schedule(1.0, ARRIVAL, lambda: None)

    def test_len_counts_pending_events(self):
        loop = EventLoop()
        assert len(loop) == 0
        loop.schedule(1.0, ARRIVAL, lambda: None)
        loop.schedule(2.0, ARRIVAL, lambda: None)
        assert len(loop) == 2
        loop.run()
        assert len(loop) == 0
