"""Scheduling disciplines as pure functions of slot, backlogs, outcomes."""

import pytest

from repro.exceptions import InvalidParameterError
from repro.traffic import SCHEDULERS, get_scheduler


def _peek_all_succeed(pair):
    return True, True


class TestRoundRobin:
    def test_fixed_rotation_ignores_backlogs(self):
        scheduler = get_scheduler("round-robin")
        backlogs = [(0, 0), (5, 5), (1, 0)]
        picks = [scheduler.pick(s, backlogs, _peek_all_succeed) for s in range(6)]
        assert picks == [0, 1, 2, 0, 1, 2]


class TestLongestQueue:
    def test_picks_the_largest_total_backlog(self):
        scheduler = get_scheduler("longest-queue")
        assert scheduler.pick(0, [(1, 0), (2, 3), (0, 4)], _peek_all_succeed) == 1

    def test_ties_go_to_the_lowest_index(self):
        scheduler = get_scheduler("longest-queue")
        assert scheduler.pick(0, [(2, 1), (0, 3), (3, 0)], _peek_all_succeed) == 0

    def test_all_empty_yields_none(self):
        scheduler = get_scheduler("longest-queue")
        assert scheduler.pick(0, [(0, 0), (0, 0)], _peek_all_succeed) is None


class TestOpportunistic:
    def test_prefers_deliverable_outcomes_over_backlog(self):
        scheduler = get_scheduler("opportunistic")
        outcomes = {0: (False, False), 1: (True, True)}
        pick = scheduler.pick(0, [(9, 9), (1, 1)], lambda pair: outcomes[pair])
        assert pick == 1

    def test_counts_only_deliverable_directions(self):
        """A success on an empty direction is not a win."""
        scheduler = get_scheduler("opportunistic")
        outcomes = {0: (True, True), 1: (True, True)}
        pick = scheduler.pick(0, [(0, 1), (1, 1)], lambda pair: outcomes[pair])
        assert pick == 1

    def test_work_conserving_when_nothing_would_deliver(self):
        scheduler = get_scheduler("opportunistic")
        outcomes = {0: (False, False), 1: (False, False)}
        pick = scheduler.pick(0, [(1, 0), (2, 2)], lambda pair: outcomes[pair])
        assert pick == 1

    def test_skips_empty_pairs_entirely(self):
        peeked = []

        def peek(pair):
            peeked.append(pair)
            return True, True

        scheduler = get_scheduler("opportunistic")
        assert scheduler.pick(0, [(0, 0), (1, 0)], peek) == 1
        assert peeked == [1]

    def test_all_empty_yields_none(self):
        scheduler = get_scheduler("opportunistic")
        assert scheduler.pick(0, [(0, 0)], _peek_all_succeed) is None


class TestRegistry:
    def test_registry_names(self):
        assert set(SCHEDULERS) == {"round-robin", "longest-queue", "opportunistic"}

    def test_registry_matches_spec_constants(self):
        from repro.campaign.spec import TRAFFIC_SCHEDULERS

        assert set(TRAFFIC_SCHEDULERS) == set(SCHEDULERS)

    def test_unknown_name_rejected(self):
        with pytest.raises(InvalidParameterError):
            get_scheduler("fifo")
