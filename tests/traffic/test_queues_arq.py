"""Finite FIFO queues and stop-and-wait ARQ accounting."""

import pytest

from repro.exceptions import InvalidParameterError
from repro.traffic import FifoQueue, FlowTally, Frame, StopAndWaitArq


class TestFifoQueue:
    def test_fifo_order(self):
        queue = FifoQueue(4)
        first, second = Frame(0.0), Frame(1.0)
        assert queue.offer(first) and queue.offer(second)
        assert queue.head() is first
        assert queue.pop() is first
        assert queue.pop() is second

    def test_offer_fails_when_full(self):
        queue = FifoQueue(2)
        assert queue.offer(Frame(0.0))
        assert queue.offer(Frame(1.0))
        assert not queue.offer(Frame(2.0))
        assert len(queue) == 2

    def test_capacity_must_be_positive(self):
        with pytest.raises(InvalidParameterError):
            FifoQueue(0)


class TestStopAndWaitArq:
    def _loaded(self, arrival=0.0):
        queue = FifoQueue(4)
        queue.offer(Frame(arrival))
        return queue, FlowTally()

    def test_success_delivers_and_records_latency(self):
        queue, tally = self._loaded(arrival=1.5)
        arq = StopAndWaitArq(3)
        assert arq.transmit(queue, tally, True, 4.0) == "delivered"
        assert len(queue) == 0
        assert tally.delivered == 1
        assert tally.attempts == 1
        assert tally.latencies == [2.5]

    def test_failure_keeps_the_frame_pending(self):
        queue, tally = self._loaded()
        arq = StopAndWaitArq(3)
        assert arq.transmit(queue, tally, False, 1.0) == "pending"
        assert len(queue) == 1
        assert tally.delivered == 0
        assert tally.drops_arq == 0

    def test_retry_budget_exhaustion_drops_the_frame(self):
        queue, tally = self._loaded()
        arq = StopAndWaitArq(2)
        assert arq.transmit(queue, tally, False, 1.0) == "pending"
        assert arq.transmit(queue, tally, False, 2.0) == "dropped"
        assert len(queue) == 0
        assert tally.drops_arq == 1
        assert tally.attempts == 2
        assert tally.latencies == []

    def test_success_on_the_last_attempt_still_delivers(self):
        queue, tally = self._loaded()
        arq = StopAndWaitArq(2)
        arq.transmit(queue, tally, False, 1.0)
        assert arq.transmit(queue, tally, True, 2.0) == "delivered"
        assert tally.delivered == 1
        assert tally.drops_arq == 0

    def test_limit_must_be_positive(self):
        with pytest.raises(InvalidParameterError):
            StopAndWaitArq(0)
