"""Arrival-time generators: shapes, reproducibility, and validation."""

import numpy as np
import pytest

from repro.exceptions import InvalidParameterError
from repro.traffic import ARRIVAL_KINDS, arrival_times


class TestPeriodic:
    def test_rate_one_centers_one_arrival_per_slot(self):
        times = arrival_times("periodic", 1.0, 4.0, rng=None)
        assert times == (0.5, 1.5, 2.5, 3.5)

    def test_needs_no_rng(self):
        assert arrival_times("periodic", 0.5, 8.0, rng=None) == (1.0, 3.0, 5.0, 7.0)


class TestPoisson:
    def test_reproducible_from_the_stream(self):
        a = arrival_times("poisson", 0.7, 50.0, np.random.default_rng(3))
        b = arrival_times("poisson", 0.7, 50.0, np.random.default_rng(3))
        assert a == b

    def test_rate_sets_the_mean_count(self):
        rng = np.random.default_rng(11)
        counts = [
            len(arrival_times("poisson", 0.5, 200.0, rng)) for _ in range(20)
        ]
        assert 80 <= np.mean(counts) <= 120

    def test_times_are_increasing_and_inside_the_horizon(self):
        times = arrival_times("poisson", 1.5, 30.0, np.random.default_rng(5))
        assert all(t < 30.0 for t in times)
        assert list(times) == sorted(times)


class TestBursty:
    def test_arrivals_come_in_full_bursts(self):
        times = arrival_times(
            "bursty", 1.0, 100.0, np.random.default_rng(7), burst_size=4
        )
        assert len(times) % 4 == 0
        for start in range(0, len(times), 4):
            burst = times[start : start + 4]
            assert len(set(burst)) == 1

    def test_burst_size_one_matches_poisson_statistics(self):
        times = arrival_times(
            "bursty", 0.8, 100.0, np.random.default_rng(9), burst_size=1
        )
        assert len(set(times)) == len(times)


class TestValidation:
    def test_kind_registry_is_exported(self):
        assert ARRIVAL_KINDS == ("poisson", "periodic", "bursty")

    def test_unknown_kind_rejected(self):
        with pytest.raises(InvalidParameterError):
            arrival_times("fractal", 1.0, 10.0, np.random.default_rng(0))

    @pytest.mark.parametrize("rate", [0.0, -1.0])
    def test_nonpositive_rate_rejected(self, rate):
        with pytest.raises(InvalidParameterError):
            arrival_times("poisson", rate, 10.0, np.random.default_rng(0))

    def test_nonpositive_horizon_rejected(self):
        with pytest.raises(InvalidParameterError):
            arrival_times("poisson", 1.0, 0.0, np.random.default_rng(0))

    def test_bad_burst_size_rejected(self):
        with pytest.raises(InvalidParameterError):
            arrival_times(
                "bursty", 1.0, 10.0, np.random.default_rng(0), burst_size=0
            )
