"""End-to-end traffic simulations: determinism, accounting, dominance."""

import numpy as np
import pytest

from repro.campaign.spec import LinkSimSpec, TrafficSpec
from repro.channels.gains import LinkGains
from repro.core.protocols import Protocol
from repro.exceptions import InvalidParameterError
from repro.traffic import (
    FrameOutcomeStream,
    simulate_traffic,
    stable_throughput_knee,
    traffic_link_values,
)

PAPER_GAINS = LinkGains.from_db(-7.0, 0.0, 5.0)


def latency_link(**overrides):
    traffic = overrides.pop(
        "traffic", TrafficSpec(rates=(0.5,), buffer_frames=8, arq_limit=3)
    )
    params = dict(
        n_rounds=64, payload_bits=32, seed=3, metric="latency", traffic=traffic
    )
    params.update(overrides)
    return LinkSimSpec(**params)


def two_pair_link(scheduler, *, seed=5, offered_loads=(0.4, 0.8, 1.2)):
    return LinkSimSpec(
        n_rounds=96,
        payload_bits=32,
        seed=seed,
        metric="stable_throughput",
        traffic=TrafficSpec(
            rates=(0.5, 0.125),
            scheduler=scheduler,
            buffer_frames=10,
            arq_limit=3,
            pair_offsets_db=((0.0, 0.0, 0.0), (-2.0, 3.0, -3.0)),
            offered_loads=offered_loads,
        ),
    )


class TestOutcomeStream:
    @pytest.mark.parametrize(
        "protocol", [Protocol.MABC, Protocol.TDBC, Protocol.HBC]
    )
    def test_batched_matches_per_frame_bitwise(self, protocol):
        link = latency_link()
        codec = link.codec()
        outcomes = {}
        for method in ("batched", "per-frame"):
            stream = FrameOutcomeStream(
                protocol,
                PAPER_GAINS,
                10.0,
                32,
                np.random.default_rng(7),
                codec=codec,
                method=method,
            )
            outcomes[method] = [stream.take() for _ in range(32)]
        assert outcomes["batched"] == outcomes["per-frame"]

    def test_chunk_size_never_changes_outcomes(self):
        link = latency_link()
        codec = link.codec()
        reference = None
        for chunk in (1, 5, 64):
            stream = FrameOutcomeStream(
                Protocol.MABC,
                PAPER_GAINS,
                10.0,
                24,
                np.random.default_rng(3),
                codec=codec,
                chunk=chunk,
            )
            outcomes = [stream.take() for _ in range(24)]
            if reference is None:
                reference = outcomes
            assert outcomes == reference

    def test_peek_does_not_consume(self):
        stream = FrameOutcomeStream(
            Protocol.MABC,
            PAPER_GAINS,
            10.0,
            8,
            np.random.default_rng(1),
            codec=latency_link().codec(),
        )
        assert stream.peek() == stream.peek()
        assert stream.consumed == 0
        assert stream.peek() == stream.take()
        assert stream.consumed == 1

    def test_exhaustion_raises(self):
        stream = FrameOutcomeStream(
            Protocol.MABC,
            PAPER_GAINS,
            10.0,
            2,
            np.random.default_rng(1),
            codec=latency_link().codec(),
        )
        stream.take(), stream.take()
        with pytest.raises(InvalidParameterError):
            stream.take()

    def test_unknown_method_rejected(self):
        with pytest.raises(InvalidParameterError):
            FrameOutcomeStream(
                Protocol.MABC,
                PAPER_GAINS,
                10.0,
                4,
                np.random.default_rng(1),
                codec=latency_link().codec(),
                method="magic",
            )


class TestSimulateTraffic:
    def _run(self, link, *, method="batched", seed=0, rate_scale=1.0):
        return simulate_traffic(
            Protocol.MABC,
            PAPER_GAINS,
            10.0,
            link=link,
            rng=np.random.default_rng([link.seed, seed]),
            method=method,
            rate_scale=rate_scale,
        )

    def test_same_spec_same_report(self):
        link = latency_link()
        assert self._run(link) == self._run(link)

    @pytest.mark.parametrize("arrival", ["poisson", "periodic", "bursty"])
    def test_batched_equals_per_frame_bitwise(self, arrival):
        link = latency_link(
            traffic=TrafficSpec(
                rates=(0.5,), arrival=arrival, buffer_frames=8, arq_limit=3
            )
        )
        assert self._run(link) == self._run(link, method="per-frame")

    def test_two_pair_batched_equals_per_frame_bitwise(self):
        link = two_pair_link("opportunistic")
        a = simulate_traffic(
            Protocol.MABC,
            PAPER_GAINS,
            10.0,
            link=link,
            rng=np.random.default_rng([5, 0]),
        )
        b = simulate_traffic(
            Protocol.MABC,
            PAPER_GAINS,
            10.0,
            link=link,
            rng=np.random.default_rng([5, 0]),
            method="per-frame",
        )
        assert a == b

    def test_flow_conservation(self):
        """Every generated frame is delivered, dropped, or still queued."""
        report = self._run(latency_link())
        for flow in report.flows:
            in_flight = flow.arrivals - (
                flow.delivered + flow.drops_buffer + flow.drops_arq
            )
            assert 0 <= in_flight <= 8

    def test_slot_accounting(self):
        report = self._run(latency_link())
        assert report.served_rounds + report.idle_slots == report.n_slots

    def test_flows_are_two_per_pair(self):
        report = self._run(latency_link())
        assert report.n_pairs == 1
        assert len(report.flows) == 2

    def test_overload_reports_buffer_drops(self):
        report = self._run(latency_link(), rate_scale=6.0)
        assert sum(f.drops_buffer for f in report.flows) > 0

    def test_latency_quantile_of_an_empty_run_is_inf(self):
        report = self._run(latency_link(), rate_scale=1.0)
        empty = report.flows[0].__class__(
            arrivals=0,
            delivered=0,
            drops_buffer=0,
            drops_arq=0,
            attempts=0,
            latencies=(),
        )
        starved = type(report)(
            n_slots=report.n_slots,
            n_pairs=1,
            flows=(empty, empty),
            served_rounds=0,
            idle_slots=report.n_slots,
        )
        assert starved.latency_quantile(0.95) == float("inf")

    def test_bad_quantile_rejected(self):
        report = self._run(latency_link())
        with pytest.raises(InvalidParameterError):
            report.latency_quantile(0.0)

    def test_trafficless_link_rejected(self):
        link = LinkSimSpec(n_rounds=8, payload_bits=32, seed=0)
        with pytest.raises(InvalidParameterError):
            simulate_traffic(
                Protocol.MABC,
                PAPER_GAINS,
                10.0,
                link=link,
                rng=np.random.default_rng(0),
            )

    def test_bad_rate_scale_rejected(self):
        with pytest.raises(InvalidParameterError):
            self._run(latency_link(), rate_scale=0.0)


class TestStableThroughput:
    def _knee(self, link, seed=0):
        return stable_throughput_knee(
            Protocol.MABC,
            PAPER_GAINS,
            10.0,
            link=link,
            rng=np.random.default_rng([link.seed, seed]),
        )

    def test_knee_is_a_swept_nominal_rate_or_zero(self):
        link = two_pair_link("opportunistic")
        nominal = 2.0 * sum(link.traffic.pair_rates())
        candidates = {0.0} | {s * nominal for s in link.traffic.offered_loads}
        assert self._knee(link) in candidates

    def test_work_conserving_weakly_dominates_round_robin(self):
        """The acceptance claim, at the registered scenario's asymmetry."""
        for seed in range(3):
            baseline = self._knee(two_pair_link("round-robin"), seed)
            for scheduler in ("longest-queue", "opportunistic"):
                assert self._knee(two_pair_link(scheduler), seed) >= baseline


class TestTrafficLinkValues:
    def test_values_depend_only_on_the_flat_index(self):
        link = latency_link()
        batch = traffic_link_values(
            Protocol.MABC,
            [0.2, 0.2, 0.2],
            [1.0, 1.0, 1.0],
            [3.16, 3.16, 3.16],
            [10.0, 10.0, 10.0],
            link=link,
            indices=[0, 1, 2],
        )
        singles = [
            traffic_link_values(
                Protocol.MABC,
                [0.2],
                [1.0],
                [3.16],
                [10.0],
                link=link,
                indices=[i],
            )[0]
            for i in range(3)
        ]
        assert np.array_equal(batch, np.array(singles))

    def test_mismatched_shapes_rejected(self):
        with pytest.raises(InvalidParameterError):
            traffic_link_values(
                Protocol.MABC,
                [0.2, 0.2],
                [1.0],
                [3.16],
                [10.0],
                link=latency_link(),
                indices=[0],
            )
