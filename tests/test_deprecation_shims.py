"""The pre-facade entry points survive as warning, behavior-identical shims."""

import numpy as np
import pytest

from repro.core.protocols import Protocol
from repro.experiments.config import Fig3Config
from repro.experiments.fig3 import fig3_result, run_fig3
from repro.experiments.sweeps import power_sweep, sweep_powers
from repro.simulation.montecarlo import ergodic_sum_rate, fading_sum_rate_statistics
from repro.simulation.outage_capacity import compute_outage_curve, sample_outage_curve

SMALL_FIG3 = Fig3Config(relay_fractions=(0.3, 0.7), symmetric_gains_db=(0.0, 10.0))


class TestRunFig3Shim:
    def test_warns_and_matches_fig3_result(self):
        with pytest.warns(DeprecationWarning, match="run_fig3 is deprecated"):
            shimmed = run_fig3(SMALL_FIG3)
        fresh = fig3_result(SMALL_FIG3)
        assert shimmed.protocols == fresh.protocols
        for old_row, new_row in zip(shimmed.placement_rows, fresh.placement_rows):
            assert old_row.sum_rates == new_row.sum_rates

    def test_old_keyword_signature_still_accepted(self):
        with pytest.warns(DeprecationWarning):
            result = run_fig3(SMALL_FIG3, executor="serial", cache=None)
        assert len(result.symmetric_rows) == 2


class TestFig3HeadersShim:
    def test_class_level_call_warns_and_assumes_four_protocols(self):
        from repro.experiments.fig3 import Fig3Result

        with pytest.warns(DeprecationWarning, match="Fig3Result.headers"):
            headers = Fig3Result.headers("relay position")
        assert headers == ["relay position", "DT", "MABC", "TDBC", "HBC"]

    def test_instance_call_is_warning_free(self, recwarn):
        result = fig3_result(SMALL_FIG3, protocols=(Protocol.HBC,))
        assert result.headers("x") == ["x", "HBC"]
        deprecations = [
            w for w in recwarn.list if issubclass(w.category, DeprecationWarning)
        ]
        assert not deprecations


class TestPowerSweepShim:
    def test_warns_and_matches_sweep_powers(self, paper_gains):
        with pytest.warns(DeprecationWarning, match="power_sweep is deprecated"):
            shimmed = power_sweep(paper_gains, (0.0, 10.0))
        fresh = sweep_powers(paper_gains, (0.0, 10.0))
        for old_row, new_row in zip(shimmed, fresh):
            assert old_row.power_db == new_row.power_db
            assert old_row.sum_rates == new_row.sum_rates

    def test_old_protocol_subset_keyword(self, paper_gains):
        with pytest.warns(DeprecationWarning):
            rows = power_sweep(
                paper_gains, (10.0,), protocols=(Protocol.MABC, Protocol.TDBC)
            )
        assert set(rows[0].sum_rates) == {Protocol.MABC, Protocol.TDBC}


class TestErgodicSumRateShim:
    def test_warns_and_matches_impl(self, paper_gains):
        with pytest.warns(DeprecationWarning, match="ergodic_sum_rate"):
            shimmed = ergodic_sum_rate(
                Protocol.MABC, paper_gains, 10.0, 6, np.random.default_rng(3)
            )
        fresh = fading_sum_rate_statistics(
            Protocol.MABC, paper_gains, 10.0, 6, np.random.default_rng(3)
        )
        assert shimmed.mean == fresh.mean
        assert shimmed.samples.tobytes() == fresh.samples.tobytes()


class TestComputeOutageCurveShim:
    def test_warns_and_matches_impl(self, paper_gains):
        with pytest.warns(DeprecationWarning, match="compute_outage_curve"):
            shimmed = compute_outage_curve(
                Protocol.HBC, paper_gains, 10.0, 6, np.random.default_rng(5)
            )
        fresh = sample_outage_curve(
            Protocol.HBC, paper_gains, 10.0, 6, np.random.default_rng(5)
        )
        assert shimmed.samples.tobytes() == fresh.samples.tobytes()
        assert shimmed.rate_at_outage(0.1) == fresh.rate_at_outage(0.1)


class TestNoWarningsOnNewSurface:
    def test_facade_and_impls_are_warning_free(self, paper_gains, recwarn):
        from repro.api import evaluate
        from repro.scenarios import power_sweep_scenario

        sweep_powers(paper_gains, (10.0,), protocols=(Protocol.MABC,))
        evaluate(
            power_sweep_scenario(paper_gains, (10.0,), (Protocol.MABC,)),
            executor="serial",
        )
        deprecations = [
            w for w in recwarn.list if issubclass(w.category, DeprecationWarning)
        ]
        assert not deprecations
