"""Unit tests for repro.channels.halfduplex."""

import numpy as np
import pytest

from repro.channels.awgn import ComplexAwgn
from repro.channels.gains import LinkGains
from repro.channels.halfduplex import (
    HalfDuplexMedium,
    complex_gains_from_powers,
    link_amplitudes,
)
from repro.exceptions import HalfDuplexViolationError, InvalidParameterError


@pytest.fixture
def medium(paper_gains):
    return HalfDuplexMedium(gains=paper_gains, noise=ComplexAwgn(1e-12))


class TestComplexGains:
    def test_coherent_amplitudes_match_powers(self, paper_gains):
        cg = link_amplitudes(paper_gains)
        assert abs(cg[frozenset(("a", "r"))]) ** 2 == pytest.approx(paper_gains.gar)
        assert abs(cg[frozenset(("a", "b"))]) ** 2 == pytest.approx(paper_gains.gab)
        assert abs(cg[frozenset(("b", "r"))]) ** 2 == pytest.approx(paper_gains.gbr)

    def test_random_phases_preserve_power(self, paper_gains, rng):
        cg = link_amplitudes(paper_gains, rng, random_phases=True)
        assert abs(cg[frozenset(("a", "r"))]) ** 2 == pytest.approx(paper_gains.gar)

    def test_random_phases_require_rng(self, paper_gains):
        with pytest.raises(InvalidParameterError):
            link_amplitudes(paper_gains, None, random_phases=True)

    def test_old_name_warns_and_delegates(self, paper_gains):
        with pytest.warns(DeprecationWarning, match="link_amplitudes"):
            cg = complex_gains_from_powers(paper_gains)
        assert cg == link_amplitudes(paper_gains)


class TestHalfDuplexSemantics:
    def test_transmitter_receives_nothing(self, medium, rng):
        out = medium.run_phase({"a": np.ones(8, dtype=complex)}, rng)
        assert out.received["a"] is None

    def test_listeners_receive_signal(self, medium, paper_gains, rng):
        out = medium.run_phase({"a": np.ones(64, dtype=complex)}, rng)
        expected_at_r = np.sqrt(paper_gains.gar)
        expected_at_b = np.sqrt(paper_gains.gab)
        assert np.allclose(out.signal_at("r"), expected_at_r, atol=1e-4)
        assert np.allclose(out.signal_at("b"), expected_at_b, atol=1e-4)

    def test_signal_at_transmitter_raises(self, medium, rng):
        out = medium.run_phase({"a": np.ones(4, dtype=complex)}, rng)
        with pytest.raises(HalfDuplexViolationError):
            out.signal_at("a")

    def test_mac_phase_superposes(self, medium, paper_gains, rng):
        out = medium.run_phase(
            {"a": np.ones(32, dtype=complex), "b": np.ones(32, dtype=complex)}, rng
        )
        expected = np.sqrt(paper_gains.gar) + np.sqrt(paper_gains.gbr)
        assert np.allclose(out.signal_at("r"), expected, atol=1e-4)
        assert out.received["a"] is None
        assert out.received["b"] is None

    def test_transmitters_recorded(self, medium, rng):
        out = medium.run_phase(
            {"a": np.ones(4, dtype=complex), "b": np.ones(4, dtype=complex)}, rng
        )
        assert out.transmitters == frozenset(("a", "b"))


class TestValidation:
    def test_unknown_node_rejected(self, medium, rng):
        with pytest.raises(InvalidParameterError):
            medium.run_phase({"x": np.ones(4)}, rng)

    def test_none_payload_rejected(self, medium, rng):
        with pytest.raises(HalfDuplexViolationError):
            medium.run_phase({"a": None}, rng)

    def test_empty_phase_rejected(self, medium, rng):
        with pytest.raises(InvalidParameterError):
            medium.run_phase({}, rng)

    def test_length_mismatch_rejected(self, medium, rng):
        with pytest.raises(InvalidParameterError):
            medium.run_phase(
                {"a": np.ones(4, dtype=complex), "b": np.ones(5, dtype=complex)}, rng
            )

    def test_inconsistent_complex_gains_rejected(self, paper_gains):
        bad = link_amplitudes(paper_gains)
        bad[frozenset(("a", "r"))] = 100.0 + 0j
        with pytest.raises(InvalidParameterError):
            HalfDuplexMedium(gains=paper_gains, complex_gains=bad)

    def test_missing_complex_gain_rejected(self, paper_gains):
        partial = link_amplitudes(paper_gains)
        del partial[frozenset(("a", "b"))]
        with pytest.raises(InvalidParameterError):
            HalfDuplexMedium(gains=paper_gains, complex_gains=partial)


class TestNoiseStatistics:
    def test_unit_noise_by_default(self, paper_gains):
        medium = HalfDuplexMedium(gains=paper_gains)
        rng = np.random.default_rng(1)
        out = medium.run_phase({"a": np.zeros(50000, dtype=complex)}, rng)
        noise_power = np.mean(np.abs(out.signal_at("r")) ** 2)
        assert noise_power == pytest.approx(1.0, rel=0.05)
