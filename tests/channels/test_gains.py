"""Unit tests for repro.channels.gains."""

import pytest

from repro.channels.gains import LinkGains
from repro.exceptions import InvalidParameterError


class TestConstruction:
    def test_positive_gains_accepted(self):
        gains = LinkGains(gab=0.2, gar=1.0, gbr=3.16)
        assert gains.gab == pytest.approx(0.2)

    def test_zero_gain_rejected(self):
        with pytest.raises(InvalidParameterError):
            LinkGains(gab=0.0, gar=1.0, gbr=1.0)

    def test_negative_gain_rejected(self):
        with pytest.raises(InvalidParameterError):
            LinkGains(gab=1.0, gar=-1.0, gbr=1.0)

    def test_from_db_roundtrip(self):
        gains = LinkGains.from_db(-7.0, 0.0, 5.0)
        gab_db, gar_db, gbr_db = gains.to_db()
        assert gab_db == pytest.approx(-7.0)
        assert gar_db == pytest.approx(0.0)
        assert gbr_db == pytest.approx(5.0)


class TestAccessors:
    def test_gain_is_reciprocal(self):
        gains = LinkGains.from_db(-7.0, 0.0, 5.0)
        assert gains.gain("a", "r") == gains.gain("r", "a")
        assert gains.gain("a", "b") == gains.gain("b", "a")
        assert gains.gain("b", "r") == gains.gain("r", "b")

    def test_gain_values(self):
        gains = LinkGains(gab=0.5, gar=1.0, gbr=2.0)
        assert gains.gain("a", "b") == pytest.approx(0.5)
        assert gains.gain("a", "r") == pytest.approx(1.0)
        assert gains.gain("b", "r") == pytest.approx(2.0)

    def test_unknown_link_rejected(self):
        gains = LinkGains(gab=0.5, gar=1.0, gbr=2.0)
        with pytest.raises(InvalidParameterError):
            gains.gain("a", "x")
        with pytest.raises(InvalidParameterError):
            gains.gain("a", "a")

    def test_snr_scales_with_power(self):
        gains = LinkGains(gab=0.5, gar=1.0, gbr=2.0)
        assert gains.snr("a", "r", power=10.0) == pytest.approx(10.0)
        assert gains.snr("b", "r", power=10.0) == pytest.approx(20.0)

    def test_snr_rejects_negative_power(self):
        gains = LinkGains(gab=0.5, gar=1.0, gbr=2.0)
        with pytest.raises(InvalidParameterError):
            gains.snr("a", "r", power=-1.0)


class TestTransforms:
    def test_paper_regime_detection(self):
        assert LinkGains.from_db(-7.0, 0.0, 5.0).is_paper_regime()
        assert not LinkGains.from_db(5.0, 0.0, -7.0).is_paper_regime()

    def test_swapped_terminals(self):
        gains = LinkGains(gab=0.5, gar=1.0, gbr=2.0)
        swapped = gains.swapped_terminals()
        assert swapped.gar == pytest.approx(2.0)
        assert swapped.gbr == pytest.approx(1.0)
        assert swapped.gab == pytest.approx(0.5)

    def test_swap_is_involution(self):
        gains = LinkGains(gab=0.5, gar=1.0, gbr=2.0)
        assert gains.swapped_terminals().swapped_terminals() == gains

    def test_scaled(self):
        gains = LinkGains(gab=0.5, gar=1.0, gbr=2.0).scaled(2.0)
        assert gains.gab == pytest.approx(1.0)
        assert gains.gar == pytest.approx(2.0)
        assert gains.gbr == pytest.approx(4.0)

    def test_scaled_rejects_nonpositive(self):
        with pytest.raises(InvalidParameterError):
            LinkGains(gab=0.5, gar=1.0, gbr=2.0).scaled(0.0)
