"""Unit tests for the discrete (binary) bidirectional relay channel."""

import pytest

from repro.channels.binary_relay import BinaryRelayChannel
from repro.core.protocols import Protocol, protocol_schedule
from repro.exceptions import InvalidParameterError
from repro.information.functions import binary_entropy
from repro.network.cutset import cutset_outer_bound
from repro.network.model import bidirectional_relay_network


@pytest.fixture
def channel():
    return BinaryRelayChannel(pab=0.2, par=0.05, pbr=0.02)


class TestChannel:
    def test_crossover_reciprocal(self, channel):
        assert channel.crossover("a", "r") == channel.crossover("r", "a")
        assert channel.crossover("a", "b") == 0.2

    def test_unknown_link_rejected(self, channel):
        with pytest.raises(InvalidParameterError):
            channel.crossover("a", "x")

    def test_crossover_domain(self):
        with pytest.raises(InvalidParameterError):
            BinaryRelayChannel(pab=0.6, par=0.1, pbr=0.1)
        with pytest.raises(InvalidParameterError):
            BinaryRelayChannel(pab=0.1, par=0.1, pbr=0.1, p_mac=0.7)

    def test_mac_noise_defaults_to_par(self, channel):
        assert channel.p_mac == pytest.approx(0.05)

    def test_link_capacity_closed_form(self, channel):
        assert channel.link_capacity("a", "b") == pytest.approx(
            1 - binary_entropy(0.2)
        )


class TestOracle:
    def test_empty_sets_zero(self, channel):
        oracle = channel.oracle()
        assert (
            oracle.mutual_information(0, frozenset(), frozenset("r"), frozenset())
            == 0.0
        )

    def test_single_link_is_bsc_capacity(self, channel):
        oracle = channel.oracle()
        value = oracle.mutual_information(
            0, frozenset("a"), frozenset("r"), frozenset()
        )
        assert value == pytest.approx(1 - binary_entropy(0.05))

    def test_simo_cut_exceeds_single_link(self, channel):
        oracle = channel.oracle()
        simo = oracle.mutual_information(
            0, frozenset("a"), frozenset(("r", "b")), frozenset()
        )
        single = oracle.mutual_information(
            0, frozenset("a"), frozenset("r"), frozenset()
        )
        assert simo > single

    def test_xor_mac_sum_equals_individual(self, channel):
        """On the XOR MAC, I(Xa,Xb;Yr) = I(Xa;Yr|Xb) = 1 - h(p_mac)."""
        oracle = channel.oracle()
        sum_term = oracle.mutual_information(
            0, frozenset(("a", "b")), frozenset("r"), frozenset()
        )
        individual = oracle.mutual_information(
            0, frozenset("a"), frozenset("r"), frozenset("b")
        )
        expected = 1 - binary_entropy(channel.p_mac)
        assert sum_term == pytest.approx(expected)
        assert individual == pytest.approx(expected)

    def test_conditioned_case_uses_mac_noise(self):
        """With a distinct MAC noise, conditioning must use p_mac, not par."""
        channel = BinaryRelayChannel(pab=0.2, par=0.05, pbr=0.02, p_mac=0.15)
        oracle = channel.oracle()
        value = oracle.mutual_information(
            0, frozenset("a"), frozenset("r"), frozenset("b")
        )
        assert value == pytest.approx(1 - binary_entropy(0.15))

    def test_cache_hits(self, channel):
        oracle = channel.oracle()
        args = (0, frozenset("a"), frozenset("r"), frozenset())
        first = oracle.mutual_information(*args)
        second = oracle.mutual_information(*args)
        assert first == second
        assert len(oracle._cache) == 1


class TestEngineIntegration:
    @pytest.mark.parametrize(
        "protocol", [Protocol.MABC, Protocol.TDBC, Protocol.HBC, Protocol.NAIVE4]
    )
    def test_engine_generates_constraints(self, channel, protocol):
        constraints = cutset_outer_bound(
            bidirectional_relay_network(),
            protocol_schedule(protocol),
            channel.oracle(),
        )
        assert len(constraints) == 5
        for constraint in constraints:
            assert all(mi >= 0 for mi in constraint.phase_mi)
            assert any(mi > 0 for mi in constraint.phase_mi)
