"""Unit tests for the per-node transmit power container."""

import numpy as np
import pytest

from repro.channels.power import NODE_ORDER, NodePowers, node_power
from repro.exceptions import InvalidParameterError
from repro.information.functions import db_to_linear


class TestConstruction:
    def test_uniform_factory(self):
        p = NodePowers.uniform(4.0)
        assert (p.pa, p.pb, p.pr) == (4.0, 4.0, 4.0)
        assert p.is_uniform()

    def test_from_db(self):
        p = NodePowers.from_db(0.0, 10.0, 5.0)
        assert p.pa == db_to_linear(0.0)
        assert p.pb == db_to_linear(10.0)
        assert p.pr == db_to_linear(5.0)

    def test_from_mapping(self):
        p = NodePowers.from_mapping({"a": 1.0, "b": 2.0, "r": 3.0})
        assert (p.pa, p.pb, p.pr) == (1.0, 2.0, 3.0)

    def test_from_mapping_rejects_unknown_nodes(self):
        with pytest.raises(InvalidParameterError):
            NodePowers.from_mapping({"a": 1.0, "b": 2.0, "c": 3.0})

    def test_from_mapping_rejects_missing_nodes(self):
        with pytest.raises(InvalidParameterError):
            NodePowers.from_mapping({"a": 1.0, "b": 2.0})

    def test_negative_power_rejected(self):
        with pytest.raises(InvalidParameterError):
            NodePowers(pa=1.0, pb=-0.5, pr=1.0)

    def test_values_coerced_to_float(self):
        p = NodePowers(pa=1, pb=2, pr=3)
        assert isinstance(p.pa, float)


class TestAccessors:
    def test_power_by_node(self):
        p = NodePowers(pa=1.0, pb=2.0, pr=3.0)
        assert [p.power(node) for node in NODE_ORDER] == [1.0, 2.0, 3.0]

    def test_power_rejects_unknown_node(self):
        with pytest.raises(InvalidParameterError):
            NodePowers.uniform(1.0).power("c")

    def test_as_array_follows_node_order(self):
        p = NodePowers(pa=1.0, pb=2.0, pr=3.0)
        assert np.array_equal(p.as_array(), np.array([1.0, 2.0, 3.0]))

    def test_to_db_round_trips(self):
        p = NodePowers.from_db(0.0, 10.0, 5.0)
        assert p.to_db() == pytest.approx((0.0, 10.0, 5.0))

    def test_total(self):
        assert NodePowers(pa=1.0, pb=2.0, pr=3.0).total == 6.0

    def test_is_uniform_is_exact(self):
        assert not NodePowers(pa=1.0, pb=1.0 + 1e-15, pr=1.0).is_uniform()


class TestNodePowerHelper:
    def test_scalar_passthrough(self):
        assert node_power(2.5, "a") == 2.5
        assert node_power(2.5, "r") == 2.5

    def test_mapping_resolves_by_node(self):
        assert node_power({"a": 1.0, "b": 2.0, "r": 3.0}, "b") == 2.0

    def test_node_powers_resolves_by_node(self):
        assert node_power(NodePowers(pa=1.0, pb=2.0, pr=3.0), "r") == 3.0
