"""Unit tests for repro.channels.fading."""

import numpy as np
import pytest

from repro.channels.fading import RayleighFading, RicianFading, sample_gain_ensemble
from repro.channels.gains import LinkGains
from repro.exceptions import InvalidParameterError


class TestRayleigh:
    def test_mean_power_matches(self, rng):
        model = RayleighFading(mean_power=2.5)
        draws = model.sample_power(rng, size=20000)
        assert draws.mean() == pytest.approx(2.5, rel=0.05)

    def test_complex_power_matches(self, rng):
        model = RayleighFading(mean_power=0.5)
        g = model.sample_complex(rng, size=20000)
        assert np.mean(np.abs(g) ** 2) == pytest.approx(0.5, rel=0.05)

    def test_power_is_exponential(self, rng):
        # Exponential distribution: P[X > mean] = e^-1.
        model = RayleighFading(mean_power=1.0)
        draws = model.sample_power(rng, size=20000)
        assert np.mean(draws > 1.0) == pytest.approx(np.exp(-1), abs=0.02)

    def test_rejects_nonpositive_power(self):
        with pytest.raises(InvalidParameterError):
            RayleighFading(mean_power=0.0)


class TestRician:
    def test_reduces_to_rayleigh_at_k_zero(self, rng):
        model = RicianFading(mean_power=1.0, k_factor=0.0)
        draws = model.sample_power(rng, size=20000)
        assert draws.mean() == pytest.approx(1.0, rel=0.05)
        assert np.mean(draws > 1.0) == pytest.approx(np.exp(-1), abs=0.02)

    def test_mean_power_preserved_for_any_k(self, rng):
        for k in (0.5, 2.0, 10.0):
            model = RicianFading(mean_power=3.0, k_factor=k)
            draws = model.sample_power(rng, size=20000)
            assert draws.mean() == pytest.approx(3.0, rel=0.05)

    def test_large_k_concentrates(self, rng):
        model = RicianFading(mean_power=1.0, k_factor=1000.0)
        draws = model.sample_power(rng, size=5000)
        assert draws.std() < 0.1

    def test_rejects_negative_k(self):
        with pytest.raises(InvalidParameterError):
            RicianFading(mean_power=1.0, k_factor=-0.5)


class TestEnsemble:
    def test_size_and_type(self, rng):
        mean = LinkGains.from_db(-7.0, 0.0, 5.0)
        ensemble = sample_gain_ensemble(mean, 32, rng)
        assert len(ensemble) == 32
        assert all(isinstance(g, LinkGains) for g in ensemble)

    def test_ensemble_means_track_pathloss(self, rng):
        mean = LinkGains(gab=0.2, gar=1.0, gbr=3.0)
        ensemble = sample_gain_ensemble(mean, 20000, rng)
        gab = np.mean([g.gab for g in ensemble])
        gar = np.mean([g.gar for g in ensemble])
        gbr = np.mean([g.gbr for g in ensemble])
        assert gab == pytest.approx(0.2, rel=0.05)
        assert gar == pytest.approx(1.0, rel=0.05)
        assert gbr == pytest.approx(3.0, rel=0.05)

    def test_reproducible_with_seed(self):
        mean = LinkGains(gab=0.2, gar=1.0, gbr=3.0)
        e1 = sample_gain_ensemble(mean, 5, np.random.default_rng(42))
        e2 = sample_gain_ensemble(mean, 5, np.random.default_rng(42))
        assert e1 == e2

    def test_rejects_empty_ensemble(self, rng):
        with pytest.raises(InvalidParameterError):
            sample_gain_ensemble(LinkGains(1, 1, 1), 0, rng)
