"""Unit tests for repro.channels.pathloss."""

import pytest

from repro.channels.pathloss import (
    FreeSpacePathLoss,
    LogDistancePathLoss,
    Position,
    RelayGeometry,
    linear_relay_gains,
)
from repro.exceptions import InvalidParameterError


class TestPosition:
    def test_distance(self):
        assert Position(0, 0).distance_to(Position(3, 4)) == pytest.approx(5.0)

    def test_distance_symmetric(self):
        p, q = Position(1.5, -2.0), Position(-0.5, 1.0)
        assert p.distance_to(q) == pytest.approx(q.distance_to(p))

    def test_default_y_is_zero(self):
        assert Position(2.0).y == 0.0


class TestLogDistancePathLoss:
    def test_reference_gain_at_reference_distance(self):
        law = LogDistancePathLoss(
            exponent=3.0, reference_distance=1.0, reference_gain=1.0
        )
        assert law.gain(1.0) == pytest.approx(1.0)

    def test_power_law_decay(self):
        law = LogDistancePathLoss(exponent=3.0)
        assert law.gain(2.0) == pytest.approx(2.0 ** -3)
        assert law.gain(0.5) == pytest.approx(0.5 ** -3)

    def test_free_space_exponent_two(self):
        law = FreeSpacePathLoss()
        assert law.gain(10.0) == pytest.approx(0.01)

    def test_minimum_distance_clamp(self):
        law = LogDistancePathLoss(exponent=3.0, minimum_distance=0.1)
        assert law.gain(0.0) == pytest.approx(law.gain(0.1))

    def test_negative_distance_rejected(self):
        with pytest.raises(InvalidParameterError):
            LogDistancePathLoss().gain(-1.0)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(InvalidParameterError):
            LogDistancePathLoss(exponent=0.0)
        with pytest.raises(InvalidParameterError):
            LogDistancePathLoss(reference_distance=-1.0)
        with pytest.raises(InvalidParameterError):
            LogDistancePathLoss(reference_gain=0.0)
        with pytest.raises(InvalidParameterError):
            LogDistancePathLoss(minimum_distance=0.0)

    def test_monotone_decreasing(self):
        law = LogDistancePathLoss(exponent=2.5)
        gains = [law.gain(d) for d in (0.5, 1.0, 2.0, 4.0)]
        assert all(g1 > g2 for g1, g2 in zip(gains, gains[1:]))


class TestRelayGeometry:
    def test_link_gains_from_positions(self):
        geometry = RelayGeometry(
            terminal_a=Position(0.0),
            terminal_b=Position(1.0),
            relay=Position(0.5),
            path_loss=LogDistancePathLoss(exponent=3.0),
        )
        gains = geometry.link_gains()
        assert gains.gab == pytest.approx(1.0)
        assert gains.gar == pytest.approx(0.5 ** -3)
        assert gains.gbr == pytest.approx(0.5 ** -3)


class TestLinearRelayGains:
    def test_direct_link_normalized(self):
        gains = linear_relay_gains(0.7)
        assert gains.gab == pytest.approx(1.0)

    def test_midpoint_symmetric(self):
        gains = linear_relay_gains(0.5, exponent=3.0)
        assert gains.gar == pytest.approx(gains.gbr)
        assert gains.gar == pytest.approx(8.0)

    def test_paper_regime_when_relay_nearer_b(self):
        assert linear_relay_gains(0.7).is_paper_regime()
        assert not linear_relay_gains(0.3).is_paper_regime()

    def test_fraction_domain(self):
        with pytest.raises(InvalidParameterError):
            linear_relay_gains(0.0)
        with pytest.raises(InvalidParameterError):
            linear_relay_gains(1.0)

    def test_terminal_distance_domain(self):
        with pytest.raises(InvalidParameterError):
            linear_relay_gains(0.5, terminal_distance=0.0)

    def test_scale_invariance_of_ratios(self):
        near = linear_relay_gains(0.6, terminal_distance=1.0)
        far = linear_relay_gains(0.6, terminal_distance=10.0)
        assert near.gar / near.gab == pytest.approx(far.gar / far.gab)
        assert near.gbr / near.gab == pytest.approx(far.gbr / far.gab)
