"""Unit tests for repro.channels.dmc."""

import numpy as np
import pytest

from repro.channels.dmc import (
    DiscreteMemorylessChannel,
    binary_erasure_channel,
    binary_symmetric_channel,
    z_channel,
)
from repro.exceptions import InvalidDistributionError, InvalidParameterError
from repro.information.functions import binary_entropy


class TestConstruction:
    def test_valid_matrix(self):
        dmc = DiscreteMemorylessChannel(np.array([[0.9, 0.1], [0.3, 0.7]]))
        assert dmc.n_inputs == 2
        assert dmc.n_outputs == 2

    def test_rejects_unnormalized_rows(self):
        with pytest.raises(InvalidDistributionError):
            DiscreteMemorylessChannel(np.array([[0.9, 0.2], [0.3, 0.7]]))

    def test_rejects_negative_entries(self):
        with pytest.raises(InvalidDistributionError):
            DiscreteMemorylessChannel(np.array([[1.1, -0.1], [0.3, 0.7]]))

    def test_factories_have_expected_shapes(self):
        assert binary_symmetric_channel(0.1).matrix.shape == (2, 2)
        assert binary_erasure_channel(0.1).matrix.shape == (2, 3)
        assert z_channel(0.1).matrix.shape == (2, 2)

    def test_factory_domain_checks(self):
        with pytest.raises(InvalidParameterError):
            binary_symmetric_channel(1.5)
        with pytest.raises(InvalidParameterError):
            binary_erasure_channel(-0.1)
        with pytest.raises(InvalidParameterError):
            z_channel(2.0)


class TestTransmission:
    def test_noiseless_bsc_is_identity(self, rng):
        dmc = binary_symmetric_channel(0.0)
        x = rng.integers(0, 2, size=1000)
        np.testing.assert_array_equal(dmc.transmit(x, rng), x)

    def test_always_flipping_bsc(self, rng):
        dmc = binary_symmetric_channel(1.0)
        x = rng.integers(0, 2, size=1000)
        np.testing.assert_array_equal(dmc.transmit(x, rng), 1 - x)

    def test_empirical_crossover_rate(self, rng):
        dmc = binary_symmetric_channel(0.2)
        x = np.zeros(20000, dtype=int)
        y = dmc.transmit(x, rng)
        assert y.mean() == pytest.approx(0.2, abs=0.01)

    def test_erasure_symbol_frequency(self, rng):
        dmc = binary_erasure_channel(0.3)
        x = rng.integers(0, 2, size=20000)
        y = dmc.transmit(x, rng)
        assert np.mean(y == 2) == pytest.approx(0.3, abs=0.01)

    def test_out_of_alphabet_input_rejected(self, rng):
        dmc = binary_symmetric_channel(0.1)
        with pytest.raises(InvalidParameterError):
            dmc.transmit(np.array([0, 1, 2]), rng)


class TestComposition:
    def test_two_bscs_compose(self):
        p, q = 0.1, 0.2
        composed = binary_symmetric_channel(p).compose(binary_symmetric_channel(q))
        effective = p * (1 - q) + (1 - p) * q
        assert composed.matrix[0, 1] == pytest.approx(effective)

    def test_incompatible_compose_rejected(self):
        with pytest.raises(InvalidParameterError):
            binary_erasure_channel(0.1).compose(binary_symmetric_channel(0.1))


class TestInformationMethods:
    def test_bsc_capacity(self):
        assert binary_symmetric_channel(0.11).capacity() == pytest.approx(
            1 - binary_entropy(0.11), abs=1e-7
        )

    def test_bec_capacity(self):
        assert binary_erasure_channel(0.25).capacity() == pytest.approx(0.75, abs=1e-7)

    def test_mutual_information_at_uniform(self):
        dmc = binary_symmetric_channel(0.11)
        assert dmc.mutual_information([0.5, 0.5]) == pytest.approx(
            1 - binary_entropy(0.11)
        )

    def test_capacity_upper_bounds_any_input(self):
        dmc = z_channel(0.3)
        capacity = dmc.capacity()
        for p0 in (0.1, 0.4, 0.5, 0.8):
            assert dmc.mutual_information([p0, 1 - p0]) <= capacity + 1e-9
