"""Unit tests for repro.channels.awgn."""

import numpy as np
import pytest

from repro.channels.awgn import ComplexAwgn, apply_link, apply_mac, measure_snr
from repro.exceptions import InvalidParameterError


class TestComplexAwgn:
    def test_noise_power(self, rng):
        noise = ComplexAwgn(noise_power=2.0)
        samples = noise.sample(rng, 50000)
        assert np.mean(np.abs(samples) ** 2) == pytest.approx(2.0, rel=0.05)

    def test_circular_symmetry(self, rng):
        noise = ComplexAwgn(noise_power=1.0)
        samples = noise.sample(rng, 50000)
        assert np.mean(samples.real * samples.imag) == pytest.approx(0.0, abs=0.02)
        assert np.mean(samples.real ** 2) == pytest.approx(0.5, rel=0.1)

    def test_rejects_nonpositive_power(self):
        with pytest.raises(InvalidParameterError):
            ComplexAwgn(noise_power=0.0)

    def test_shape(self, rng):
        assert ComplexAwgn().sample(rng, (3, 4)).shape == (3, 4)


class TestApplyLink:
    def test_gain_applied(self, rng):
        x = np.ones(10000, dtype=complex)
        y = apply_link(x, 2.0 + 0j, ComplexAwgn(1e-12), rng)
        assert np.allclose(y, 2.0, atol=1e-4)

    def test_complex_gain_rotates(self, rng):
        x = np.ones(100, dtype=complex)
        y = apply_link(x, 1j, ComplexAwgn(1e-12), rng)
        assert np.allclose(y, 1j, atol=1e-4)


class TestApplyMac:
    def test_superposition(self, rng):
        xa = np.ones(1000, dtype=complex)
        xb = -np.ones(1000, dtype=complex)
        y = apply_mac([(xa, 1.0), (xb, 0.5)], ComplexAwgn(1e-12), rng)
        assert np.allclose(y, 0.5, atol=1e-4)

    def test_length_mismatch_rejected(self, rng):
        with pytest.raises(InvalidParameterError):
            apply_mac([(np.ones(3), 1.0), (np.ones(4), 1.0)], ComplexAwgn(), rng)

    def test_empty_rejected(self, rng):
        with pytest.raises(InvalidParameterError):
            apply_mac([], ComplexAwgn(), rng)


class TestMeasureSnr:
    def test_measured_snr_tracks_truth(self, rng):
        x = np.exp(1j * rng.uniform(0, 2 * np.pi, 20000))
        gain = 2.0 + 0j  # signal power 4, noise power 1 -> SNR 4
        y = apply_link(x, gain, ComplexAwgn(1.0), rng)
        assert measure_snr(x, y, gain) == pytest.approx(4.0, rel=0.1)

    def test_infinite_snr_when_noiseless(self):
        x = np.ones(10, dtype=complex)
        assert measure_snr(x, 3.0 * x, 3.0 + 0j) == float("inf")

    def test_shape_mismatch_rejected(self):
        with pytest.raises(InvalidParameterError):
            measure_snr(np.ones(3), np.ones(4), 1.0)
