"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.channels.gains import LinkGains
from repro.core.gaussian import GaussianChannel
from repro.information.functions import db_to_linear


@pytest.fixture
def rng() -> np.random.Generator:
    """A deterministic random generator per test."""
    return np.random.default_rng(0xC0FFEE)


@pytest.fixture
def paper_gains() -> LinkGains:
    """The Fig. 4 gain triple: G_ab = -7 dB, G_ar = 0 dB, G_br = 5 dB."""
    return LinkGains.from_db(-7.0, 0.0, 5.0)


@pytest.fixture
def channel_low(paper_gains) -> GaussianChannel:
    """Fig. 4 top panel: P = 0 dB."""
    return GaussianChannel(gains=paper_gains, power=db_to_linear(0.0))


@pytest.fixture
def channel_high(paper_gains) -> GaussianChannel:
    """Fig. 4 bottom panel: P = 10 dB."""
    return GaussianChannel(gains=paper_gains, power=db_to_linear(10.0))


def random_link_gains(rng: np.random.Generator, *, low_db: float = -10.0,
                      high_db: float = 15.0) -> LinkGains:
    """Random reciprocal gains for property tests (shared helper)."""
    values = rng.uniform(low_db, high_db, size=3)
    return LinkGains.from_db(float(values[0]), float(values[1]), float(values[2]))
