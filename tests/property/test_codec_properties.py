"""Property-based tests for the coding/modulation pipeline."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simulation.bits import bits_to_int, int_to_bits, pad_bits, xor_bits
from repro.simulation.convolutional import TEST_CODE
from repro.simulation.crc import CRC8, CRC16_CCITT
from repro.simulation.interleaver import BlockInterleaver, RandomInterleaver
from repro.simulation.linkcodec import LinkCodec
from repro.simulation.modulation import Bpsk, Qpsk, hard_decisions

bit_lists = st.lists(st.integers(min_value=0, max_value=1),
                     min_size=1, max_size=200)


class TestBitUtilityProperties:
    @given(st.integers(min_value=0, max_value=2 ** 30 - 1))
    def test_int_bits_roundtrip(self, value):
        assert bits_to_int(int_to_bits(value, 30)) == value

    @given(bit_lists)
    def test_xor_self_annihilates(self, bits):
        arr = np.array(bits, dtype=np.uint8)
        assert xor_bits(arr, arr).sum() == 0

    @given(bit_lists, st.integers(min_value=0, max_value=50))
    def test_pad_preserves_prefix(self, bits, extra):
        arr = np.array(bits, dtype=np.uint8)
        padded = pad_bits(arr, arr.size + extra)
        np.testing.assert_array_equal(padded[: arr.size], arr)
        assert padded[arr.size:].sum() == 0


class TestCrcProperties:
    @given(bit_lists)
    def test_append_check_roundtrip(self, bits):
        frame = CRC16_CCITT.append(np.array(bits, dtype=np.uint8))
        assert CRC16_CCITT.check(frame)

    @given(bit_lists, st.integers(min_value=0, max_value=10 ** 9))
    def test_single_flip_always_detected(self, bits, position_seed):
        frame = CRC8.append(np.array(bits, dtype=np.uint8))
        corrupted = frame.copy()
        corrupted[position_seed % frame.size] ^= 1
        assert not CRC8.check(corrupted)

    @given(bit_lists)
    def test_linearity(self, bits):
        a = np.array(bits, dtype=np.uint8)
        b = np.roll(a, 1)
        lhs = CRC16_CCITT.checksum(xor_bits(a, b))
        rhs = xor_bits(CRC16_CCITT.checksum(a), CRC16_CCITT.checksum(b))
        np.testing.assert_array_equal(lhs, rhs)


class TestConvolutionalProperties:
    @settings(max_examples=30, deadline=None)
    @given(bit_lists)
    def test_decode_encode_identity(self, bits):
        arr = np.array(bits, dtype=np.uint8)
        coded = TEST_CODE.encode(arr)
        decoded = TEST_CODE.decode_hard(coded, arr.size)
        np.testing.assert_array_equal(decoded, arr)

    @settings(max_examples=30, deadline=None)
    @given(bit_lists, st.integers(min_value=0, max_value=10 ** 9))
    def test_single_coded_bit_error_corrected(self, bits, position_seed):
        arr = np.array(bits, dtype=np.uint8)
        coded = TEST_CODE.encode(arr)
        corrupted = coded.copy()
        corrupted[position_seed % coded.size] ^= 1
        decoded = TEST_CODE.decode_hard(corrupted, arr.size)
        np.testing.assert_array_equal(decoded, arr)

    @given(bit_lists, bit_lists)
    def test_linearity(self, bits_a, bits_b):
        n = min(len(bits_a), len(bits_b))
        a = np.array(bits_a[:n], dtype=np.uint8)
        b = np.array(bits_b[:n], dtype=np.uint8)
        lhs = TEST_CODE.encode(np.bitwise_xor(a, b))
        rhs = np.bitwise_xor(TEST_CODE.encode(a), TEST_CODE.encode(b))
        np.testing.assert_array_equal(lhs, rhs)


class TestInterleaverProperties:
    @given(st.integers(min_value=0, max_value=2 ** 31 - 1),
           st.integers(min_value=1, max_value=500))
    def test_random_interleaver_roundtrip(self, seed, length):
        interleaver = RandomInterleaver(seed=seed)
        data = np.arange(length)
        out = interleaver.deinterleave(interleaver.interleave(data))
        np.testing.assert_array_equal(out, data)

    @given(st.integers(min_value=1, max_value=12),
           st.integers(min_value=1, max_value=12),
           st.data())
    def test_block_interleaver_roundtrip(self, n_rows, n_cols, data):
        length = data.draw(st.integers(min_value=1, max_value=n_rows * n_cols))
        interleaver = BlockInterleaver(rows=n_rows, cols=n_cols)
        values = np.arange(length)
        out = interleaver.deinterleave(interleaver.interleave(values))
        np.testing.assert_array_equal(out, values)


class TestModulationProperties:
    @given(bit_lists)
    def test_bpsk_roundtrip(self, bits):
        arr = np.array(bits, dtype=np.uint8)
        mod = Bpsk()
        llrs = mod.demodulate_llr(mod.modulate(arr), 1.0 + 0j, noise_power=1.0)
        np.testing.assert_array_equal(hard_decisions(llrs), arr)

    @given(st.lists(st.integers(min_value=0, max_value=1),
                    min_size=2, max_size=200).filter(lambda b: len(b) % 2 == 0))
    def test_qpsk_roundtrip(self, bits):
        arr = np.array(bits, dtype=np.uint8)
        mod = Qpsk()
        llrs = mod.demodulate_llr(mod.modulate(arr), 1.0 + 0j, noise_power=1.0)
        np.testing.assert_array_equal(hard_decisions(llrs), arr)


class TestLinkCodecProperties:
    @settings(max_examples=15, deadline=None)
    @given(st.integers(min_value=8, max_value=64),
           st.integers(min_value=0, max_value=2 ** 31 - 1))
    def test_clean_roundtrip_any_size(self, payload_bits, seed):
        rng = np.random.default_rng(seed)
        codec = LinkCodec(payload_bits=payload_bits, code=TEST_CODE, crc=CRC8)
        payload = rng.integers(0, 2, size=payload_bits, dtype=np.uint8)
        frame = codec.decode(codec.encode(payload), 1.0 + 0j, 1e-9)
        assert frame.crc_ok
        np.testing.assert_array_equal(frame.payload, payload)
