"""Property: the Lemma-1 engine reproduces the hand-coded theorem bounds.

The outer bounds of Theorems 2, 4 and 6 were transcribed by hand in
:mod:`repro.core.bounds`; the cut-set engine derives them mechanically from
the protocol schedules. On any channel the two must agree constraint by
constraint — this is the strongest internal-consistency check in the suite.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.channels.gains import LinkGains
from repro.core.bounds import bound_for
from repro.core.gaussian import GaussianChannel
from repro.core.protocols import Protocol, protocol_schedule
from repro.core.terms import BoundKind
from repro.network.cutset import GaussianMIOracle, cutset_outer_bound
from repro.network.model import bidirectional_relay_network

seeds = st.integers(min_value=0, max_value=2 ** 31 - 1)


def random_channel(seed: int) -> GaussianChannel:
    rng = np.random.default_rng(seed)
    gains = LinkGains.from_db(
        float(rng.uniform(-15, 10)),
        float(rng.uniform(-10, 15)),
        float(rng.uniform(-10, 15)),
    )
    return GaussianChannel(gains=gains, power=10 ** float(rng.uniform(-1, 2)))


def normalized_constraints_from_engine(channel, protocol):
    network = bidirectional_relay_network()
    oracle = GaussianMIOracle(gains=channel.gains, power=channel.power)
    constraints = cutset_outer_bound(network, protocol_schedule(protocol), oracle)
    return sorted(
        (tuple(sorted(c.message_names)), tuple(np.round(c.phase_mi, 9)))
        for c in constraints
    )


def normalized_constraints_from_theorem(channel, protocol):
    evaluated = channel.evaluate(bound_for(protocol, BoundKind.OUTER))
    return sorted(
        (tuple(sorted(c.rates)), tuple(np.round(c.coefficients, 9)))
        for c in evaluated.constraints
    )


class TestEngineMatchesTheorems:
    @settings(max_examples=25, deadline=None)
    @given(seeds)
    def test_mabc_theorem2_converse(self, seed):
        channel = random_channel(seed)
        assert normalized_constraints_from_engine(channel, Protocol.MABC) == \
            normalized_constraints_from_theorem(channel, Protocol.MABC)

    @settings(max_examples=25, deadline=None)
    @given(seeds)
    def test_tdbc_theorem4(self, seed):
        channel = random_channel(seed)
        assert normalized_constraints_from_engine(channel, Protocol.TDBC) == \
            normalized_constraints_from_theorem(channel, Protocol.TDBC)

    @settings(max_examples=25, deadline=None)
    @given(seeds)
    def test_hbc_theorem6_independent_inputs(self, seed):
        channel = random_channel(seed)
        assert normalized_constraints_from_engine(channel, Protocol.HBC) == \
            normalized_constraints_from_theorem(channel, Protocol.HBC)

    @settings(max_examples=10, deadline=None)
    @given(seeds)
    def test_non_df_network_drops_sum_constraint(self, seed):
        """The paper's remark: no relay decoding -> no sum-rate cut."""
        channel = random_channel(seed)
        network = bidirectional_relay_network(relay_decodes=False)
        oracle = GaussianMIOracle(gains=channel.gains, power=channel.power)
        constraints = cutset_outer_bound(
            network, protocol_schedule(Protocol.MABC), oracle
        )
        rate_tuples = {tuple(sorted(c.message_names)) for c in constraints}
        assert ("Ra", "Rb") not in rate_tuples
