"""Property-based tests for the information-theory substrate."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.information.blahut_arimoto import blahut_arimoto
from repro.information.discrete import (
    entropy,
    joint_from_channel,
    marginal,
    mutual_information,
    normalize_distribution,
)
from repro.information.functions import (
    binary_entropy,
    db_to_linear,
    gaussian_capacity,
    inverse_gaussian_capacity,
    linear_to_db,
)

snr = st.floats(min_value=0.0, max_value=1e6, allow_nan=False)
positive_snr = st.floats(min_value=1e-6, max_value=1e6, allow_nan=False)


class TestCapacityFunction:
    @given(snr)
    def test_nonnegative(self, x):
        assert gaussian_capacity(x) >= 0.0

    @given(positive_snr, positive_snr)
    def test_monotone(self, x, y):
        lo, hi = sorted((x, y))
        assert gaussian_capacity(lo) <= gaussian_capacity(hi) + 1e-12

    @given(positive_snr, positive_snr)
    def test_concave_midpoint(self, x, y):
        mid = gaussian_capacity((x + y) / 2.0)
        chord = (gaussian_capacity(x) + gaussian_capacity(y)) / 2.0
        assert mid >= chord - 1e-9

    @given(positive_snr, positive_snr)
    def test_subadditive_in_snr(self, x, y):
        """C(x + y) <= C(x) + C(y): why the MAC sum constraint binds."""
        assert gaussian_capacity(x + y) <= (
            gaussian_capacity(x) + gaussian_capacity(y) + 1e-9
        )

    @given(st.floats(min_value=0.0, max_value=40.0))
    def test_inverse_roundtrip(self, rate):
        assert gaussian_capacity(inverse_gaussian_capacity(rate)) == pytest.approx(
            rate, abs=1e-9
        )

    @given(st.floats(min_value=-80.0, max_value=80.0))
    def test_db_roundtrip(self, value_db):
        assert linear_to_db(db_to_linear(value_db)) == pytest.approx(
            value_db, abs=1e-9
        )


class TestBinaryEntropyProperties:
    @given(st.floats(min_value=0.0, max_value=1.0))
    def test_bounded(self, p):
        assert 0.0 <= binary_entropy(p) <= 1.0

    @given(st.floats(min_value=0.0, max_value=1.0))
    def test_symmetric(self, p):
        assert binary_entropy(p) == pytest.approx(binary_entropy(1.0 - p))


weights = st.lists(st.floats(min_value=1e-3, max_value=1.0),
                   min_size=2, max_size=6)


class TestDiscreteEntropyProperties:
    @given(weights)
    def test_entropy_bounds(self, raw):
        p = normalize_distribution(np.array(raw))
        h = entropy(p)
        assert -1e-12 <= h <= np.log2(p.size) + 1e-9

    @given(weights, weights)
    def test_mi_nonnegative_and_symmetric(self, wx, wy):
        joint = np.outer(normalize_distribution(np.array(wx)),
                         normalize_distribution(np.array(wy)))
        # Perturb towards correlation while keeping validity.
        joint = normalize_distribution(joint + joint.T @ joint if
                                       joint.shape[0] == joint.shape[1]
                                       else joint)
        mi_xy = mutual_information(joint, [0], [1])
        mi_yx = mutual_information(joint, [1], [0])
        assert mi_xy >= 0.0
        assert mi_xy == pytest.approx(mi_yx, abs=1e-9)

    @given(weights)
    def test_mi_bounded_by_marginal_entropies(self, raw):
        rng = np.random.default_rng(abs(hash(tuple(raw))) % (2 ** 31))
        joint = normalize_distribution(rng.random((3, 3)))
        mi = mutual_information(joint, [0], [1])
        assert mi <= entropy(marginal(joint, [0])) + 1e-9
        assert mi <= entropy(marginal(joint, [1])) + 1e-9


rows = st.integers(min_value=2, max_value=4)
cols = st.integers(min_value=2, max_value=4)


class TestBlahutArimotoProperties:
    @settings(max_examples=20, deadline=None)
    @given(rows, cols, st.integers(min_value=0, max_value=2 ** 31 - 1))
    def test_capacity_dominates_uniform_input_mi(self, n_in, n_out, seed):
        rng = np.random.default_rng(seed)
        raw = rng.random((n_in, n_out)) + 1e-3
        matrix = raw / raw.sum(axis=1, keepdims=True)
        result = blahut_arimoto(matrix, tol=1e-6, max_iter=50_000)
        uniform = np.full(n_in, 1.0 / n_in)
        joint = joint_from_channel(uniform, matrix)
        assert result.capacity >= mutual_information(joint, [0], [1]) - 1e-7

    @settings(max_examples=20, deadline=None)
    @given(rows, cols, st.integers(min_value=0, max_value=2 ** 31 - 1))
    def test_capacity_bounded_by_alphabets(self, n_in, n_out, seed):
        rng = np.random.default_rng(seed)
        raw = rng.random((n_in, n_out)) + 1e-3
        matrix = raw / raw.sum(axis=1, keepdims=True)
        capacity = blahut_arimoto(matrix, tol=1e-6, max_iter=50_000).capacity
        assert capacity <= min(np.log2(n_in), np.log2(n_out)) + 1e-7
