"""Property-based tests of the rate-region geometry on random channels."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.channels.gains import LinkGains
from repro.core.capacity import (
    achievable_region,
    optimal_sum_rate,
    outer_bound_region,
)
from repro.core.gaussian import GaussianChannel
from repro.core.protocols import Protocol

seeds = st.integers(min_value=0, max_value=2 ** 31 - 1)


def random_channel(seed: int) -> GaussianChannel:
    rng = np.random.default_rng(seed)
    gains = LinkGains.from_db(
        float(rng.uniform(-12, 8)),
        float(rng.uniform(-8, 12)),
        float(rng.uniform(-8, 12)),
    )
    power_db = float(rng.uniform(-5, 18))
    return GaussianChannel(gains=gains, power=10 ** (power_db / 10))


class TestProtocolNesting:
    @settings(max_examples=15, deadline=None)
    @given(seeds)
    def test_hbc_sum_rate_dominates(self, seed):
        """MABC and TDBC are zero-duration special cases of HBC."""
        channel = random_channel(seed)
        hbc = optimal_sum_rate(Protocol.HBC, channel).sum_rate
        assert hbc >= optimal_sum_rate(Protocol.MABC, channel).sum_rate - 1e-7
        assert hbc >= optimal_sum_rate(Protocol.TDBC, channel).sum_rate - 1e-7

    @settings(max_examples=10, deadline=None)
    @given(seeds)
    def test_outer_dominates_inner_sum_rate(self, seed):
        channel = random_channel(seed)
        for protocol in (Protocol.TDBC, Protocol.HBC):
            inner = optimal_sum_rate(protocol, channel).sum_rate
            outer = outer_bound_region(protocol, channel).max_sum_rate().sum_rate
            assert outer >= inner - 1e-7

    @settings(max_examples=10, deadline=None)
    @given(seeds)
    def test_power_monotonicity(self, seed):
        channel = random_channel(seed)
        bigger = channel.with_power(channel.power * 2.0)
        for protocol in Protocol:
            assert optimal_sum_rate(protocol, bigger).sum_rate >= \
                optimal_sum_rate(protocol, channel).sum_rate - 1e-9


class TestRegionGeometry:
    @settings(max_examples=8, deadline=None)
    @given(seeds)
    def test_boundary_points_feasible(self, seed):
        channel = random_channel(seed)
        region = achievable_region(Protocol.MABC, channel)
        for ra, rb in region.boundary(7):
            assert region.contains(ra * 0.999, rb * 0.999, tol=1e-7)

    @settings(max_examples=8, deadline=None)
    @given(seeds)
    def test_convexity_midpoints(self, seed):
        """Time sharing makes the union region convex."""
        channel = random_channel(seed)
        region = achievable_region(Protocol.TDBC, channel)
        boundary = region.boundary(7)
        for i in range(len(boundary) - 1):
            mid = 0.5 * (boundary[i] + boundary[i + 1])
            assert region.contains(mid[0] * 0.999, mid[1] * 0.999, tol=1e-7)

    @settings(max_examples=8, deadline=None)
    @given(seeds)
    def test_scaling_down_stays_inside(self, seed):
        channel = random_channel(seed)
        region = achievable_region(Protocol.HBC, channel)
        best = region.max_sum_rate()
        for factor in (0.2, 0.5, 0.9):
            assert region.contains(best.ra * factor, best.rb * factor)

    @settings(max_examples=8, deadline=None)
    @given(seeds)
    def test_sum_rate_consistent_with_support(self, seed):
        channel = random_channel(seed)
        region = achievable_region(Protocol.MABC, channel)
        best = region.max_sum_rate()
        support = region.support(1.0, 1.0)
        assert best.sum_rate == pytest.approx(support.sum_rate, abs=1e-7)


class TestTerminalSymmetry:
    @settings(max_examples=10, deadline=None)
    @given(seeds)
    def test_swapping_terminals_preserves_sum_rate(self, seed):
        """Relabeling a <-> b cannot change the optimal sum rate."""
        channel = random_channel(seed)
        swapped = GaussianChannel(gains=channel.gains.swapped_terminals(),
                                  power=channel.power)
        for protocol in Protocol:
            original = optimal_sum_rate(protocol, channel).sum_rate
            mirrored = optimal_sum_rate(protocol, swapped).sum_rate
            assert original == pytest.approx(mirrored, abs=1e-7)
