"""Property-based tests for the group algebra (network coding substrate)."""

from hypothesis import given
from hypothesis import strategies as st

from repro.network.groups import CyclicGroup, XorGroup, relay_combine, relay_resolve

orders = st.integers(min_value=1, max_value=10_000)
widths = st.integers(min_value=1, max_value=24)


@st.composite
def cyclic_group_and_elements(draw, n_elements=3):
    order = draw(orders)
    elements = [draw(st.integers(min_value=0, max_value=order - 1))
                for _ in range(n_elements)]
    return CyclicGroup(order), elements


@st.composite
def xor_group_and_elements(draw, n_elements=3):
    width = draw(widths)
    elements = [draw(st.integers(min_value=0, max_value=(1 << width) - 1))
                for _ in range(n_elements)]
    return XorGroup(width), elements


class TestCyclicGroupLaws:
    @given(cyclic_group_and_elements())
    def test_associativity(self, data):
        group, (x, y, z) = data
        assert group.add(group.add(x, y), z) == group.add(x, group.add(y, z))

    @given(cyclic_group_and_elements(n_elements=1))
    def test_identity(self, data):
        group, (x,) = data
        assert group.add(x, group.identity) == x
        assert group.add(group.identity, x) == x

    @given(cyclic_group_and_elements(n_elements=1))
    def test_inverse(self, data):
        group, (x,) = data
        assert group.add(x, group.negate(x)) == group.identity

    @given(cyclic_group_and_elements(n_elements=2))
    def test_commutativity(self, data):
        group, (x, y) = data
        assert group.add(x, y) == group.add(y, x)

    @given(cyclic_group_and_elements(n_elements=2))
    def test_relay_roundtrip(self, data):
        """The Theorem-2 decoding step: own message + combined -> partner."""
        group, (wa, wb) = data
        combined = relay_combine(group, wa, wb)
        assert relay_resolve(group, combined, wa) == wb
        assert relay_resolve(group, combined, wb) == wa


class TestXorGroupLaws:
    @given(xor_group_and_elements())
    def test_associativity(self, data):
        group, (x, y, z) = data
        assert group.add(group.add(x, y), z) == group.add(x, group.add(y, z))

    @given(xor_group_and_elements(n_elements=1))
    def test_self_inverse(self, data):
        group, (x,) = data
        assert group.add(x, x) == group.identity

    @given(xor_group_and_elements(n_elements=2))
    def test_relay_roundtrip(self, data):
        group, (wa, wb) = data
        combined = relay_combine(group, wa, wb)
        assert relay_resolve(group, combined, wa) == wb
        assert relay_resolve(group, combined, wb) == wa

    @given(xor_group_and_elements(n_elements=2))
    def test_commutativity(self, data):
        group, (x, y) = data
        assert group.add(x, y) == group.add(y, x)
