"""Property-based cross-validation of the two LP backends."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import InfeasibleProblemError, UnboundedProblemError
from repro.optimize.linprog import LinearProgram, solve_lp

seeds = st.integers(min_value=0, max_value=2 ** 31 - 1)


def random_bounded_lp(seed: int) -> LinearProgram:
    """A random LP with a bounded, non-empty feasible set.

    Feasibility: x = 0 satisfies every `A x <= b` with b >= 0.
    Boundedness: every variable is capped by an identity row.
    """
    rng = np.random.default_rng(seed)
    n = int(rng.integers(2, 6))
    m = int(rng.integers(1, 5))
    a_ub = np.vstack([rng.normal(size=(m, n)), np.eye(n)])
    b_ub = np.concatenate([rng.uniform(0.1, 2.0, size=m),
                           rng.uniform(0.5, 5.0, size=n)])
    c = rng.normal(size=n)
    return LinearProgram(c=c, a_ub=a_ub, b_ub=b_ub)


def random_simplex_lp(seed: int) -> LinearProgram:
    """A random LP over the probability simplex (like duration problems)."""
    rng = np.random.default_rng(seed)
    n = int(rng.integers(2, 6))
    c = rng.normal(size=n)
    a_eq = np.ones((1, n))
    b_eq = np.array([1.0])
    a_ub = rng.normal(size=(2, n))
    b_ub = rng.uniform(0.5, 3.0, size=2)
    return LinearProgram(c=c, a_ub=a_ub, b_ub=b_ub, a_eq=a_eq, b_eq=b_eq)


class TestBackendAgreement:
    @settings(max_examples=40, deadline=None)
    @given(seeds)
    def test_bounded_lps_agree(self, seed):
        problem = random_bounded_lp(seed)
        ours = solve_lp(problem, backend="simplex")
        ref = solve_lp(problem, backend="scipy")
        assert ours.objective == pytest.approx(ref.objective, abs=1e-7)

    @settings(max_examples=40, deadline=None)
    @given(seeds)
    def test_simplex_constrained_lps_agree(self, seed):
        problem = random_simplex_lp(seed)
        try:
            ref = solve_lp(problem, backend="scipy")
        except InfeasibleProblemError:
            with pytest.raises(InfeasibleProblemError):
                solve_lp(problem, backend="simplex")
            return
        ours = solve_lp(problem, backend="simplex")
        assert ours.objective == pytest.approx(ref.objective, abs=1e-7)

    @settings(max_examples=40, deadline=None)
    @given(seeds)
    def test_solutions_are_feasible(self, seed):
        problem = random_bounded_lp(seed)
        for backend in ("simplex", "scipy"):
            result = solve_lp(problem, backend=backend)
            assert np.all(result.x >= -1e-9)
            assert np.all(problem.a_ub @ result.x <= problem.b_ub + 1e-7)

    @settings(max_examples=25, deadline=None)
    @given(seeds)
    def test_objective_matches_point(self, seed):
        problem = random_bounded_lp(seed)
        result = solve_lp(problem, backend="simplex")
        assert result.objective == pytest.approx(float(problem.c @ result.x),
                                                 abs=1e-9)
