"""The redesigned PowerPolicy API and the power-allocation scenarios."""

import numpy as np
import pytest

from repro.api import evaluate
from repro.campaign.spec import FadingSpec
from repro.core.protocols import Protocol
from repro.exceptions import InvalidParameterError
from repro.information.functions import db_to_linear
from repro.scenarios import PowerPolicy, Scenario, Topology, get_scenario
from repro.scenarios.builtin import relay_share_splits

UNIFORM = (1.0 / 3.0, 1.0 / 3.0, 1.0 / 3.0)


class TestFactories:
    def test_uniform_is_the_old_default(self):
        policy = PowerPolicy.uniform(powers_db=(0.0, 10.0))
        assert policy.powers_db == (0.0, 10.0)
        assert policy.allocations_db is None
        assert policy.allocation_axis() is None

    def test_per_node_builds_allocation_axis(self):
        policy = PowerPolicy.per_node(
            (10.0,),
            allocations_db=((0.0, 0.0, 0.0), (-3.0, -3.0, 3.0)),
            labels=("even", "relay-heavy"),
        )
        axis = policy.allocation_axis()
        assert axis is not None
        assert axis.name == "power_allocation"
        assert axis.display_labels == ("even", "relay-heavy")
        assert axis.values[1] == {"node_powers_db": [-3.0, -3.0, 3.0]}

    def test_single_zero_allocation_gets_no_axis(self):
        policy = PowerPolicy.per_node((10.0,), allocations_db=((0.0, 0.0, 0.0),))
        assert policy.allocation_axis() is None

    def test_sum_constrained_splits_the_budget(self):
        policy = PowerPolicy.sum_constrained(16.0, ((0.25, 0.25, 0.5), UNIFORM))
        assert policy.powers_db == (16.0,)
        total = db_to_linear(16.0)
        for split, allocation in zip(
            ((0.25, 0.25, 0.5), UNIFORM), policy.allocations_db
        ):
            node_powers = [
                db_to_linear(16.0 + offset) for offset in allocation
            ]
            assert node_powers == pytest.approx(
                [f * total for f in split], rel=1e-12
            )

    def test_sum_constrained_rejects_bad_splits(self):
        with pytest.raises(InvalidParameterError):
            PowerPolicy.sum_constrained(16.0, ((0.5, 0.5, 0.5),))
        with pytest.raises(InvalidParameterError):
            PowerPolicy.sum_constrained(16.0, ((1.0, 0.0, 0.0),))
        with pytest.raises(InvalidParameterError):
            PowerPolicy.sum_constrained(16.0, ())

    def test_allocation_labels_validated(self):
        with pytest.raises(InvalidParameterError):
            PowerPolicy.per_node(
                (10.0,),
                allocations_db=((0.0, 0.0, 0.0),),
                labels=("a", "b"),
            )


class TestDeprecationShim:
    def test_direct_construction_warns(self):
        with pytest.warns(DeprecationWarning, match="PowerPolicy.uniform"):
            policy = PowerPolicy(powers_db=(0.0, 10.0))
        assert policy.powers_db == (0.0, 10.0)

    def test_factories_are_warning_free(self, recwarn):
        PowerPolicy.uniform(powers_db=(10.0,))
        PowerPolicy.per_node((10.0,), allocations_db=((0.0, 0.0, 0.0),))
        PowerPolicy.sum_constrained(10.0, (UNIFORM,))
        deprecations = [
            w for w in recwarn.list if issubclass(w.category, DeprecationWarning)
        ]
        assert not deprecations

    def test_shimmed_instance_behaves_like_uniform(self):
        with pytest.warns(DeprecationWarning):
            old = PowerPolicy(powers_db=(0.0, 10.0), offsets_db=(0.0, -3.0))
        new = PowerPolicy.uniform(powers_db=(0.0, 10.0), offsets_db=(0.0, -3.0))
        assert old == new


class TestRoundTrip:
    def _scenario(self, power, paper_gains, objective="sum_rate"):
        return Scenario(
            name="round-trip",
            description="power policy round-trip",
            protocols=(Protocol.MABC, Protocol.HBC),
            topology=Topology(gains=(paper_gains,)),
            power=power,
            fading=FadingSpec(n_draws=4, seed=9),
            objective=objective,
        )

    def test_uniform_round_trips(self, paper_gains):
        scenario = self._scenario(
            PowerPolicy.uniform(powers_db=(0.0, 10.0)), paper_gains
        )
        spec = scenario.to_campaign_spec()
        rebuilt = Scenario.from_campaign_spec(
            spec, name="round-trip", description="rebuilt"
        )
        assert rebuilt.to_campaign_spec().spec_hash() == spec.spec_hash()

    def test_per_node_round_trips(self, paper_gains):
        policy = PowerPolicy.per_node(
            (10.0,),
            allocations_db=((0.0, 0.0, 0.0), (-2.0, -2.0, 4.0)),
            labels=("even", "relay"),
        )
        scenario = self._scenario(policy, paper_gains)
        spec = scenario.to_campaign_spec()
        assert "power_allocation" in spec.axis_names
        rebuilt = Scenario.from_campaign_spec(
            spec, name="round-trip", description="rebuilt"
        )
        assert rebuilt.to_campaign_spec().spec_hash() == spec.spec_hash()
        assert rebuilt.power.allocations_db == policy.allocations_db

    def test_sum_constrained_round_trips(self, paper_gains):
        policy = PowerPolicy.sum_constrained(12.0, relay_share_splits(3))
        scenario = self._scenario(policy, paper_gains)
        spec = scenario.to_campaign_spec()
        rebuilt = Scenario.from_campaign_spec(
            spec, name="round-trip", description="rebuilt"
        )
        assert rebuilt.to_campaign_spec().spec_hash() == spec.spec_hash()

    def test_operational_scenarios_reject_allocations(self, paper_gains):
        from repro.campaign.spec import LinkSimSpec

        with pytest.raises(InvalidParameterError, match="analytic"):
            Scenario(
                name="bad",
                description="allocation on a link-level scenario",
                protocols=(Protocol.MABC,),
                topology=Topology(gains=(paper_gains,)),
                power=PowerPolicy.sum_constrained(10.0, (UNIFORM,)),
                link=LinkSimSpec(n_rounds=4, payload_bits=32, seed=1),
                objective="operational_goodput",
            )


class TestRelayShareSplits:
    def test_always_contains_the_exact_uniform_split(self):
        for n in (2, 3, 4, 7):
            assert UNIFORM in relay_share_splits(n)

    def test_splits_sum_to_one(self):
        for split in relay_share_splits(5):
            assert sum(split) == pytest.approx(1.0, abs=1e-12)


class TestPowerAllocationSweep:
    @pytest.fixture(scope="class")
    def result(self):
        return evaluate("power-allocation-sweep", cache=False)

    def test_axes(self, result):
        assert "power_allocation" in result.axis_names
        assert result.scenario.objective == "allocation_optimum_sum_rate"

    def test_optimum_weakly_dominates_uniform_everywhere(self, result):
        labels = result.axis_labels("power_allocation")
        uniform_index = labels.index("0.333333/0.333333/0.333333")
        uniform_slice = np.take(
            result.values, uniform_index, axis=result.allocation_axis
        )
        optimum = result.objective_values()
        assert optimum.shape == uniform_slice.shape
        assert (optimum >= uniform_slice).all()

    def test_optimum_along_names_the_winning_split(self, result):
        best, labels = result.optimum_along("power_allocation")
        assert np.array_equal(best, result.objective_values())
        assert labels.shape == best.shape
        allowed = set(result.axis_labels("power_allocation"))
        assert set(labels.flat) <= allowed


class TestFiniteSnrDmtScenario:
    def test_symmetric_cell_reproduces_sample_outage_curve(self):
        from repro.simulation.outage_capacity import sample_outage_curve

        result = evaluate("finite-snr-dmt", cache=False)
        scenario = result.scenario
        gains = scenario.topology.gains[0]
        for pi, protocol in enumerate(scenario.protocols):
            for wi, power_db in enumerate(scenario.power.powers_db):
                curve = sample_outage_curve(
                    protocol,
                    gains,
                    db_to_linear(power_db),
                    scenario.fading.n_draws,
                    np.random.default_rng(scenario.fading.seed),
                )
                cell = np.sort(result.values[pi, wi, 0, :])
                assert np.array_equal(cell, curve.samples)


class TestRegistryParams:
    def test_factory_params_forwarded(self):
        scenario = get_scenario("finite-snr-dmt", n_draws=7, seed=5)
        assert scenario.fading.n_draws == 7
        assert scenario.fading.seed == 5

    def test_unknown_params_rejected_with_clear_error(self):
        with pytest.raises(InvalidParameterError, match="does not accept"):
            get_scenario("finite-snr-dmt", bogus=1)

    def test_instance_registrations_accept_no_params(self, paper_gains):
        from repro.scenarios import register_scenario, unregister_scenario

        scenario = Scenario(
            name="instance-registered",
            description="registered as a ready-made instance",
            protocols=(Protocol.MABC,),
            topology=Topology(gains=(paper_gains,)),
        )
        register_scenario(scenario)
        try:
            with pytest.raises(InvalidParameterError, match="does not accept"):
                get_scenario("instance-registered", n_draws=3)
        finally:
            unregister_scenario("instance-registered")
