"""Registry round-trip tests: register -> list -> resolve -> evaluate."""

import pytest

from repro.campaign.spec import FadingSpec
from repro.core.protocols import Protocol
from repro.exceptions import InvalidParameterError
from repro.scenarios import (
    PowerPolicy,
    Scenario,
    Topology,
    get_scenario,
    list_scenarios,
    register_scenario,
    unregister_scenario,
)

BUILTINS = (
    "fading-ensemble",
    "fig3-placement",
    "fig3-symmetric",
    "fig4-operating-points",
    "two-pair-round-robin",
)


@pytest.fixture
def scratch_scenario(paper_gains):
    return Scenario(
        name="scratch-test-scenario",
        description="registry round-trip fixture",
        protocols=(Protocol.MABC,),
        topology=Topology(gains=(paper_gains,)),
        power=PowerPolicy.uniform(powers_db=(10.0,)),
        fading=FadingSpec(n_draws=2, seed=9),
    )


@pytest.fixture
def clean_registry():
    yield
    unregister_scenario("scratch-test-scenario")
    unregister_scenario("renamed-scenario")
    unregister_scenario("scratch-factory")


class TestBuiltins:
    def test_builtins_are_registered(self):
        names = list_scenarios()
        for name in BUILTINS:
            assert name in names

    def test_every_builtin_resolves_and_lowers(self):
        for name in list_scenarios():
            scenario = get_scenario(name)
            assert scenario.name == name
            assert scenario.to_campaign_spec().n_units > 0


class TestRegistration:
    def test_register_instance_then_resolve(self, scratch_scenario, clean_registry):
        register_scenario(scratch_scenario)
        assert "scratch-test-scenario" in list_scenarios()
        assert get_scenario("scratch-test-scenario") == scratch_scenario

    def test_register_under_explicit_name(self, scratch_scenario, clean_registry):
        register_scenario(scratch_scenario, name="renamed-scenario")
        assert get_scenario("renamed-scenario") == scratch_scenario

    def test_register_factory_decorator(self, scratch_scenario, clean_registry):
        @register_scenario(name="scratch-factory")
        def scratch_factory():
            return scratch_scenario

        assert get_scenario("scratch-factory") == scratch_scenario

    def test_duplicate_name_rejected_unless_replace(
        self, scratch_scenario, clean_registry
    ):
        register_scenario(scratch_scenario)
        with pytest.raises(InvalidParameterError):
            register_scenario(scratch_scenario)
        register_scenario(scratch_scenario, replace=True)

    def test_unknown_name_rejected(self):
        with pytest.raises(InvalidParameterError):
            get_scenario("does-not-exist")

    def test_non_scenario_rejected(self):
        with pytest.raises(InvalidParameterError):
            register_scenario(42)

    def test_factory_must_return_a_scenario(self, clean_registry):
        @register_scenario(name="scratch-factory")
        def scratch_factory():
            return "not a scenario"

        with pytest.raises(InvalidParameterError):
            get_scenario("scratch-factory")


class TestEvaluateByName:
    def test_register_then_evaluate_by_name(self, scratch_scenario, clean_registry):
        from repro.api import evaluate

        register_scenario(scratch_scenario)
        result = evaluate("scratch-test-scenario", executor="serial")
        assert result.scenario == scratch_scenario
        assert result.values.shape == (1, 1, 1, 2)
