"""The `operational-deepfade-fer` scenario: rare-event FER, cross-validated.

One module-scoped evaluation of the registered scenario (the importance-
sampled fused kernel makes the whole 12-cell grid affordable), then:

* the realized FER grid spans deep fades (FER near 1) down to rare-event
  cells (FER below 1e-4) that vanilla Monte Carlo could never resolve at
  these budgets;
* cross-validation against the analytic machinery of ``repro.core``:
  within every (protocol, power) block, realized FER decreases
  monotonically as the LP-optimal sum rate's margin over the attempted
  operational rate grows, cells with comfortable analytic margin are
  (nearly) error-free, and cells the analytic curves place near outage
  fail hard;
* the adaptive accounting surfaces the cells that exhausted
  ``max_rounds`` without resolving.
"""

import numpy as np
import pytest

from repro.api import evaluate
from repro.channels.gains import LinkGains
from repro.core.capacity import optimal_sum_rate
from repro.core.gaussian import GaussianChannel
from repro.scenarios import get_scenario
from repro.simulation.engine import PROTOCOL_PHASE_COUNTS

#: Analytic-margin thresholds calibrated against the scenario geometry:
#: margin = LP-optimal sum rate / attempted operational sum rate.
CLEAN_MARGIN, CLEAN_FER = 6.0, 5e-3
OUTAGE_MARGIN, OUTAGE_FER = 3.0, 0.3


@pytest.fixture(scope="module")
def scenario():
    return get_scenario("operational-deepfade-fer")


@pytest.fixture(scope="module")
def outcome(scenario):
    return evaluate(scenario, executor="vectorized", cache=False)


@pytest.fixture(scope="module")
def cells(scenario, outcome):
    """(protocol, power_linear, margin, fer) for every grid cell."""
    spec = scenario.to_campaign_spec()
    draws = spec.sample_gain_draws().reshape(-1, 3)
    link = spec.link
    # Two payloads per round; a frame occupies one phase of
    # payload + CRC-16 + termination symbols under the rate-1/2 code.
    n_symbols = 2 * (link.payload_bits + 16 + 6)
    values = outcome.values  # (protocol, power, gains, draw)
    rows = []
    for i, protocol in enumerate(spec.protocols):
        attempted = 2 * link.payload_bits / (
            PROTOCOL_PHASE_COUNTS[protocol] * n_symbols
        )
        for j, power_db in enumerate(spec.powers_db):
            power = 10 ** (power_db / 10)
            block = []
            for d, draw in enumerate(draws):
                channel = GaussianChannel(gains=LinkGains(*draw), power=power)
                analytic = optimal_sum_rate(protocol, channel).sum_rate
                block.append((analytic / attempted, float(values[i, j, 0, d])))
            rows.append((protocol, power, block))
    return rows


def test_scenario_is_registered(scenario):
    assert scenario.name == "operational-deepfade-fer"
    assert scenario.link.importance_sampling is not None


def test_fer_grid_spans_the_rare_event_regime(outcome):
    values = outcome.values
    assert values.shape == (2, 2, 1, 3)
    assert values.max() > 0.3  # genuine deep fades
    assert 0.0 < values.min() < 1e-6  # rare-event cells, still resolved > 0


def test_fer_monotone_in_analytic_margin(cells):
    for protocol, _power, block in cells:
        ordered = sorted(block, key=lambda cell: cell[0])
        fers = [fer for _margin, fer in ordered]
        assert fers == sorted(fers, reverse=True), (
            f"{protocol}: FER not monotone in analytic margin: {block}"
        )


def test_clean_cells_match_the_analytic_curves(cells):
    checked = 0
    for _protocol, _power, block in cells:
        for margin, fer in block:
            if margin >= CLEAN_MARGIN:
                assert fer < CLEAN_FER, (margin, fer)
                checked += 1
    assert checked >= 2  # the grid genuinely exercises the clean regime


def test_outage_cells_fail_hard(cells):
    checked = 0
    for _protocol, _power, block in cells:
        for margin, fer in block:
            if margin <= OUTAGE_MARGIN:
                assert fer > OUTAGE_FER, (margin, fer)
                checked += 1
    assert checked >= 2  # ... and the outage regime


def test_unresolved_cells_are_surfaced(outcome):
    assert outcome.unresolved_cells == 3
