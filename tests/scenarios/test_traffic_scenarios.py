"""The traffic scenarios and their objective wiring."""

import numpy as np
import pytest

from repro.api import evaluate
from repro.campaign.spec import LinkSimSpec, TrafficSpec
from repro.channels.gains import LinkGains
from repro.core.protocols import Protocol
from repro.exceptions import InvalidParameterError
from repro.scenarios import Scenario, get_scenario, list_scenarios
from repro.scenarios.base import PowerPolicy, Topology
from repro.scenarios.builtin import (
    multi_pair_scheduling_scenario,
    queueing_latency_scenario,
)

PAPER_GAINS = LinkGains.from_db(-7.0, 0.0, 5.0)


def _latency_link():
    return LinkSimSpec(
        n_rounds=24,
        payload_bits=32,
        seed=1,
        metric="latency",
        traffic=TrafficSpec(rates=(0.5,)),
    )


class TestObjectiveCoupling:
    def test_latency_objective_requires_matching_link_metric(self):
        with pytest.raises(InvalidParameterError):
            Scenario(
                name="bad",
                description="latency objective on a goodput link",
                grounding="n/a",
                protocols=(Protocol.MABC,),
                topology=Topology(gains=(PAPER_GAINS,)),
                power=PowerPolicy.uniform(powers_db=(10.0,)),
                objective="latency_quantiles",
                link=LinkSimSpec(n_rounds=8, payload_bits=32, seed=0),
            )

    def test_traffic_link_requires_a_traffic_objective(self):
        with pytest.raises(InvalidParameterError):
            Scenario(
                name="bad",
                description="traffic link under an analytic objective",
                grounding="n/a",
                protocols=(Protocol.MABC,),
                topology=Topology(gains=(PAPER_GAINS,)),
                power=PowerPolicy.uniform(powers_db=(10.0,)),
                link=_latency_link(),
            )

    def test_from_campaign_spec_infers_traffic_objectives(self):
        scenario = queueing_latency_scenario()
        spec = scenario.to_campaign_spec()
        rebuilt = Scenario.from_campaign_spec(spec, name="rebuilt")
        assert rebuilt.objective == "latency_quantiles"
        assert rebuilt.to_campaign_spec().spec_hash() == spec.spec_hash()

    def test_from_campaign_spec_infers_stable_throughput(self):
        spec = multi_pair_scheduling_scenario().to_campaign_spec()
        rebuilt = Scenario.from_campaign_spec(spec, name="rebuilt")
        assert rebuilt.objective == "stable_throughput"
        assert rebuilt.to_campaign_spec().spec_hash() == spec.spec_hash()


class TestRegisteredScenarios:
    def test_both_traffic_scenarios_are_registered(self):
        names = list_scenarios()
        assert "queueing-latency" in names
        assert "multi-pair-scheduling" in names

    def test_queueing_latency_lowers_to_a_traffic_spec(self):
        spec = queueing_latency_scenario().to_campaign_spec()
        assert spec.link.metric == "latency"
        assert spec.link.traffic is not None

    def test_scheduler_param_reaches_the_spec(self):
        scenario = get_scenario("multi-pair-scheduling", scheduler="longest-queue")
        assert scenario.to_campaign_spec().link.traffic.scheduler == "longest-queue"

    def test_bad_scheduler_param_is_rejected_at_build_time(self):
        with pytest.raises(InvalidParameterError):
            multi_pair_scheduling_scenario(scheduler="strict-priority")


class TestEvaluation:
    def test_queueing_latency_reports_finite_latencies(self):
        result = evaluate(queueing_latency_scenario(), cache=False)
        assert result.values.shape == (2, 2, 1, 1)
        assert np.all(np.isfinite(result.values))
        assert np.all(result.values >= 1.0)
        assert np.array_equal(result.objective_values(), result.values)

    def test_work_conserving_dominates_round_robin_in_the_scenario(self):
        """The PR's acceptance claim, at the registered configuration."""
        knees = {
            scheduler: evaluate(
                multi_pair_scheduling_scenario(scheduler=scheduler), cache=False
            ).values
            for scheduler in ("round-robin", "longest-queue", "opportunistic")
        }
        assert np.all(knees["longest-queue"] >= knees["round-robin"])
        assert np.all(knees["opportunistic"] >= knees["round-robin"])
        assert np.any(knees["opportunistic"] > knees["round-robin"])
