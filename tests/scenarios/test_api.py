"""End-to-end facade tests: the PR's acceptance criteria live here.

A two-pair scenario must evaluate through ``repro.api.evaluate`` with all
three executors bitwise-identical, and a sharded evaluation gathered from
a shared cache must be bitwise-identical to the unsharded run.
"""

import numpy as np
import pytest

from repro.api import evaluate, evaluate_realizations, gather
from repro.campaign.cache import CampaignCache
from repro.campaign.spec import FadingSpec
from repro.channels.gains import LinkGains
from repro.core.protocols import Protocol
from repro.exceptions import InvalidParameterError
from repro.scenarios import (
    EvaluationResult,
    PowerPolicy,
    RelayPair,
    Scenario,
    Topology,
)


@pytest.fixture(scope="module")
def two_pair_scenario():
    """A small two-pair grid: 2 protocols x 1 power x 2 pairs x 4 draws."""
    gains = Topology(
        gains=(LinkGains.from_db(-7.0, 0.0, 5.0),),
        pairs=(
            RelayPair(label="pair-1"),
            RelayPair(label="pair-2", gain_offsets_db=(-2.0, 3.0, -3.0)),
        ),
    )
    return Scenario(
        name="two-pair-test",
        description="two-pair acceptance grid",
        protocols=(Protocol.MABC, Protocol.HBC),
        topology=gains,
        power=PowerPolicy.uniform(powers_db=(10.0,)),
        fading=FadingSpec(n_draws=4, seed=7),
        objective="round_robin_sum_rate",
    )


@pytest.fixture(scope="module")
def reference(two_pair_scenario):
    return evaluate(two_pair_scenario, executor="serial")


class TestExecutorEquivalence:
    @pytest.mark.parametrize("executor", ["process", "vectorized"])
    def test_two_pair_executors_bitwise_identical(
        self, two_pair_scenario, reference, executor
    ):
        result = evaluate(two_pair_scenario, executor=executor)
        assert result.values.tobytes() == reference.values.tobytes()

    def test_values_shape_matches_the_scenario_grid(
        self, two_pair_scenario, reference
    ):
        spec = two_pair_scenario.to_campaign_spec()
        assert reference.values.shape == spec.grid_shape == (2, 1, 2, 1, 4)


class TestShardGatherEquivalence:
    def test_sharded_gather_bitwise_identical_to_unsharded(
        self, two_pair_scenario, reference, tmp_path
    ):
        cache = CampaignCache(tmp_path)
        for index in range(3):
            shard_run = evaluate(
                two_pair_scenario,
                shard=(index, 3),
                cache=cache,
                chunk_size=3,
            )
            assert shard_run.campaign.shard is not None
        gathered = gather(two_pair_scenario, cache)
        assert gathered.values.tobytes() == reference.values.tobytes()
        # A rerun is now served entirely from the shared cache.
        cached = evaluate(two_pair_scenario, cache=cache)
        assert cached.from_cache
        assert cached.values.tobytes() == reference.values.tobytes()


class TestEvaluationResult:
    def test_axis_access(self, reference):
        assert reference.axis_names == ("protocol", "power", "pair", "gains", "draw")
        assert reference.axis_index("pair") == 2
        assert reference.pair_axis == 2
        assert reference.axis_labels("pair") == ("pair-1", "pair-2")
        assert reference.axis_labels("protocol") == ("MABC", "HBC")
        with pytest.raises(InvalidParameterError):
            reference.axis_index("bogus")

    def test_round_robin_objective_reduces_the_pair_axis(self, reference):
        reduced = reference.objective_values()
        assert reduced.shape == (2, 1, 1, 4)
        expected = reference.values.mean(axis=2)
        assert np.array_equal(reduced, expected)

    def test_objective_rows_cover_protocols_and_powers(self, reference):
        rows = reference.objective_rows()
        assert [row[0] for row in rows] == ["MABC", "HBC"]
        assert rows[0][1] == 10.0
        assert rows[0][2] == pytest.approx(reference.values[0].mean())

    def test_sum_rate_objective_is_unreduced(self, two_pair_scenario):
        plain = Scenario(
            name="two-pair-plain",
            description="same grid, raw objective",
            protocols=two_pair_scenario.protocols,
            topology=two_pair_scenario.topology,
            power=two_pair_scenario.power,
            fading=two_pair_scenario.fading,
            objective="sum_rate",
        )
        result = evaluate(plain, executor="serial")
        assert result.objective_values().shape == result.values.shape

    def test_summary_delegation(self, reference):
        rows = reference.summary_rows(epsilon=0.1)
        assert len(rows) == 2
        assert reference.ergodic_mean(Protocol.HBC, 10.0) == pytest.approx(
            reference.values[1].mean()
        )


class TestFacadeInputs:
    def test_evaluate_rejects_non_scenarios(self):
        with pytest.raises(InvalidParameterError):
            evaluate(42)

    def test_evaluate_by_unknown_name_rejected(self):
        with pytest.raises(InvalidParameterError):
            evaluate("not-a-registered-scenario")

    def test_returns_evaluation_result(self, reference):
        assert isinstance(reference, EvaluationResult)
        assert reference.executor_name == "serial"

    def test_evaluate_realizations_matches_engine(self, paper_gains, rng):
        from repro.campaign.engine import evaluate_ensemble
        from repro.channels.fading import sample_gain_ensemble

        ensemble = sample_gain_ensemble(paper_gains, 5, rng)
        facade = evaluate_realizations(Protocol.MABC, ensemble, 10.0)
        engine = evaluate_ensemble(Protocol.MABC, ensemble, 10.0)
        assert facade.tobytes() == engine.tobytes()
