"""The operational-goodput objective through the full campaign machinery.

Acceptance criteria of the batched-link PR live here: an operational
scenario must evaluate through ``repro.api.evaluate`` bitwise-identically
across all three executors, and a sharded evaluation gathered from a
shared cache must equal the unsharded run byte for byte.
"""

import pytest

from repro.api import evaluate, gather
from repro.campaign.cache import CampaignCache
from repro.campaign.spec import CampaignSpec, LinkSimSpec
from repro.channels.gains import LinkGains
from repro.core.protocols import Protocol
from repro.exceptions import InvalidParameterError
from repro.scenarios import PowerPolicy, Scenario, Topology, list_scenarios


@pytest.fixture(scope="module")
def operational_scenario():
    """A small operational grid: 2 protocols x 2 powers x 2 geometries."""
    return Scenario(
        name="operational-test",
        description="operational acceptance grid",
        protocols=(Protocol.MABC, Protocol.TDBC),
        topology=Topology(
            gains=(
                LinkGains.from_db(-7.0, 0.0, 5.0),
                LinkGains.from_db(-3.0, 3.0, 3.0),
            ),
        ),
        power=PowerPolicy(powers_db=(0.0, 12.0)),
        objective="operational_goodput",
        link=LinkSimSpec(n_rounds=6, payload_bits=24, seed=5, code="test",
                         crc="crc8"),
    )


@pytest.fixture(scope="module")
def reference(operational_scenario):
    return evaluate(operational_scenario, executor="serial")


class TestExecutorEquivalence:
    @pytest.mark.parametrize("executor", ["process", "vectorized"])
    def test_operational_executors_bitwise_identical(
        self, operational_scenario, reference, executor
    ):
        result = evaluate(operational_scenario, executor=executor)
        assert result.values.tobytes() == reference.values.tobytes()

    def test_values_are_goodputs(self, reference):
        assert reference.values.shape == (2, 2, 2, 1)
        assert (reference.values >= 0.0).all()
        # At 12 dB the test codec decodes cleanly; at 0 dB it mostly
        # fails — the grid spans the operational waterfall.
        assert reference.values[:, 1].max() > reference.values[:, 0].min()

    def test_objective_values_unreduced(self, reference):
        assert reference.objective_values().shape == reference.values.shape


class TestShardGatherEquivalence:
    def test_sharded_gather_bitwise_identical_to_unsharded(
        self, operational_scenario, reference, tmp_path
    ):
        cache = CampaignCache(tmp_path)
        for index in range(3):
            shard_run = evaluate(
                operational_scenario,
                shard=(index, 3),
                cache=cache,
                chunk_size=2,
            )
            assert shard_run.campaign.shard is not None
        gathered = gather(operational_scenario, cache)
        assert gathered.values.tobytes() == reference.values.tobytes()
        cached = evaluate(operational_scenario, cache=cache)
        assert cached.from_cache
        assert cached.values.tobytes() == reference.values.tobytes()


class TestSpecIntegration:
    def test_registered_builtin_scenario(self):
        assert "operational-goodput" in list_scenarios()

    def test_link_spec_serialization_round_trip(self, operational_scenario):
        spec = operational_scenario.to_campaign_spec()
        restored = CampaignSpec.from_dict(spec.to_dict())
        assert restored == spec
        assert restored.spec_hash() == spec.spec_hash()

    def test_link_changes_move_the_cache_key(self, operational_scenario):
        spec = operational_scenario.to_campaign_spec()
        other = Scenario(
            name=operational_scenario.name,
            description=operational_scenario.description,
            protocols=operational_scenario.protocols,
            topology=operational_scenario.topology,
            power=operational_scenario.power,
            objective="operational_goodput",
            link=LinkSimSpec(n_rounds=7, payload_bits=24, seed=5,
                             code="test", crc="crc8"),
        ).to_campaign_spec()
        assert other.spec_hash() != spec.spec_hash()

    def test_analytic_spec_hash_unchanged_by_link_field(self):
        # A spec without link must serialize without the key at all, so
        # classic analytic hashes (and cache entries) are untouched.
        spec = CampaignSpec(
            protocols=(Protocol.MABC,),
            powers_db=(10.0,),
            gains=(LinkGains.from_db(-7.0, 0.0, 5.0),),
        )
        assert "link" not in spec.to_dict()

    def test_scenario_round_trips_through_campaign_spec(
        self, operational_scenario
    ):
        spec = operational_scenario.to_campaign_spec()
        restored = Scenario.from_campaign_spec(spec, name="restored")
        assert restored.objective == "operational_goodput"
        assert restored.link == operational_scenario.link
        assert restored.to_campaign_spec().spec_hash() == spec.spec_hash()


class TestValidation:
    def test_objective_and_link_must_agree(self):
        topology = Topology(gains=(LinkGains.from_db(-7.0, 0.0, 5.0),))
        with pytest.raises(InvalidParameterError):
            Scenario(
                name="bad",
                description="objective without link",
                protocols=(Protocol.DT,),
                topology=topology,
                objective="operational_goodput",
            )
        with pytest.raises(InvalidParameterError):
            Scenario(
                name="bad",
                description="link without objective",
                protocols=(Protocol.DT,),
                topology=topology,
                link=LinkSimSpec(n_rounds=2),
            )

    def test_link_spec_validation(self):
        with pytest.raises(InvalidParameterError):
            LinkSimSpec(n_rounds=0)
        with pytest.raises(InvalidParameterError):
            LinkSimSpec(n_rounds=1, payload_bits=0)
        with pytest.raises(InvalidParameterError):
            LinkSimSpec(n_rounds=1, code="turbo")
        with pytest.raises(InvalidParameterError):
            LinkSimSpec(n_rounds=1, crc="crc64")
        with pytest.raises(InvalidParameterError):
            LinkSimSpec(n_rounds=1, modulation="qam")

    def test_link_spec_codec_construction(self):
        codec = LinkSimSpec(n_rounds=1, payload_bits=16, code="test",
                            crc="crc8", modulation="qpsk").codec()
        assert codec.payload_bits == 16
        assert codec.crc.n_bits == 8
        assert codec.modulation.bits_per_symbol == 2

    def test_non_link_spec_rejects_bad_type(self):
        with pytest.raises(InvalidParameterError):
            CampaignSpec(
                protocols=(Protocol.DT,),
                powers_db=(10.0,),
                gains=(LinkGains.from_db(-7.0, 0.0, 5.0),),
                link="not-a-spec",
            )
