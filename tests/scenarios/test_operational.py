"""The operational objectives through the full campaign machinery.

Acceptance criteria of the batched-link and fused-cells PRs live here: an
operational scenario must evaluate through ``repro.api.evaluate``
bitwise-identically across all three executors, a sharded evaluation
gathered from a shared cache must equal the unsharded run byte for byte,
and the adaptive-budget / FER extensions must not move any pre-existing
spec hash (``metric``/``target_rel_error``/``max_rounds`` serialize only
when set).
"""

import pytest

from repro.api import evaluate, gather
from repro.campaign.cache import CampaignCache
from repro.campaign.spec import CampaignSpec, FadingSpec, LinkSimSpec
from repro.channels.gains import LinkGains
from repro.core.protocols import Protocol
from repro.exceptions import InvalidParameterError
from repro.scenarios import PowerPolicy, Scenario, Topology, list_scenarios


@pytest.fixture(scope="module")
def operational_scenario():
    """A small operational grid: 2 protocols x 2 powers x 2 geometries."""
    return Scenario(
        name="operational-test",
        description="operational acceptance grid",
        protocols=(Protocol.MABC, Protocol.TDBC),
        topology=Topology(
            gains=(
                LinkGains.from_db(-7.0, 0.0, 5.0),
                LinkGains.from_db(-3.0, 3.0, 3.0),
            ),
        ),
        power=PowerPolicy.uniform(powers_db=(0.0, 12.0)),
        objective="operational_goodput",
        link=LinkSimSpec(n_rounds=6, payload_bits=24, seed=5, code="test",
                         crc="crc8"),
    )


@pytest.fixture(scope="module")
def reference(operational_scenario):
    return evaluate(operational_scenario, executor="serial")


class TestExecutorEquivalence:
    @pytest.mark.parametrize("executor", ["process", "vectorized"])
    def test_operational_executors_bitwise_identical(
        self, operational_scenario, reference, executor
    ):
        result = evaluate(operational_scenario, executor=executor)
        assert result.values.tobytes() == reference.values.tobytes()

    def test_values_are_goodputs(self, reference):
        assert reference.values.shape == (2, 2, 2, 1)
        assert (reference.values >= 0.0).all()
        # At 12 dB the test codec decodes cleanly; at 0 dB it mostly
        # fails — the grid spans the operational waterfall.
        assert reference.values[:, 1].max() > reference.values[:, 0].min()

    def test_objective_values_unreduced(self, reference):
        assert reference.objective_values().shape == reference.values.shape


class TestShardGatherEquivalence:
    def test_sharded_gather_bitwise_identical_to_unsharded(
        self, operational_scenario, reference, tmp_path
    ):
        cache = CampaignCache(tmp_path)
        for index in range(3):
            shard_run = evaluate(
                operational_scenario,
                shard=(index, 3),
                cache=cache,
                chunk_size=2,
            )
            assert shard_run.campaign.shard is not None
        gathered = gather(operational_scenario, cache)
        assert gathered.values.tobytes() == reference.values.tobytes()
        cached = evaluate(operational_scenario, cache=cache)
        assert cached.from_cache
        assert cached.values.tobytes() == reference.values.tobytes()


class TestSpecIntegration:
    def test_registered_builtin_scenario(self):
        assert "operational-goodput" in list_scenarios()

    def test_link_spec_serialization_round_trip(self, operational_scenario):
        spec = operational_scenario.to_campaign_spec()
        restored = CampaignSpec.from_dict(spec.to_dict())
        assert restored == spec
        assert restored.spec_hash() == spec.spec_hash()

    def test_link_changes_move_the_cache_key(self, operational_scenario):
        spec = operational_scenario.to_campaign_spec()
        other = Scenario(
            name=operational_scenario.name,
            description=operational_scenario.description,
            protocols=operational_scenario.protocols,
            topology=operational_scenario.topology,
            power=operational_scenario.power,
            objective="operational_goodput",
            link=LinkSimSpec(n_rounds=7, payload_bits=24, seed=5,
                             code="test", crc="crc8"),
        ).to_campaign_spec()
        assert other.spec_hash() != spec.spec_hash()

    def test_analytic_spec_hash_unchanged_by_link_field(self):
        # A spec without link must serialize without the key at all, so
        # classic analytic hashes (and cache entries) are untouched.
        spec = CampaignSpec(
            protocols=(Protocol.MABC,),
            powers_db=(10.0,),
            gains=(LinkGains.from_db(-7.0, 0.0, 5.0),),
        )
        assert "link" not in spec.to_dict()

    def test_scenario_round_trips_through_campaign_spec(
        self, operational_scenario
    ):
        spec = operational_scenario.to_campaign_spec()
        restored = Scenario.from_campaign_spec(spec, name="restored")
        assert restored.objective == "operational_goodput"
        assert restored.link == operational_scenario.link
        assert restored.to_campaign_spec().spec_hash() == spec.spec_hash()


@pytest.fixture(scope="module")
def fading_fer_scenario():
    """A small adaptive fading-FER grid spanning the test codec's waterfall."""
    return Scenario(
        name="fading-fer-test",
        description="adaptive fading FER acceptance grid",
        protocols=(Protocol.DT, Protocol.MABC),
        topology=Topology(gains=(LinkGains.from_db(-7.0, 0.0, 5.0),)),
        power=PowerPolicy.uniform(powers_db=(-2.0, 12.0)),
        fading=FadingSpec(n_draws=3, seed=13),
        objective="operational_fer",
        link=LinkSimSpec(n_rounds=4, payload_bits=24, seed=3, code="test",
                         crc="crc8", metric="fer", target_rel_error=0.5,
                         max_rounds=16),
    )


class TestFadingFerScenario:
    @pytest.fixture(scope="class")
    def reference(self, fading_fer_scenario):
        return evaluate(fading_fer_scenario, executor="serial")

    @pytest.mark.parametrize("executor", ["process", "vectorized"])
    def test_executors_bitwise_identical(
        self, fading_fer_scenario, reference, executor
    ):
        result = evaluate(fading_fer_scenario, executor=executor)
        assert result.values.tobytes() == reference.values.tobytes()

    def test_values_are_frame_error_rates(self, reference):
        assert reference.values.shape == (2, 2, 1, 3)
        assert (reference.values >= 0.0).all()
        assert (reference.values <= 1.0).all()
        # Low power is error-dominated, high power mostly clean.
        assert reference.values[:, 0].mean() > reference.values[:, 1].mean()

    def test_sharded_gather_bitwise_identical(
        self, fading_fer_scenario, reference, tmp_path
    ):
        cache = CampaignCache(tmp_path)
        for index in range(3):
            evaluate(fading_fer_scenario, shard=(index, 3), cache=cache,
                     chunk_size=2)
        gathered = gather(fading_fer_scenario, cache)
        assert gathered.values.tobytes() == reference.values.tobytes()

    def test_registered_builtin_scenario(self):
        assert "operational-fading-fer" in list_scenarios()

    def test_objective_values_unreduced(self, reference):
        assert reference.objective_values().shape == reference.values.shape


class TestAdaptiveSpecSerialization:
    def test_defaults_serialize_exactly_as_before(self):
        # Pre-fusion operational specs must keep their cache keys: the new
        # fields are absent from the serialized form when defaulted.
        data = LinkSimSpec(n_rounds=6, payload_bits=24, seed=5).to_dict()
        assert sorted(data) == [
            "code", "crc", "modulation", "n_rounds", "payload_bits", "seed",
        ]

    def test_adaptive_fields_serialized_only_when_set(self):
        data = LinkSimSpec(n_rounds=6, metric="fer", target_rel_error=0.4,
                           max_rounds=48).to_dict()
        assert data["metric"] == "fer"
        assert data["target_rel_error"] == 0.4
        assert data["max_rounds"] == 48

    def test_adaptive_spec_round_trips(self, fading_fer_scenario):
        spec = fading_fer_scenario.to_campaign_spec()
        restored = CampaignSpec.from_dict(spec.to_dict())
        assert restored == spec
        assert restored.spec_hash() == spec.spec_hash()

    def test_adaptive_fields_move_the_cache_key(self):
        base = LinkSimSpec(n_rounds=6)
        spec = CampaignSpec(
            protocols=(Protocol.MABC,),
            powers_db=(10.0,),
            gains=(LinkGains.from_db(-7.0, 0.0, 5.0),),
            link=base,
        )
        adaptive = CampaignSpec(
            protocols=spec.protocols,
            powers_db=spec.powers_db,
            gains=spec.gains,
            link=LinkSimSpec(n_rounds=6, target_rel_error=0.4, max_rounds=12),
        )
        fer = CampaignSpec(
            protocols=spec.protocols,
            powers_db=spec.powers_db,
            gains=spec.gains,
            link=LinkSimSpec(n_rounds=6, metric="fer"),
        )
        assert adaptive.spec_hash() != spec.spec_hash()
        assert fer.spec_hash() != spec.spec_hash()

    def test_link_spec_adaptive_validation(self):
        with pytest.raises(InvalidParameterError):
            LinkSimSpec(n_rounds=4, target_rel_error=0.4)
        with pytest.raises(InvalidParameterError):
            LinkSimSpec(n_rounds=4, max_rounds=16)
        with pytest.raises(InvalidParameterError):
            LinkSimSpec(n_rounds=4, target_rel_error=-0.1, max_rounds=16)
        with pytest.raises(InvalidParameterError):
            LinkSimSpec(n_rounds=4, target_rel_error=0.4, max_rounds=2)
        with pytest.raises(InvalidParameterError):
            LinkSimSpec(n_rounds=4, metric="ber")

    def test_fer_scenario_round_trips_through_campaign_spec(
        self, fading_fer_scenario
    ):
        spec = fading_fer_scenario.to_campaign_spec()
        restored = Scenario.from_campaign_spec(spec, name="restored")
        assert restored.objective == "operational_fer"
        assert restored.link == fading_fer_scenario.link
        assert restored.to_campaign_spec().spec_hash() == spec.spec_hash()


class TestValidation:
    def test_objective_metric_must_agree_with_link(self):
        topology = Topology(gains=(LinkGains.from_db(-7.0, 0.0, 5.0),))
        with pytest.raises(InvalidParameterError):
            Scenario(
                name="bad",
                description="fer objective with goodput link",
                protocols=(Protocol.DT,),
                topology=topology,
                objective="operational_fer",
                link=LinkSimSpec(n_rounds=2),
            )
        with pytest.raises(InvalidParameterError):
            Scenario(
                name="bad",
                description="goodput objective with fer link",
                protocols=(Protocol.DT,),
                topology=topology,
                objective="operational_goodput",
                link=LinkSimSpec(n_rounds=2, metric="fer"),
            )

    def test_objective_and_link_must_agree(self):
        topology = Topology(gains=(LinkGains.from_db(-7.0, 0.0, 5.0),))
        with pytest.raises(InvalidParameterError):
            Scenario(
                name="bad",
                description="objective without link",
                protocols=(Protocol.DT,),
                topology=topology,
                objective="operational_goodput",
            )
        with pytest.raises(InvalidParameterError):
            Scenario(
                name="bad",
                description="link without objective",
                protocols=(Protocol.DT,),
                topology=topology,
                link=LinkSimSpec(n_rounds=2),
            )

    def test_link_spec_validation(self):
        with pytest.raises(InvalidParameterError):
            LinkSimSpec(n_rounds=0)
        with pytest.raises(InvalidParameterError):
            LinkSimSpec(n_rounds=1, payload_bits=0)
        with pytest.raises(InvalidParameterError):
            LinkSimSpec(n_rounds=1, code="turbo")
        with pytest.raises(InvalidParameterError):
            LinkSimSpec(n_rounds=1, crc="crc64")
        with pytest.raises(InvalidParameterError):
            LinkSimSpec(n_rounds=1, modulation="qam")

    def test_link_spec_codec_construction(self):
        codec = LinkSimSpec(n_rounds=1, payload_bits=16, code="test",
                            crc="crc8", modulation="qpsk").codec()
        assert codec.payload_bits == 16
        assert codec.crc.n_bits == 8
        assert codec.modulation.bits_per_symbol == 2

    def test_non_link_spec_rejects_bad_type(self):
        with pytest.raises(InvalidParameterError):
            CampaignSpec(
                protocols=(Protocol.DT,),
                powers_db=(10.0,),
                gains=(LinkGains.from_db(-7.0, 0.0, 5.0),),
                link="not-a-spec",
            )
