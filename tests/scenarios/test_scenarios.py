"""Unit tests for the Scenario dataclasses and their campaign lowering."""

import pytest

from repro.campaign.spec import CampaignSpec, FadingSpec, GridAxis
from repro.core.protocols import Protocol
from repro.exceptions import InvalidParameterError
from repro.scenarios import (
    PowerPolicy,
    RelayPair,
    Scenario,
    Topology,
    two_pair_round_robin_scenario,
)


@pytest.fixture
def single_pair_scenario(paper_gains):
    return Scenario(
        name="single",
        description="one pair, fixed power",
        protocols=(Protocol.MABC, Protocol.HBC),
        topology=Topology(gains=(paper_gains,)),
        power=PowerPolicy.uniform(powers_db=(0.0, 10.0)),
        fading=FadingSpec(n_draws=5, seed=3),
    )


class TestValidation:
    def test_bad_pair_rejected(self):
        with pytest.raises(InvalidParameterError):
            RelayPair(label="")
        with pytest.raises(InvalidParameterError):
            RelayPair(label="p", gain_offsets_db=(1.0, 2.0))

    def test_duplicate_pair_labels_rejected(self, paper_gains):
        with pytest.raises(InvalidParameterError):
            Topology(
                gains=(paper_gains,),
                pairs=(RelayPair(label="p"), RelayPair(label="p")),
            )

    def test_empty_topology_rejected(self, paper_gains):
        with pytest.raises(InvalidParameterError):
            Topology(gains=())
        with pytest.raises(InvalidParameterError):
            Topology(gains=(paper_gains,), pairs=())

    def test_mismatched_labels_rejected(self, paper_gains):
        with pytest.raises(InvalidParameterError):
            Topology(gains=(paper_gains,), gains_labels=("a", "b"))
        with pytest.raises(InvalidParameterError):
            PowerPolicy.uniform(
                powers_db=(10.0,), offsets_db=(0.0,), offset_labels=("x", "y")
            )

    def test_unknown_objective_rejected(self, paper_gains):
        with pytest.raises(InvalidParameterError):
            Scenario(
                name="bad",
                description="",
                protocols=(Protocol.MABC,),
                topology=Topology(gains=(paper_gains,)),
                objective="maximize-vibes",
            )

    def test_empty_name_rejected(self, paper_gains):
        with pytest.raises(InvalidParameterError):
            Scenario(
                name="",
                description="",
                protocols=(Protocol.MABC,),
                topology=Topology(gains=(paper_gains,)),
            )


class TestLowering:
    def test_single_pair_lowers_to_classic_spec(self, single_pair_scenario):
        spec = single_pair_scenario.to_campaign_spec()
        assert spec.extra_axes == ()
        assert spec.grid_shape == (2, 2, 1, 5)
        # Identical to a hand-built classic spec, hash included.
        classic = CampaignSpec(
            protocols=(Protocol.MABC, Protocol.HBC),
            powers_db=(0.0, 10.0),
            gains=single_pair_scenario.topology.gains,
            fading=FadingSpec(n_draws=5, seed=3),
        )
        assert spec == classic
        assert spec.spec_hash() == classic.spec_hash()

    def test_multi_pair_lowers_to_pair_axis(self, paper_gains):
        scenario = two_pair_round_robin_scenario()
        spec = scenario.to_campaign_spec()
        assert spec.axis_names == ("protocol", "power", "pair", "gains", "draw")
        pair_axis = spec.extra_axes[0]
        assert isinstance(pair_axis, GridAxis)
        assert pair_axis.display_labels == ("pair-1", "pair-2")
        assert pair_axis.values[0] == {"gain_offsets_db": [0.0, 0.0, 0.0]}
        assert pair_axis.values[1] == {"gain_offsets_db": [-2.0, 3.0, -3.0]}

    def test_power_policy_lowers_to_policy_axis(self, paper_gains):
        scenario = Scenario(
            name="backoff",
            description="finite-SNR backoff study",
            protocols=(Protocol.HBC,),
            topology=Topology(gains=(paper_gains,)),
            power=PowerPolicy.uniform(
                powers_db=(10.0,),
                offsets_db=(0.0, -3.0, -6.0),
                name="backoff",
            ),
        )
        spec = scenario.to_campaign_spec()
        assert spec.axis_names == (
            "protocol",
            "power",
            "power_policy",
            "gains",
            "draw",
        )
        axis = spec.extra_axes[0]
        assert axis.display_labels == ("+0 dB", "-3 dB", "-6 dB")
        assert axis.values[2] == {"power_db_offset": -6.0}

    def test_single_nonzero_pair_offset_still_gets_an_axis(self, paper_gains):
        topology = Topology(
            gains=(paper_gains,),
            pairs=(RelayPair(label="shifted", gain_offsets_db=(0.0, 1.0, 0.0)),),
        )
        assert topology.pair_axis() is not None


class TestRoundTrip:
    def test_classic_spec_round_trips(self, single_pair_scenario):
        spec = single_pair_scenario.to_campaign_spec()
        clone = Scenario.from_campaign_spec(spec, name="clone")
        assert clone.to_campaign_spec() == spec
        assert clone.to_campaign_spec().spec_hash() == spec.spec_hash()

    def test_scenario_shaped_axes_round_trip(self):
        spec = two_pair_round_robin_scenario().to_campaign_spec()
        clone = Scenario.from_campaign_spec(
            spec, name="clone", objective="round_robin_sum_rate"
        )
        assert clone.n_pairs == 2
        assert clone.to_campaign_spec() == spec
        assert clone.to_campaign_spec().spec_hash() == spec.spec_hash()

    def test_unlabeled_scenario_shaped_axes_round_trip(self, paper_gains):
        spec = CampaignSpec(
            protocols=(Protocol.MABC,),
            powers_db=(10.0,),
            gains=(paper_gains,),
            extra_axes=(
                GridAxis(
                    name="pair",
                    values=(
                        {"gain_offsets_db": (0.0, 0.0, 0.0)},
                        {"gain_offsets_db": (-1.0, 1.0, 0.0)},
                    ),
                ),
                GridAxis(
                    name="power_policy",
                    values=({"power_db_offset": -3.0}, {"power_db_offset": 0.0}),
                ),
            ),
        )
        clone = Scenario.from_campaign_spec(spec, name="clone")
        # Labels are synthesized, but the content hash — and therefore
        # the cache key — is preserved (labels are excluded from it).
        assert [pair.label for pair in clone.topology.pairs] == ["pair-1", "pair-2"]
        assert clone.to_campaign_spec().spec_hash() == spec.spec_hash()

    def test_foreign_axes_rejected(self, paper_gains):
        spec = CampaignSpec(
            protocols=(Protocol.MABC,),
            powers_db=(10.0,),
            gains=(paper_gains,),
            extra_axes=(
                GridAxis(name="mystery", values=({"power_db_offset": 1.0},)),
            ),
        )
        with pytest.raises(InvalidParameterError):
            Scenario.from_campaign_spec(spec, name="clone")
