"""Unit tests for repro.information.mac."""

import numpy as np
import pytest

from repro.exceptions import InvalidParameterError
from repro.information.discrete import normalize_distribution
from repro.information.functions import gaussian_capacity
from repro.information.mac import (
    MacPentagon,
    discrete_mac_pentagon,
    gaussian_mac_pentagon,
)


class TestMacPentagon:
    def test_contains_origin(self):
        pentagon = MacPentagon(1.0, 2.0, 2.5)
        assert pentagon.contains(0.0, 0.0)

    def test_respects_sum_constraint(self):
        pentagon = MacPentagon(1.0, 2.0, 2.5)
        assert pentagon.contains(1.0, 1.5)
        assert not pentagon.contains(1.0, 1.6)

    def test_respects_individual_constraints(self):
        pentagon = MacPentagon(1.0, 2.0, 2.5)
        assert not pentagon.contains(1.1, 0.0)
        assert not pentagon.contains(0.0, 2.1)

    def test_negative_rates_outside(self):
        pentagon = MacPentagon(1.0, 2.0, 2.5)
        assert not pentagon.contains(-0.5, 0.5)

    def test_rejects_negative_caps(self):
        with pytest.raises(InvalidParameterError):
            MacPentagon(-1.0, 2.0, 0.5)

    def test_rejects_inconsistent_sum(self):
        with pytest.raises(InvalidParameterError):
            MacPentagon(1.0, 1.0, 2.5)

    def test_vertices_active_sum(self):
        pentagon = MacPentagon(1.0, 2.0, 2.5)
        vertices = pentagon.vertices()
        assert (0.0, 0.0) in vertices
        assert (1.0, 0.0) in vertices
        assert (1.0, 1.5) in vertices
        assert (0.5, 2.0) in vertices
        assert (0.0, 2.0) in vertices
        assert len(vertices) == 5

    def test_vertices_inactive_sum_is_rectangle(self):
        pentagon = MacPentagon(1.0, 2.0, 3.0)
        vertices = pentagon.vertices()
        assert (1.0, 2.0) in vertices
        assert len(vertices) == 4

    def test_vertices_inside_region(self):
        pentagon = MacPentagon(1.3, 0.8, 1.7)
        for ra, rb in pentagon.vertices():
            assert pentagon.contains(ra, rb)

    def test_max_sum_rate(self):
        assert MacPentagon(1.0, 2.0, 2.5).max_sum_rate() == pytest.approx(2.5)
        assert MacPentagon(1.0, 2.0, 3.0).max_sum_rate() == pytest.approx(3.0)


class TestGaussianMac:
    def test_caps_match_capacity_formulas(self):
        pentagon = gaussian_mac_pentagon(3.0, 1.0)
        assert pentagon.rate1_max == pytest.approx(gaussian_capacity(3.0))
        assert pentagon.rate2_max == pytest.approx(gaussian_capacity(1.0))
        assert pentagon.sum_max == pytest.approx(gaussian_capacity(4.0))

    def test_sum_cap_strictly_binding(self):
        # C(s1 + s2) < C(s1) + C(s2) for positive SNRs: pentagon corner cut.
        pentagon = gaussian_mac_pentagon(2.0, 2.0)
        assert pentagon.sum_max < pentagon.rate1_max + pentagon.rate2_max

    def test_rejects_negative_snr(self):
        with pytest.raises(InvalidParameterError):
            gaussian_mac_pentagon(-1.0, 1.0)

    def test_zero_snr_user_degenerates(self):
        pentagon = gaussian_mac_pentagon(0.0, 5.0)
        assert pentagon.rate1_max == 0.0
        assert pentagon.sum_max == pytest.approx(pentagon.rate2_max)


class TestDiscreteMac:
    def test_independent_binary_adders(self):
        # Noiseless binary "orthogonal" MAC: Y = (X1, X2) encoded as 2 bits.
        joint = np.zeros((2, 2, 4))
        for x1 in range(2):
            for x2 in range(2):
                joint[x1, x2, 2 * x1 + x2] = 0.25
        pentagon = discrete_mac_pentagon(joint)
        assert pentagon.rate1_max == pytest.approx(1.0)
        assert pentagon.rate2_max == pytest.approx(1.0)
        assert pentagon.sum_max == pytest.approx(2.0)

    def test_binary_adder_channel(self):
        # Y = X1 + X2 (integer sum): classical sum capacity 1.5 bits.
        joint = np.zeros((2, 2, 3))
        for x1 in range(2):
            for x2 in range(2):
                joint[x1, x2, x1 + x2] = 0.25
        pentagon = discrete_mac_pentagon(joint)
        assert pentagon.sum_max == pytest.approx(1.5)
        assert pentagon.rate1_max == pytest.approx(1.0)

    def test_wrong_ndim_rejected(self):
        with pytest.raises(InvalidParameterError):
            discrete_mac_pentagon(np.full((2, 2), 0.25))

    def test_random_joint_produces_valid_pentagon(self):
        rng = np.random.default_rng(9)
        joint = normalize_distribution(rng.random((2, 3, 4)))
        pentagon = discrete_mac_pentagon(joint)
        assert pentagon.sum_max <= pentagon.rate1_max + pentagon.rate2_max + 1e-9
