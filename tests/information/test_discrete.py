"""Unit tests for repro.information.discrete."""

import numpy as np
import pytest

from repro.exceptions import InvalidDistributionError
from repro.information.discrete import (
    conditional_entropy,
    conditional_mutual_information,
    entropy,
    joint_from_channel,
    kl_divergence,
    marginal,
    mutual_information,
    normalize_distribution,
    product_distribution,
    validate_distribution,
)


def uniform(*shape):
    size = int(np.prod(shape))
    return np.full(shape, 1.0 / size)


class TestValidation:
    def test_accepts_valid(self):
        out = validate_distribution([0.25, 0.75])
        assert out.sum() == pytest.approx(1.0)

    def test_rejects_negative(self):
        with pytest.raises(InvalidDistributionError):
            validate_distribution([-0.1, 1.1])

    def test_rejects_unnormalized(self):
        with pytest.raises(InvalidDistributionError):
            validate_distribution([0.4, 0.4])

    def test_rejects_empty(self):
        with pytest.raises(InvalidDistributionError):
            validate_distribution(np.array([]))

    def test_normalize_weights(self):
        out = normalize_distribution([2.0, 6.0])
        assert out == pytest.approx([0.25, 0.75])

    def test_normalize_rejects_zero_mass(self):
        with pytest.raises(InvalidDistributionError):
            normalize_distribution([0.0, 0.0])

    def test_normalize_rejects_negative(self):
        with pytest.raises(InvalidDistributionError):
            normalize_distribution([-1.0, 2.0])


class TestEntropy:
    def test_deterministic_is_zero(self):
        assert entropy([1.0, 0.0, 0.0]) == 0.0

    def test_uniform_is_log_alphabet(self):
        assert entropy(uniform(8)) == pytest.approx(3.0)

    def test_joint_uniform(self):
        assert entropy(uniform(2, 4)) == pytest.approx(3.0)

    def test_binary_matches_h2(self):
        from repro.information.functions import binary_entropy

        for p in (0.1, 0.3, 0.5):
            assert entropy([p, 1 - p]) == pytest.approx(binary_entropy(p))


class TestMarginal:
    def test_independent_factorizes(self):
        joint = product_distribution([0.3, 0.7], [0.25, 0.25, 0.5])
        np.testing.assert_allclose(marginal(joint, [0]), [0.3, 0.7])
        np.testing.assert_allclose(marginal(joint, [1]), [0.25, 0.25, 0.5])

    def test_axis_order_respected(self):
        joint = product_distribution([0.3, 0.7], [0.25, 0.25, 0.5])
        swapped = marginal(joint, [1, 0])
        assert swapped.shape == (3, 2)
        np.testing.assert_allclose(swapped, joint.T)

    def test_duplicate_axes_rejected(self):
        with pytest.raises(InvalidDistributionError):
            marginal(uniform(2, 2), [0, 0])

    def test_out_of_range_axis_rejected(self):
        with pytest.raises(InvalidDistributionError):
            marginal(uniform(2, 2), [5])


class TestMutualInformation:
    def test_independent_is_zero(self):
        joint = product_distribution([0.4, 0.6], [0.2, 0.8])
        assert mutual_information(joint, [0], [1]) == pytest.approx(0.0, abs=1e-12)

    def test_identical_variables_give_entropy(self):
        joint = np.zeros((2, 2))
        joint[0, 0] = 0.3
        joint[1, 1] = 0.7
        expected = entropy([0.3, 0.7])
        assert mutual_information(joint, [0], [1]) == pytest.approx(expected)

    def test_symmetry(self):
        rng = np.random.default_rng(7)
        joint = normalize_distribution(rng.random((3, 4)))
        assert mutual_information(joint, [0], [1]) == pytest.approx(
            mutual_information(joint, [1], [0])
        )

    def test_bsc_mutual_information(self):
        from repro.information.functions import binary_entropy

        p = 0.11
        joint = joint_from_channel([0.5, 0.5], [[1 - p, p], [p, 1 - p]])
        assert mutual_information(joint, [0], [1]) == pytest.approx(
            1.0 - binary_entropy(p)
        )


class TestConditionalQuantities:
    def test_conditional_entropy_of_copy_is_zero(self):
        joint = np.zeros((2, 2))
        joint[0, 0] = joint[1, 1] = 0.5
        assert conditional_entropy(joint, [0], [1]) == pytest.approx(0.0, abs=1e-12)

    def test_chain_rule(self):
        rng = np.random.default_rng(3)
        joint = normalize_distribution(rng.random((2, 3, 2)))
        h_xyz = entropy(joint)
        h_x = entropy(marginal(joint, [0]))
        h_y_given_x = conditional_entropy(joint, [1], [0])
        h_z_given_xy = conditional_entropy(joint, [2], [0, 1])
        assert h_xyz == pytest.approx(h_x + h_y_given_x + h_z_given_xy)

    def test_overlapping_axes_rejected(self):
        with pytest.raises(InvalidDistributionError):
            conditional_entropy(uniform(2, 2), [0], [0])

    def test_cmi_of_markov_chain_endpoint(self):
        # X -> Y -> Z with Z = Y: I(X; Z | Y) must be 0.
        rng = np.random.default_rng(11)
        p_xy = normalize_distribution(rng.random((2, 2)))
        joint = np.zeros((2, 2, 2))
        for x in range(2):
            for y in range(2):
                joint[x, y, y] = p_xy[x, y]
        assert conditional_mutual_information(joint, [0], [2], [1]) == pytest.approx(
            0.0, abs=1e-12
        )

    def test_cmi_nonnegative_random(self):
        rng = np.random.default_rng(5)
        for _ in range(10):
            joint = normalize_distribution(rng.random((2, 3, 2)))
            assert conditional_mutual_information(joint, [0], [1], [2]) >= 0.0


class TestKlDivergence:
    def test_identical_is_zero(self):
        p = [0.2, 0.8]
        assert kl_divergence(p, p) == pytest.approx(0.0, abs=1e-12)

    def test_nonnegative(self):
        rng = np.random.default_rng(1)
        for _ in range(10):
            p = normalize_distribution(rng.random(4))
            q = normalize_distribution(rng.random(4))
            assert kl_divergence(p, q) >= 0.0

    def test_infinite_on_support_mismatch(self):
        assert kl_divergence([0.5, 0.5], [1.0, 0.0]) == float("inf")

    def test_shape_mismatch_rejected(self):
        with pytest.raises(InvalidDistributionError):
            kl_divergence([0.5, 0.5], [0.25, 0.25, 0.5])


class TestJointFromChannel:
    def test_rows_scale_by_input(self):
        joint = joint_from_channel([0.25, 0.75], [[0.9, 0.1], [0.2, 0.8]])
        np.testing.assert_allclose(joint.sum(axis=1), [0.25, 0.75])

    def test_bad_channel_rejected(self):
        with pytest.raises(InvalidDistributionError):
            joint_from_channel([0.5, 0.5], [[0.9, 0.2], [0.2, 0.8]])

    def test_shape_mismatch_rejected(self):
        with pytest.raises(InvalidDistributionError):
            joint_from_channel([1.0], [[0.5, 0.5], [0.5, 0.5]])
