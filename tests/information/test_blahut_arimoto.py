"""Unit tests for repro.information.blahut_arimoto."""

import numpy as np
import pytest

from repro.exceptions import ConvergenceError, InvalidDistributionError
from repro.information.blahut_arimoto import blahut_arimoto, channel_capacity
from repro.information.functions import binary_entropy


class TestKnownCapacities:
    def test_bsc_capacity(self):
        for p in (0.0, 0.05, 0.11, 0.3, 0.5):
            matrix = np.array([[1 - p, p], [p, 1 - p]])
            assert channel_capacity(matrix) == pytest.approx(
                1 - binary_entropy(p), abs=1e-7
            )

    def test_bec_capacity(self):
        for e in (0.0, 0.2, 0.5, 0.9):
            matrix = np.array([[1 - e, 0.0, e], [0.0, 1 - e, e]])
            assert channel_capacity(matrix) == pytest.approx(1 - e, abs=1e-7)

    def test_noiseless_ternary(self):
        assert channel_capacity(np.eye(3)) == pytest.approx(np.log2(3), abs=1e-7)

    def test_useless_channel_capacity_zero(self):
        matrix = np.array([[0.5, 0.5], [0.5, 0.5]])
        assert channel_capacity(matrix) == pytest.approx(0.0, abs=1e-9)

    def test_z_channel_known_value(self):
        # Z-channel with flip probability 0.5 has capacity log2(5/4) ≈ 0.3219.
        matrix = np.array([[1.0, 0.0], [0.5, 0.5]])
        assert channel_capacity(matrix) == pytest.approx(np.log2(1.25), abs=1e-6)


class TestBlahutArimotoMechanics:
    def test_symmetric_channel_uniform_input(self):
        p = 0.2
        result = blahut_arimoto(np.array([[1 - p, p], [p, 1 - p]]))
        np.testing.assert_allclose(result.input_distribution, [0.5, 0.5], atol=1e-5)

    def test_gap_certificate(self):
        result = blahut_arimoto(np.array([[0.8, 0.2], [0.1, 0.9]]), tol=1e-10)
        assert 0.0 <= result.gap < 1e-10

    def test_iteration_budget_enforced(self):
        with pytest.raises(ConvergenceError):
            blahut_arimoto(np.array([[0.8, 0.2], [0.1, 0.9]]), tol=1e-12, max_iter=2)

    def test_invalid_matrix_rejected(self):
        with pytest.raises(InvalidDistributionError):
            blahut_arimoto(np.array([[0.9, 0.2], [0.1, 0.9]]))

    def test_non_matrix_rejected(self):
        with pytest.raises(InvalidDistributionError):
            blahut_arimoto(np.ones(3) / 3)

    def test_input_distribution_valid(self):
        result = blahut_arimoto(np.array([[0.7, 0.3], [0.2, 0.8]]))
        assert result.input_distribution.sum() == pytest.approx(1.0)
        assert np.all(result.input_distribution >= 0)

    def test_capacity_upper_bounded_by_log_alphabet(self):
        rng = np.random.default_rng(2)
        for _ in range(5):
            raw = rng.random((3, 4))
            matrix = raw / raw.sum(axis=1, keepdims=True)
            capacity = channel_capacity(matrix, tol=1e-9)
            assert -1e-9 <= capacity <= np.log2(3) + 1e-9
