"""Unit tests for repro.information.functions."""

import math

import numpy as np
import pytest

from repro.exceptions import InvalidParameterError
from repro.information.functions import (
    awgn_ber_bpsk,
    binary_entropy,
    db_to_linear,
    gaussian_capacity,
    inverse_binary_entropy,
    inverse_gaussian_capacity,
    linear_to_db,
    q_function,
    q_function_inverse,
    snr_for_bpsk_ber,
)


class TestGaussianCapacity:
    def test_zero_snr_gives_zero_rate(self):
        assert gaussian_capacity(0.0) == 0.0

    def test_unit_snr_gives_one_bit(self):
        assert gaussian_capacity(1.0) == pytest.approx(1.0)

    def test_snr_three_gives_two_bits(self):
        assert gaussian_capacity(3.0) == pytest.approx(2.0)

    def test_matches_log2_formula(self):
        for snr in (0.1, 1.7, 31.6, 1e4):
            assert gaussian_capacity(snr) == pytest.approx(math.log2(1 + snr))

    def test_vectorized_input(self):
        values = gaussian_capacity(np.array([0.0, 1.0, 3.0]))
        assert values == pytest.approx([0.0, 1.0, 2.0])

    def test_scalar_input_returns_python_float(self):
        assert isinstance(gaussian_capacity(2.0), float)

    def test_negative_snr_rejected(self):
        with pytest.raises(InvalidParameterError):
            gaussian_capacity(-0.5)

    def test_inverse_roundtrip(self):
        for rate in (0.0, 0.5, 1.0, 3.7):
            snr = inverse_gaussian_capacity(rate)
            assert gaussian_capacity(snr) == pytest.approx(rate)

    def test_inverse_rejects_negative_rate(self):
        with pytest.raises(InvalidParameterError):
            inverse_gaussian_capacity(-1.0)


class TestDecibels:
    def test_zero_db_is_unity(self):
        assert db_to_linear(0.0) == pytest.approx(1.0)

    def test_ten_db_is_ten(self):
        assert db_to_linear(10.0) == pytest.approx(10.0)

    def test_minus_three_db_is_half_ish(self):
        assert db_to_linear(-3.0) == pytest.approx(0.501187, rel=1e-5)

    def test_roundtrip(self):
        for value_db in (-20.0, -7.0, 0.0, 5.0, 15.0):
            assert linear_to_db(db_to_linear(value_db)) == pytest.approx(value_db)

    def test_db_of_nonpositive_rejected(self):
        with pytest.raises(InvalidParameterError):
            linear_to_db(0.0)
        with pytest.raises(InvalidParameterError):
            linear_to_db(-1.0)

    def test_vectorized(self):
        out = db_to_linear(np.array([0.0, 10.0, 20.0]))
        assert out == pytest.approx([1.0, 10.0, 100.0])


class TestBinaryEntropy:
    def test_extremes_are_zero(self):
        assert binary_entropy(0.0) == 0.0
        assert binary_entropy(1.0) == 0.0

    def test_maximum_at_half(self):
        assert binary_entropy(0.5) == pytest.approx(1.0)

    def test_symmetry(self):
        for p in (0.05, 0.2, 0.35):
            assert binary_entropy(p) == pytest.approx(binary_entropy(1 - p))

    def test_out_of_range_rejected(self):
        with pytest.raises(InvalidParameterError):
            binary_entropy(1.5)

    def test_inverse_roundtrip(self):
        for h in (0.0, 0.1, 0.5, 0.9, 1.0):
            p = inverse_binary_entropy(h)
            assert binary_entropy(p) == pytest.approx(h, abs=1e-9)
            assert 0.0 <= p <= 0.5

    def test_inverse_out_of_range_rejected(self):
        with pytest.raises(InvalidParameterError):
            inverse_binary_entropy(1.2)


class TestQFunction:
    def test_at_zero_is_half(self):
        assert q_function(0.0) == pytest.approx(0.5)

    def test_monotone_decreasing(self):
        xs = np.linspace(-3, 3, 13)
        qs = q_function(xs)
        assert np.all(np.diff(qs) < 0)

    def test_inverse_roundtrip(self):
        for p in (0.4, 0.1, 1e-3, 1e-6):
            assert q_function(q_function_inverse(p)) == pytest.approx(p, rel=1e-9)

    def test_inverse_domain(self):
        with pytest.raises(InvalidParameterError):
            q_function_inverse(0.0)
        with pytest.raises(InvalidParameterError):
            q_function_inverse(1.0)


class TestBpskBer:
    def test_known_value_at_zero_snr(self):
        assert awgn_ber_bpsk(0.0) == pytest.approx(0.5)

    def test_decreasing_in_snr(self):
        snrs = np.array([0.1, 1.0, 4.0, 10.0])
        bers = awgn_ber_bpsk(snrs)
        assert np.all(np.diff(bers) < 0)

    def test_snr_for_target_ber_roundtrip(self):
        for ber in (0.1, 1e-3, 1e-5):
            snr = snr_for_bpsk_ber(ber)
            assert awgn_ber_bpsk(snr) == pytest.approx(ber, rel=1e-9)

    def test_target_ber_domain(self):
        with pytest.raises(InvalidParameterError):
            snr_for_bpsk_ber(0.5)
