"""Unit tests for repro.information.typicality."""

import numpy as np
import pytest

from repro.exceptions import InvalidParameterError
from repro.information.discrete import product_distribution
from repro.information.typicality import (
    empirical_log_likelihood,
    is_jointly_typical,
    is_weakly_typical,
    typical_set_size,
    typicality_probability,
)


class TestEmpiricalLogLikelihood:
    def test_uniform_source(self):
        assert empirical_log_likelihood([0.5, 0.5], [0, 1, 0, 1]) == pytest.approx(1.0)

    def test_zero_probability_symbol_gives_inf(self):
        assert empirical_log_likelihood([1.0, 0.0], [0, 1]) == float("inf")

    def test_rejects_bad_symbols(self):
        with pytest.raises(InvalidParameterError):
            empirical_log_likelihood([0.5, 0.5], [0, 2])

    def test_rejects_empty_sequence(self):
        with pytest.raises(InvalidParameterError):
            empirical_log_likelihood([0.5, 0.5], [])


class TestWeakTypicality:
    def test_uniform_everything_typical(self):
        # For a uniform source every sequence has exactly entropy rate.
        assert is_weakly_typical([0.25] * 4, [0, 1, 2, 3, 0], eps=1e-9)

    def test_skewed_source_all_zeros_atypical(self):
        p = [0.9, 0.1]
        # all-ones sequence has -log2(0.1) = 3.32 bits/symbol >> H = 0.469
        assert not is_weakly_typical(p, [1] * 10, eps=0.5)

    def test_eps_must_be_positive(self):
        with pytest.raises(InvalidParameterError):
            is_weakly_typical([0.5, 0.5], [0], eps=0.0)

    def test_typical_sequence_of_skewed_source(self):
        p = [0.8, 0.2]
        # A sequence with empirical frequency matching p is typical.
        seq = [0] * 8 + [1] * 2
        assert is_weakly_typical(p, seq, eps=0.05)


class TestJointTypicality:
    def test_independent_uniform_pair(self):
        joint = product_distribution([0.5, 0.5], [0.5, 0.5])
        assert is_jointly_typical(joint, [[0, 1, 0], [1, 0, 1]], eps=1e-6)

    def test_correlated_pair_must_match(self):
        joint = np.zeros((2, 2))
        joint[0, 0] = joint[1, 1] = 0.5
        assert is_jointly_typical(joint, [[0, 1, 0, 1], [0, 1, 0, 1]], eps=1e-6)
        # Mismatched pair hits a zero-probability cell -> atypical.
        assert not is_jointly_typical(joint, [[0, 1], [1, 1]], eps=1.0)

    def test_sequence_count_mismatch_rejected(self):
        joint = product_distribution([0.5, 0.5], [0.5, 0.5])
        with pytest.raises(InvalidParameterError):
            is_jointly_typical(joint, [[0, 1]], eps=0.1)

    def test_length_mismatch_rejected(self):
        joint = product_distribution([0.5, 0.5], [0.5, 0.5])
        with pytest.raises(InvalidParameterError):
            is_jointly_typical(joint, [[0, 1], [0, 1, 0]], eps=0.1)


class TestTypicalSetCounting:
    def test_uniform_typical_set_is_everything(self):
        assert typical_set_size([0.5, 0.5], n=6, eps=0.01) == 64

    def test_deterministic_source_single_sequence(self):
        assert typical_set_size([1.0, 0.0], n=5, eps=0.1) == 1

    def test_size_bounded_by_aep(self):
        from repro.information.discrete import entropy

        p = [0.7, 0.3]
        n, eps = 8, 0.2
        size = typical_set_size(p, n=n, eps=eps)
        assert size <= 2 ** (n * (entropy(p) + eps)) + 1e-9

    def test_probability_tends_to_one(self):
        p = [0.7, 0.3]
        probs = [typicality_probability(p, n, eps=0.35) for n in (2, 6, 10)]
        assert probs[-1] > 0.8
        assert probs[-1] >= probs[0] - 1e-9

    def test_invalid_block_length(self):
        with pytest.raises(InvalidParameterError):
            typical_set_size([0.5, 0.5], n=0, eps=0.1)
        with pytest.raises(InvalidParameterError):
            typicality_probability([0.5, 0.5], n=0, eps=0.1)
