"""Unit tests for repro.network.groups."""

import numpy as np
import pytest

from repro.exceptions import InvalidParameterError
from repro.network.groups import (
    CyclicGroup,
    RandomBinning,
    XorGroup,
    relay_combine,
    relay_resolve,
)


class TestCyclicGroup:
    def test_addition_wraps(self):
        group = CyclicGroup(5)
        assert group.add(3, 4) == 2

    def test_identity(self):
        group = CyclicGroup(7)
        assert group.add(4, group.identity) == 4

    def test_negate_inverts(self):
        group = CyclicGroup(7)
        for x in range(7):
            assert group.add(x, group.negate(x)) == group.identity

    def test_subtract(self):
        group = CyclicGroup(7)
        assert group.subtract(2, 5) == 4

    def test_membership_enforced(self):
        group = CyclicGroup(4)
        with pytest.raises(InvalidParameterError):
            group.add(4, 0)
        with pytest.raises(InvalidParameterError):
            group.negate(-1)

    def test_order_one_is_trivial(self):
        group = CyclicGroup(1)
        assert group.add(0, 0) == 0

    def test_invalid_order_rejected(self):
        with pytest.raises(InvalidParameterError):
            CyclicGroup(0)


class TestXorGroup:
    def test_xor_addition(self):
        group = XorGroup(4)
        assert group.add(0b1010, 0b0110) == 0b1100

    def test_every_element_self_inverse(self):
        group = XorGroup(3)
        for x in range(group.order):
            assert group.add(x, x) == group.identity

    def test_negate_is_identity_map(self):
        group = XorGroup(3)
        for x in range(group.order):
            assert group.negate(x) == x

    def test_order(self):
        assert XorGroup(5).order == 32

    def test_membership_enforced(self):
        group = XorGroup(2)
        with pytest.raises(InvalidParameterError):
            group.add(4, 0)

    def test_invalid_width_rejected(self):
        with pytest.raises(InvalidParameterError):
            XorGroup(0)


class TestRelayCombineResolve:
    def test_roundtrip_cyclic(self):
        group = CyclicGroup(37)
        for wa in (0, 5, 36):
            for wb in (0, 17, 36):
                combined = relay_combine(group, wa, wb)
                assert relay_resolve(group, combined, wa) == wb
                assert relay_resolve(group, combined, wb) == wa

    def test_roundtrip_xor(self):
        group = XorGroup(8)
        rng = np.random.default_rng(4)
        for _ in range(20):
            wa, wb = int(rng.integers(256)), int(rng.integers(256))
            combined = relay_combine(group, wa, wb)
            assert relay_resolve(group, combined, wa) == wb
            assert relay_resolve(group, combined, wb) == wa


class TestRandomBinning:
    def test_assignment_shape(self, rng):
        binning = RandomBinning(100, 8, rng)
        assert binning.assignment.shape == (100,)
        assert set(np.unique(binning.assignment)) <= set(range(8))

    def test_bin_index_consistency(self, rng):
        binning = RandomBinning(64, 4, rng)
        for w in range(64):
            assert w in binning.bin_members(binning.bin_index(w))

    def test_bins_partition_messages(self, rng):
        binning = RandomBinning(50, 5, rng)
        members = np.concatenate([binning.bin_members(i) for i in range(5)])
        assert sorted(members.tolist()) == list(range(50))

    def test_roughly_uniform_occupancy(self):
        binning = RandomBinning(100000, 10, np.random.default_rng(123))
        counts = np.array([binning.bin_members(i).size for i in range(10)])
        assert counts.min() > 9000
        assert counts.max() < 11000

    def test_out_of_range_queries_rejected(self, rng):
        binning = RandomBinning(10, 2, rng)
        with pytest.raises(InvalidParameterError):
            binning.bin_index(10)
        with pytest.raises(InvalidParameterError):
            binning.bin_members(2)

    def test_invalid_sizes_rejected(self, rng):
        with pytest.raises(InvalidParameterError):
            RandomBinning(0, 2, rng)
        with pytest.raises(InvalidParameterError):
            RandomBinning(2, 0, rng)
