"""Unit tests for repro.network.cuts."""

import pytest

from repro.exceptions import InvalidParameterError
from repro.network.cuts import cuts_with_crossing_rate, enumerate_cuts
from repro.network.model import bidirectional_relay_network


class TestEnumerateCuts:
    def test_three_nodes_give_six_cuts(self):
        cuts = list(enumerate_cuts(("a", "b", "r")))
        assert len(cuts) == 6

    def test_matches_paper_enumeration(self):
        cuts = list(enumerate_cuts(("a", "b", "r")))
        expected = [
            frozenset("a"), frozenset("b"), frozenset("r"),
            frozenset(("a", "b")), frozenset(("a", "r")), frozenset(("b", "r")),
        ]
        assert cuts == expected

    def test_two_nodes(self):
        cuts = list(enumerate_cuts(("a", "b")))
        assert cuts == [frozenset("a"), frozenset("b")]

    def test_counts_scale_exponentially(self):
        assert len(list(enumerate_cuts("abcd"))) == 2 ** 4 - 2

    def test_single_node_rejected(self):
        with pytest.raises(InvalidParameterError):
            list(enumerate_cuts(("a",)))


class TestCutsWithCrossingRate:
    def test_df_network_has_five_active_cuts(self):
        network = bidirectional_relay_network(relay_decodes=True)
        active = cuts_with_crossing_rate(network)
        # All six cuts minus S={r} (the paper's N/A entry).
        assert len(active) == 5
        assert frozenset("r") not in {cut for cut, _ in active}

    def test_non_df_network_drops_ab_cut_too(self):
        network = bidirectional_relay_network(relay_decodes=False)
        active = cuts_with_crossing_rate(network)
        cuts = {cut for cut, _ in active}
        assert frozenset(("a", "b")) not in cuts
        assert len(active) == 4

    def test_messages_attached_to_cuts(self):
        network = bidirectional_relay_network()
        active = dict(cuts_with_crossing_rate(network))
        assert {m.name for m in active[frozenset("a")]} == {"Ra"}
        assert {m.name for m in active[frozenset(("a", "b"))]} == {"Ra", "Rb"}
