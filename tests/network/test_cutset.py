"""Unit tests for repro.network.cutset (the Lemma-1 engine)."""

import numpy as np
import pytest

from repro.channels.gains import LinkGains
from repro.exceptions import InvalidParameterError, InvalidProtocolError
from repro.information.functions import gaussian_capacity
from repro.network.cutset import (
    CutConstraint,
    GaussianMIOracle,
    PhaseSpec,
    ProtocolSchedule,
    cutset_outer_bound,
)
from repro.network.model import bidirectional_relay_network


@pytest.fixture
def oracle(paper_gains):
    return GaussianMIOracle(gains=paper_gains, power=10.0)


def mabc_schedule():
    return ProtocolSchedule(
        nodes=("a", "b", "r"),
        phases=(PhaseSpec({"a", "b"}), PhaseSpec({"r"})),
    )


def tdbc_schedule():
    return ProtocolSchedule(
        nodes=("a", "b", "r"),
        phases=(PhaseSpec({"a"}), PhaseSpec({"b"}), PhaseSpec({"r"})),
    )


class TestPhaseSpec:
    def test_empty_transmitters_rejected(self):
        with pytest.raises(InvalidProtocolError):
            PhaseSpec(set())

    def test_default_label(self):
        assert PhaseSpec({"b", "a"}).label == "a+b"


class TestProtocolSchedule:
    def test_empty_schedule_rejected(self):
        with pytest.raises(InvalidProtocolError):
            ProtocolSchedule(nodes=("a", "b"), phases=())

    def test_unknown_transmitter_rejected(self):
        with pytest.raises(InvalidProtocolError):
            ProtocolSchedule(nodes=("a", "b"), phases=(PhaseSpec({"x"}),))

    def test_n_phases(self):
        assert mabc_schedule().n_phases == 2


class TestGaussianOracle:
    def test_empty_sets_give_zero(self, oracle):
        assert oracle.mutual_information(0, frozenset(), frozenset("r"),
                                         frozenset()) == 0.0
        assert oracle.mutual_information(0, frozenset("a"), frozenset(),
                                         frozenset()) == 0.0

    def test_single_link(self, oracle, paper_gains):
        value = oracle.mutual_information(0, frozenset("a"), frozenset("r"),
                                          frozenset())
        assert value == pytest.approx(gaussian_capacity(10.0 * paper_gains.gar))

    def test_simo_cut(self, oracle, paper_gains):
        value = oracle.mutual_information(0, frozenset("a"),
                                          frozenset(("r", "b")), frozenset())
        expected = gaussian_capacity(10.0 * (paper_gains.gar + paper_gains.gab))
        assert value == pytest.approx(expected)

    def test_mac_sum(self, oracle, paper_gains):
        value = oracle.mutual_information(0, frozenset(("a", "b")),
                                          frozenset("r"), frozenset())
        expected = gaussian_capacity(10.0 * (paper_gains.gar + paper_gains.gbr))
        assert value == pytest.approx(expected)

    def test_conditioning_set_does_not_change_value(self, oracle):
        with_cond = oracle.mutual_information(0, frozenset("a"), frozenset("r"),
                                              frozenset("b"))
        without = oracle.mutual_information(0, frozenset("a"), frozenset("r"),
                                            frozenset())
        assert with_cond == pytest.approx(without)

    def test_negative_power_rejected(self, paper_gains):
        with pytest.raises(InvalidParameterError):
            GaussianMIOracle(gains=paper_gains, power=-1.0)


class TestCutsetOuterBound:
    def test_mabc_reproduces_theorem2_converse(self, oracle, paper_gains):
        """The engine must emit exactly (9), (11), (13), (14), (15)."""
        network = bidirectional_relay_network()
        constraints = cutset_outer_bound(network, mabc_schedule(), oracle)
        by_cut = {c.cut: c for c in constraints}
        p = 10.0
        car = gaussian_capacity(p * paper_gains.gar)
        cbr = gaussian_capacity(p * paper_gains.gbr)
        cmac = gaussian_capacity(p * (paper_gains.gar + paper_gains.gbr))

        # S1 = {a}: Ra <= d1 * C(P G_ar)          -- eq. (9)
        s1 = by_cut[frozenset("a")]
        assert s1.message_names == ("Ra",)
        assert s1.phase_mi == pytest.approx((car, 0.0))
        # S2 = {b}: Rb <= d1 * C(P G_br)          -- eq. (11)
        s2 = by_cut[frozenset("b")]
        assert s2.phase_mi == pytest.approx((cbr, 0.0))
        # S4 = {a,b}: Ra+Rb <= d1 * C(P(G_ar+G_br)) -- eq. (13)
        s4 = by_cut[frozenset(("a", "b"))]
        assert set(s4.message_names) == {"Ra", "Rb"}
        assert s4.phase_mi == pytest.approx((cmac, 0.0))
        # S5 = {a,r}: Ra <= d2 * C(P G_br)        -- eq. (14)
        s5 = by_cut[frozenset(("a", "r"))]
        assert s5.phase_mi == pytest.approx((0.0, cbr))
        # S6 = {b,r}: Rb <= d2 * C(P G_ar)        -- eq. (15)
        s6 = by_cut[frozenset(("b", "r"))]
        assert s6.phase_mi == pytest.approx((0.0, car))

    def test_tdbc_reproduces_theorem4(self, oracle, paper_gains):
        network = bidirectional_relay_network()
        constraints = cutset_outer_bound(network, tdbc_schedule(), oracle)
        by_cut = {c.cut: c for c in constraints}
        p = 10.0
        car = gaussian_capacity(p * paper_gains.gar)
        cbr = gaussian_capacity(p * paper_gains.gbr)
        cab = gaussian_capacity(p * paper_gains.gab)
        simo_a = gaussian_capacity(p * (paper_gains.gar + paper_gains.gab))
        simo_b = gaussian_capacity(p * (paper_gains.gbr + paper_gains.gab))

        assert by_cut[frozenset("a")].phase_mi == pytest.approx((simo_a, 0.0, 0.0))
        assert by_cut[frozenset(("a", "r"))].phase_mi == pytest.approx(
            (cab, 0.0, cbr))
        assert by_cut[frozenset("b")].phase_mi == pytest.approx((0.0, simo_b, 0.0))
        assert by_cut[frozenset(("b", "r"))].phase_mi == pytest.approx(
            (0.0, cab, car))
        assert by_cut[frozenset(("a", "b"))].phase_mi == pytest.approx(
            (car, cbr, 0.0))

    def test_relay_cut_absent(self, oracle):
        network = bidirectional_relay_network()
        constraints = cutset_outer_bound(network, mabc_schedule(), oracle)
        assert frozenset("r") not in {c.cut for c in constraints}

    def test_node_mismatch_rejected(self, oracle):
        network = bidirectional_relay_network()
        bad_schedule = ProtocolSchedule(nodes=("a", "b"), phases=(PhaseSpec({"a"}),))
        with pytest.raises(InvalidProtocolError):
            cutset_outer_bound(network, bad_schedule, oracle)


class TestCutConstraint:
    def test_bound_value(self):
        constraint = CutConstraint(cut=frozenset("a"), message_names=("Ra",),
                                   phase_mi=(2.0, 1.0))
        assert constraint.bound_value((0.25, 0.75)) == pytest.approx(1.25)

    def test_duration_length_checked(self):
        constraint = CutConstraint(cut=frozenset("a"), message_names=("Ra",),
                                   phase_mi=(2.0, 1.0))
        with pytest.raises(InvalidParameterError):
            constraint.bound_value((1.0,))
