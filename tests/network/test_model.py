"""Unit tests for repro.network.model."""

import pytest

from repro.exceptions import InvalidParameterError
from repro.network.model import Message, NetworkModel, bidirectional_relay_network


class TestMessage:
    def test_valid_message(self):
        msg = Message("Ra", "a", {"b", "r"})
        assert msg.source == "a"
        assert msg.destinations == frozenset({"b", "r"})

    def test_empty_destinations_rejected(self):
        with pytest.raises(InvalidParameterError):
            Message("Ra", "a", set())

    def test_self_destination_rejected(self):
        with pytest.raises(InvalidParameterError):
            Message("Ra", "a", {"a", "b"})

    def test_empty_name_rejected(self):
        with pytest.raises(InvalidParameterError):
            Message("", "a", {"b"})

    def test_crosses_cut_source_inside_dest_outside(self):
        msg = Message("Ra", "a", {"b", "r"})
        assert msg.crosses_cut(frozenset("a"))
        assert msg.crosses_cut(frozenset(("a", "b")))  # r still outside
        assert msg.crosses_cut(frozenset(("a", "r")))  # b still outside

    def test_does_not_cross_when_source_outside(self):
        msg = Message("Ra", "a", {"b", "r"})
        assert not msg.crosses_cut(frozenset("b"))
        assert not msg.crosses_cut(frozenset(("b", "r")))

    def test_does_not_cross_when_all_dests_inside(self):
        msg = Message("Ra", "a", {"b"})
        assert not msg.crosses_cut(frozenset(("a", "b")))


class TestNetworkModel:
    def test_duplicate_nodes_rejected(self):
        with pytest.raises(InvalidParameterError):
            NetworkModel(nodes=("a", "a"), messages=())

    def test_single_node_rejected(self):
        with pytest.raises(InvalidParameterError):
            NetworkModel(nodes=("a",), messages=())

    def test_duplicate_message_names_rejected(self):
        msgs = (Message("R", "a", {"b"}), Message("R", "b", {"a"}))
        with pytest.raises(InvalidParameterError):
            NetworkModel(nodes=("a", "b"), messages=msgs)

    def test_unknown_node_in_message_rejected(self):
        with pytest.raises(InvalidParameterError):
            NetworkModel(nodes=("a", "b"), messages=(Message("R", "a", {"x"}),))

    def test_message_lookup(self):
        network = bidirectional_relay_network()
        assert network.message_by_name("Ra").source == "a"
        with pytest.raises(InvalidParameterError):
            network.message_by_name("Rx")

    def test_crossing_messages_unknown_cut_rejected(self):
        network = bidirectional_relay_network()
        with pytest.raises(InvalidParameterError):
            network.crossing_messages({"z"})


class TestBidirectionalRelayNetwork:
    def test_df_mode_cut_ab_carries_both(self):
        network = bidirectional_relay_network(relay_decodes=True)
        crossing = network.crossing_messages({"a", "b"})
        assert {m.name for m in crossing} == {"Ra", "Rb"}

    def test_non_df_mode_cut_ab_empty(self):
        network = bidirectional_relay_network(relay_decodes=False)
        assert network.crossing_messages({"a", "b"}) == ()

    def test_relay_cut_carries_nothing(self):
        for df in (True, False):
            network = bidirectional_relay_network(relay_decodes=df)
            assert network.crossing_messages({"r"}) == ()

    def test_singleton_cuts(self):
        network = bidirectional_relay_network()
        assert {m.name for m in network.crossing_messages({"a"})} == {"Ra"}
        assert {m.name for m in network.crossing_messages({"b"})} == {"Rb"}

    def test_paired_cuts(self):
        network = bidirectional_relay_network()
        assert {m.name for m in network.crossing_messages({"a", "r"})} == {"Ra"}
        assert {m.name for m in network.crossing_messages({"b", "r"})} == {"Rb"}
