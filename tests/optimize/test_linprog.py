"""Unit tests for the LP facade."""

import numpy as np
import pytest

from repro.exceptions import (
    InfeasibleProblemError,
    InvalidParameterError,
    UnboundedProblemError,
)
from repro.optimize.linprog import LinearProgram, solve_lp


class TestLinearProgram:
    def test_dimension_validation(self):
        with pytest.raises(InvalidParameterError):
            LinearProgram(c=[1.0, 2.0], a_ub=[[1.0]], b_ub=[1.0])

    def test_matrix_without_rhs_rejected(self):
        with pytest.raises(InvalidParameterError):
            LinearProgram(c=[1.0], a_ub=[[1.0]], b_ub=None)

    def test_n_variables(self):
        assert LinearProgram(c=[1.0, 2.0, 3.0]).n_variables == 3


class TestBackends:
    @pytest.mark.parametrize("backend", ["scipy", "simplex"])
    def test_both_backends_solve(self, backend):
        problem = LinearProgram(
            c=[-3.0, -5.0],
            a_ub=[[1.0, 0.0], [0.0, 2.0], [3.0, 2.0]],
            b_ub=[4.0, 12.0, 18.0],
        )
        result = solve_lp(problem, backend=backend)
        assert result.objective == pytest.approx(-36.0)
        assert result.backend == backend

    @pytest.mark.parametrize("backend", ["scipy", "simplex"])
    def test_infeasible_uniform_error(self, backend):
        problem = LinearProgram(
            c=[1.0], a_ub=[[1.0], [-1.0]], b_ub=[1.0, -2.0]
        )
        with pytest.raises(InfeasibleProblemError):
            solve_lp(problem, backend=backend)

    @pytest.mark.parametrize("backend", ["scipy", "simplex"])
    def test_unbounded_uniform_error(self, backend):
        problem = LinearProgram(c=[-1.0])
        with pytest.raises(UnboundedProblemError):
            solve_lp(problem, backend=backend)

    def test_unknown_backend_rejected(self):
        with pytest.raises(InvalidParameterError):
            solve_lp(LinearProgram(c=[1.0]), backend="cplex")

    def test_backends_agree_on_random_problems(self):
        rng = np.random.default_rng(3)
        for _ in range(10):
            n = int(rng.integers(2, 5))
            problem = LinearProgram(
                c=rng.normal(size=n),
                a_ub=np.vstack([rng.normal(size=(2, n)), np.eye(n)]),
                b_ub=np.concatenate([rng.uniform(1, 3, size=2), np.full(n, 4.0)]),
                a_eq=np.ones((1, n)),
                b_eq=[1.0],
            )
            scipy_result = solve_lp(problem, backend="scipy")
            simplex_result = solve_lp(problem, backend="simplex")
            assert scipy_result.objective == pytest.approx(
                simplex_result.objective, abs=1e-7
            )
