"""Unit tests for the from-scratch simplex solver."""

import numpy as np
import pytest

from repro.exceptions import (
    InfeasibleProblemError,
    InvalidParameterError,
    UnboundedProblemError,
)
from repro.optimize.simplex import simplex_solve


class TestBasicProblems:
    def test_simple_maximization(self):
        # max x1 + x2 s.t. x1 <= 2, x2 <= 3  -> (2, 3)
        result = simplex_solve(
            c=[-1.0, -1.0],
            a_ub=[[1.0, 0.0], [0.0, 1.0]],
            b_ub=[2.0, 3.0],
        )
        assert result.objective == pytest.approx(-5.0)
        np.testing.assert_allclose(result.x, [2.0, 3.0], atol=1e-9)

    def test_classic_lp(self):
        # max 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18 -> (2, 6), 36
        result = simplex_solve(
            c=[-3.0, -5.0],
            a_ub=[[1.0, 0.0], [0.0, 2.0], [3.0, 2.0]],
            b_ub=[4.0, 12.0, 18.0],
        )
        assert result.objective == pytest.approx(-36.0)
        np.testing.assert_allclose(result.x, [2.0, 6.0], atol=1e-8)

    def test_equality_constraints(self):
        # min x1 + 2 x2 s.t. x1 + x2 == 1 -> (1, 0)
        result = simplex_solve(c=[1.0, 2.0], a_eq=[[1.0, 1.0]], b_eq=[1.0])
        assert result.objective == pytest.approx(1.0)
        np.testing.assert_allclose(result.x, [1.0, 0.0], atol=1e-9)

    def test_mixed_constraints(self):
        # max x1 s.t. x1 + x2 == 1, x1 <= 0.25
        result = simplex_solve(
            c=[-1.0, 0.0],
            a_ub=[[1.0, 0.0]],
            b_ub=[0.25],
            a_eq=[[1.0, 1.0]],
            b_eq=[1.0],
        )
        assert result.x[0] == pytest.approx(0.25)
        assert result.x[1] == pytest.approx(0.75)

    def test_negative_rhs_normalized(self):
        # x1 - x2 <= -1 with min x1 -> x must satisfy x2 >= x1 + 1.
        result = simplex_solve(c=[1.0, 0.0], a_ub=[[1.0, -1.0]], b_ub=[-1.0])
        assert result.objective == pytest.approx(0.0)
        assert result.x[1] >= 1.0 - 1e-9

    def test_unconstrained_zero_optimum(self):
        result = simplex_solve(c=[1.0, 2.0])
        np.testing.assert_allclose(result.x, [0.0, 0.0])


class TestEdgeCases:
    def test_infeasible_detected(self):
        with pytest.raises(InfeasibleProblemError):
            simplex_solve(
                c=[1.0],
                a_ub=[[1.0]],
                b_ub=[1.0],
                a_eq=[[1.0]],
                b_eq=[2.0],
            )

    def test_contradictory_inequalities_infeasible(self):
        # x <= 1 and -x <= -2 (i.e. x >= 2)
        with pytest.raises(InfeasibleProblemError):
            simplex_solve(c=[0.0], a_ub=[[1.0], [-1.0]], b_ub=[1.0, -2.0])

    def test_unbounded_detected(self):
        with pytest.raises(UnboundedProblemError):
            simplex_solve(c=[-1.0], a_ub=[[-1.0]], b_ub=[0.0])

    def test_unbounded_without_constraints(self):
        with pytest.raises(UnboundedProblemError):
            simplex_solve(c=[-1.0, 0.0])

    def test_degenerate_redundant_constraints(self):
        # Duplicate rows must not break phase 1/2 transitions.
        result = simplex_solve(
            c=[-1.0, -1.0],
            a_ub=[[1.0, 1.0], [1.0, 1.0], [1.0, 0.0]],
            b_ub=[1.0, 1.0, 1.0],
        )
        assert result.objective == pytest.approx(-1.0)

    def test_zero_rhs_equality(self):
        result = simplex_solve(
            c=[1.0, 1.0],
            a_eq=[[1.0, -1.0]],
            b_eq=[0.0],
        )
        assert result.objective == pytest.approx(0.0)

    def test_shape_validation(self):
        with pytest.raises(InvalidParameterError):
            simplex_solve(c=[1.0, 2.0], a_ub=[[1.0]], b_ub=[1.0])

    def test_empty_objective_rejected(self):
        with pytest.raises(InvalidParameterError):
            simplex_solve(c=[])


class TestAgainstScipy:
    def test_random_feasible_problems_match_scipy(self):
        from scipy.optimize import linprog

        rng = np.random.default_rng(11)
        for trial in range(25):
            n, m = int(rng.integers(2, 6)), int(rng.integers(1, 5))
            c = rng.normal(size=n)
            a_ub = rng.normal(size=(m, n))
            # Guarantee a bounded feasible region: cap every variable.
            a_ub = np.vstack([a_ub, np.eye(n)])
            b_ub = np.concatenate([rng.uniform(0.5, 2.0, size=m),
                                   np.full(n, 5.0)])
            ours = simplex_solve(c, a_ub=a_ub, b_ub=b_ub)
            ref = linprog(c, A_ub=a_ub, b_ub=b_ub,
                          bounds=[(0, None)] * n, method="highs")
            assert ref.success
            assert ours.objective == pytest.approx(ref.fun, abs=1e-7), (
                f"trial {trial}: simplex {ours.objective} vs scipy {ref.fun}"
            )
