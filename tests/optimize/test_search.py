"""Unit tests for scalar search utilities."""

import math

import pytest

from repro.exceptions import InvalidParameterError
from repro.optimize.search import find_crossover, golden_section_maximize, grid_maximize


class TestGoldenSection:
    def test_parabola_peak(self):
        result = golden_section_maximize(lambda x: -(x - 1.3) ** 2, 0.0, 3.0)
        assert result.x == pytest.approx(1.3, abs=1e-6)
        assert result.value == pytest.approx(0.0, abs=1e-10)

    def test_boundary_maximum(self):
        result = golden_section_maximize(lambda x: x, 0.0, 2.0)
        assert result.x == pytest.approx(2.0, abs=1e-6)

    def test_sine_peak(self):
        result = golden_section_maximize(math.sin, 0.0, math.pi)
        assert result.x == pytest.approx(math.pi / 2, abs=1e-6)

    def test_domain_validation(self):
        with pytest.raises(InvalidParameterError):
            golden_section_maximize(lambda x: x, 1.0, 1.0)
        with pytest.raises(InvalidParameterError):
            golden_section_maximize(lambda x: x, 0.0, 1.0, tol=0.0)


class TestGridMaximize:
    def test_finds_global_max_of_bimodal(self):
        # Two peaks; the higher one is at x = 2.5.
        def f(x):
            return math.exp(-((x - 0.5) ** 2) * 8) + 1.2 * math.exp(
                -((x - 2.5) ** 2) * 8
            )

        result = grid_maximize(f, 0.0, 3.0, n_points=61, refinements=4)
        assert result.x == pytest.approx(2.5, abs=1e-3)

    def test_refinements_tighten(self):
        coarse = grid_maximize(lambda x: -(x - 1.234567) ** 2, 0.0, 3.0,
                               n_points=11, refinements=0)
        fine = grid_maximize(lambda x: -(x - 1.234567) ** 2, 0.0, 3.0,
                             n_points=11, refinements=6)
        assert abs(fine.x - 1.234567) <= abs(coarse.x - 1.234567) + 1e-12

    def test_domain_validation(self):
        with pytest.raises(InvalidParameterError):
            grid_maximize(lambda x: x, 2.0, 1.0)
        with pytest.raises(InvalidParameterError):
            grid_maximize(lambda x: x, 0.0, 1.0, n_points=2)
        with pytest.raises(InvalidParameterError):
            grid_maximize(lambda x: x, 0.0, 1.0, refinements=-1)


class TestFindCrossover:
    def test_linear_root(self):
        assert find_crossover(lambda x: x - 1.5, 0.0, 3.0) == pytest.approx(1.5)

    def test_endpoint_roots(self):
        assert find_crossover(lambda x: x, 0.0, 1.0) == 0.0
        assert find_crossover(lambda x: x - 1.0, 0.0, 1.0) == 1.0

    def test_requires_sign_change(self):
        with pytest.raises(InvalidParameterError):
            find_crossover(lambda x: x + 1.0, 0.0, 1.0)

    def test_nonlinear_root(self):
        root = find_crossover(lambda x: math.cos(x), 0.0, 3.0)
        assert root == pytest.approx(math.pi / 2, abs=1e-7)
