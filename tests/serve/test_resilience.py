"""Serve-layer resilience: health probes, structured retryability, and
client reconnect-and-retry under injected socket faults.

The client-facing guarantee mirrors the engine's: under injected socket
chaos a request either returns the bitwise-identical result (after
transparent retries — safe because identical requests dedup server-side)
or raises one typed :class:`ServeError` whose ``retryable`` flag tells
the caller whether trying again makes sense.
"""

import asyncio
import threading
import time

import pytest

from repro.api import evaluate
from repro.campaign.spec import CampaignSpec, FadingSpec
from repro.channels.gains import LinkGains
from repro.core.protocols import Protocol
from repro.exceptions import CampaignTimeoutError
from repro.faults import FaultPlan, FaultRule
from repro.serve import CampaignServer, ServeClient, ServeConfig, ServeError


@pytest.fixture()
def start_server(tmp_path):
    """Factory fixture: boot a (possibly fault-armed) daemon in a thread."""
    running = []

    def start(fault_plan=None, **overrides):
        index = len(running)
        options = {
            "socket_path": str(tmp_path / f"serve-{index}.sock"),
            "cache": str(tmp_path / f"cache-{index}"),
            "processes": 2,
        }
        options.update(overrides)
        config = ServeConfig(**options)
        server = CampaignServer(config, fault_plan=fault_plan)
        thread = threading.Thread(
            target=lambda: asyncio.run(server.serve_forever()), daemon=True
        )
        thread.start()
        client = ServeClient(config.socket_path, timeout=60)
        deadline = time.monotonic() + 15
        while True:
            try:
                client.ping()
                break
            except ServeError:
                if time.monotonic() > deadline:
                    raise
                time.sleep(0.02)
        running.append((server, thread, client))
        return server, client

    yield start
    for server, thread, client in running:
        try:
            client.shutdown()
        except ServeError:
            pass
        thread.join(timeout=20)
        assert not thread.is_alive()


def _gate_evaluations(server):
    gate = threading.Event()
    original = server._evaluate

    def gated(spec, options, progress):
        assert gate.wait(timeout=30)
        return original(spec, options, progress)

    server._evaluate = gated
    return gate


def _wait_for(predicate, timeout=15):
    deadline = time.monotonic() + timeout
    while not predicate():
        if time.monotonic() > deadline:
            raise AssertionError("condition not reached in time")
        time.sleep(0.02)


def socket_plan(kind, event, **kwargs):
    """A plan severing/delaying the first outbound frame of ``event``."""
    return FaultPlan(rules=(FaultRule(kind=kind, site=event, **kwargs),))


class TestHealthOp:
    def test_health_snapshot(self, start_server):
        _, client = start_server()
        health = client.health()
        assert health["status"] == "ok"
        assert health["executor"] == "async"
        assert health["in_flight"] == 0
        assert health["pool_rebuilds"] == 0
        assert health["faults_injected"] == {}
        assert health["stats"]["requests"] >= 1
        assert health["cache"] is True

    def test_health_via_cli_printer(self, start_server, capsys):
        from repro.cli import main

        server, _ = start_server()
        assert main(["client", "--socket", server.config.socket_path, "health"]) == 0
        out = capsys.readouterr().out
        assert "status: ok" in out
        assert "pool_rebuilds: 0" in out


class TestRetryableFlags:
    def test_invalid_is_not_retryable(self, start_server):
        _, client = start_server()
        with pytest.raises(ServeError) as excinfo:
            client.evaluate("no-such-scenario")
        assert excinfo.value.code == "invalid"
        assert excinfo.value.retryable is False

    def test_busy_is_retryable(self, start_server):
        server, client = start_server(max_pending=1)
        gate = _gate_evaluations(server)
        holder = threading.Thread(
            target=lambda: ServeClient(server.config.socket_path, timeout=60).evaluate(
                "fig4-operating-points"
            )
        )
        holder.start()
        _wait_for(lambda: client.stats()["in_flight"] == 1)
        with pytest.raises(ServeError) as excinfo:
            client.evaluate("fig3-placement")
        assert excinfo.value.code == "busy"
        assert excinfo.value.retryable is True
        gate.set()
        holder.join(timeout=30)

    def test_subscriber_timeout_is_retryable(self, start_server):
        server, client = start_server()
        gate = _gate_evaluations(server)
        with pytest.raises(ServeError) as excinfo:
            client.evaluate("fig4-operating-points", timeout=0.3)
        assert excinfo.value.code == "timeout"
        assert excinfo.value.retryable is True
        gate.set()
        _wait_for(lambda: client.stats()["in_flight"] == 0)

    def test_unreachable_is_not_retryable(self, tmp_path):
        client = ServeClient(str(tmp_path / "nobody-home.sock"), retries=5)
        started = time.monotonic()
        with pytest.raises(ServeError) as excinfo:
            client.ping()
        assert excinfo.value.code == "unreachable"
        assert excinfo.value.retryable is False
        # Not retried: no backoff schedule was slept through.
        assert time.monotonic() - started < 1.0


class TestClientReconnect:
    def test_severed_result_frame_is_retried_to_success(self, start_server):
        server, _ = start_server(fault_plan=socket_plan("socket-close", "result"))
        client = ServeClient(server.config.socket_path, timeout=60, retries=2)
        served = client.evaluate("fig4-operating-points")
        local = evaluate("fig4-operating-points")
        assert served.values.tobytes() == local.values.tobytes()
        # The first attempt computed and cached before the frame was
        # severed, so the retry is served from the store.
        assert served.served_from == "cache"
        health = client.health()
        assert health["faults_injected"] == {"socket-close": 1}

    def test_torn_result_frame_is_retried_to_success(self, start_server):
        server, _ = start_server(fault_plan=socket_plan("socket-drop", "result"))
        client = ServeClient(server.config.socket_path, timeout=60, retries=2)
        served = client.evaluate("fig4-operating-points")
        local = evaluate("fig4-operating-points")
        assert served.values.tobytes() == local.values.tobytes()
        assert client.health()["faults_injected"] == {"socket-drop": 1}

    def test_severed_accepted_frame_rejoins_the_job(self, start_server):
        server, _ = start_server(fault_plan=socket_plan("socket-close", "accepted"))
        client = ServeClient(server.config.socket_path, timeout=60, retries=2)
        served = client.evaluate("fig4-operating-points")
        local = evaluate("fig4-operating-points")
        # The severed request's job kept running server-side; the retry
        # joined it (or read its finished result) — never a second
        # divergent evaluation.
        assert served.values.tobytes() == local.values.tobytes()
        assert client.stats()["stats"]["computed"] == 1

    def test_delayed_frame_times_out_then_retries(self, start_server):
        server, _ = start_server(
            fault_plan=socket_plan("socket-delay", "pong", delay_seconds=3.0)
        )
        client = ServeClient(
            server.config.socket_path, timeout=1.0, retries=1, backoff_base=0.0
        )
        # First pong stalls past the socket timeout; the retry's pong is
        # prompt (the rule fires once per frame ordinal).
        pong = client.ping()
        assert pong["protocol_version"] >= 1
        assert client.health()["faults_injected"] == {"socket-delay": 1}

    def test_zero_retries_surfaces_the_disconnect(self, start_server):
        server, _ = start_server(fault_plan=socket_plan("socket-close", "result"))
        client = ServeClient(server.config.socket_path, timeout=60, retries=0)
        with pytest.raises(ServeError) as excinfo:
            client.evaluate("fig4-operating-points")
        assert excinfo.value.code == "disconnected"
        assert excinfo.value.retryable is True

    def test_negative_retries_rejected(self, tmp_path):
        from repro.exceptions import ReproError

        with pytest.raises(ReproError):
            ServeClient(str(tmp_path / "x.sock"), retries=-1)


class TestEngineFaultsThroughDaemon:
    def test_chunk_retries_recover_and_are_reported(self, start_server):
        plan = FaultPlan(rules=(FaultRule(kind="chunk-error", site="chunk["),))
        server, client = start_server(fault_plan=plan)
        served = client.evaluate("fig4-operating-points")
        local = evaluate("fig4-operating-points")
        assert served.values.tobytes() == local.values.tobytes()
        assert served.payload["chunk_retries"] >= 1
        assert client.stats()["stats"]["chunk_retries"] >= 1

    def test_worker_death_recovers_and_is_reported(self, start_server):
        plan = FaultPlan(rules=(FaultRule(kind="worker-death", site="chunk["),))
        server, client = start_server(fault_plan=plan)
        served = client.evaluate("fig4-operating-points")
        local = evaluate("fig4-operating-points")
        assert served.values.tobytes() == local.values.tobytes()
        assert served.payload["pool_rebuilds"] >= 1
        assert client.health()["pool_rebuilds"] >= 1


class TestDeadlinePropagation:
    def spec(self):
        return CampaignSpec(
            protocols=(Protocol.MABC, Protocol.TDBC),
            powers_db=(0.0, 10.0),
            gains=(LinkGains.from_db(-7.0, 0.0, 5.0),),
            fading=FadingSpec(n_draws=12, seed=11),
        )

    def test_request_deadline_reaches_the_chunk_loop(self, tmp_path):
        # Direct seam test (no sockets, no timing races): a deadline that
        # has effectively already passed aborts the engine between chunks
        # with the typed error the daemon maps to a retryable "timeout".
        server = CampaignServer(
            ServeConfig(socket_path=str(tmp_path / "s.sock"), cache=str(tmp_path))
        )
        with pytest.raises(CampaignTimeoutError):
            server._evaluate(
                self.spec(), {"timeout": 1e-9, "executor": "serial"}, progress=None
            )

    def test_cached_grid_is_served_even_past_the_deadline(self, tmp_path):
        server = CampaignServer(
            ServeConfig(socket_path=str(tmp_path / "s.sock"), cache=str(tmp_path))
        )
        spec = self.spec()
        warm = server._evaluate(spec, {"executor": "serial"}, progress=None)
        again = server._evaluate(
            spec, {"timeout": 1e-9, "executor": "serial"}, progress=None
        )
        assert again.from_cache
        assert again.values.tobytes() == warm.values.tobytes()
