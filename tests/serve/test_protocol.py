"""Wire protocol invariants: framing, request validation, exact floats."""

import math

import numpy as np
import pytest

from repro.serve.protocol import (
    ERROR_CODES,
    ProtocolError,
    decode_frame,
    encode_frame,
    error_event,
    parse_request,
    result_payload,
    values_from_payload,
)


class TestFraming:
    def test_round_trip(self):
        frame = {"op": "ping", "id": "r-1"}
        assert decode_frame(encode_frame(frame)) == frame

    def test_frames_are_single_lines(self):
        encoded = encode_frame({"op": "ping", "id": "a\nb"})
        assert encoded.endswith(b"\n")
        assert encoded.count(b"\n") == 1

    def test_rejects_non_json(self):
        with pytest.raises(ProtocolError):
            decode_frame(b"not json\n")

    def test_rejects_non_object(self):
        with pytest.raises(ProtocolError):
            decode_frame(b"[1, 2]\n")

    def test_rejects_invalid_utf8(self):
        with pytest.raises(ProtocolError):
            decode_frame(b"\xff\xfe\n")


class TestParseRequest:
    def test_evaluate_needs_scenario(self):
        with pytest.raises(ProtocolError):
            parse_request({"op": "evaluate", "id": "r"})

    def test_ping_takes_no_scenario(self):
        with pytest.raises(ProtocolError):
            parse_request({"op": "ping", "id": "r", "scenario": {"name": "x"}})

    def test_unknown_op(self):
        with pytest.raises(ProtocolError):
            parse_request({"op": "explode", "id": "r"})

    def test_unknown_option_key(self):
        with pytest.raises(ProtocolError):
            parse_request(
                {
                    "op": "evaluate",
                    "id": "r",
                    "scenario": {"name": "x"},
                    "options": {"shard": "1/2"},
                }
            )

    @pytest.mark.parametrize(
        "options",
        [
            {"chunk_size": 0},
            {"chunk_size": True},
            {"chunk_size": "16"},
            {"timeout": 0},
            {"timeout": -1.0},
            {"timeout": True},
            {"executor": 3},
        ],
    )
    def test_bad_option_values(self, options):
        with pytest.raises(ProtocolError):
            parse_request(
                {
                    "op": "evaluate",
                    "id": "r",
                    "scenario": {"name": "x"},
                    "options": options,
                }
            )

    def test_good_request(self):
        request = parse_request(
            {
                "op": "evaluate",
                "id": "r-7",
                "scenario": {"name": "fig4-operating-points"},
                "options": {"executor": "serial", "chunk_size": 4, "timeout": 2.5},
            }
        )
        assert request.op == "evaluate"
        assert request.id == "r-7"
        assert request.options["chunk_size"] == 4


class TestErrorEvents:
    def test_known_codes_only(self):
        with pytest.raises(ProtocolError):
            error_event("r", "no-such-code", "boom")
        for code in ERROR_CODES:
            assert error_event("r", code, "boom")["code"] == code


class TestPayloadTransport:
    def test_values_round_trip_bitwise(self):
        values = np.array(
            [0.1, 1 / 3, math.pi, 1e-308, 2.5, np.nan, np.inf, -np.inf, 0.0]
        ).reshape(3, 3)
        payload = result_payload(
            scenario_name="s",
            objective="sum_rate",
            spec_hash="h",
            values=values,
            served_from="computed",
            executor_name="serial",
            cells_from_cache=0,
            cells_computed=9,
            elapsed_seconds=0.1,
        )
        # Through the actual wire encoding, not just the dict.
        restored = values_from_payload(decode_frame(encode_frame(payload)))
        assert restored.shape == values.shape
        assert restored.tobytes() == values.tobytes()

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ProtocolError):
            values_from_payload({"shape": [2, 2], "values": [1.0, 2.0, 3.0]})

    def test_malformed_payload_rejected(self):
        with pytest.raises(ProtocolError):
            values_from_payload({"values": [1.0]})
