"""Scenario reference format: name and inline-spec forms round-trip."""

import pytest

from repro.campaign.spec import CampaignSpec, FadingSpec
from repro.channels.gains import LinkGains
from repro.core.protocols import Protocol
from repro.exceptions import InvalidParameterError
from repro.scenarios import Scenario, get_scenario
from repro.scenarios.wire import request_to_scenario, scenario_to_request


@pytest.fixture()
def scenario():
    spec = CampaignSpec(
        protocols=(Protocol.MABC, Protocol.HBC),
        powers_db=(0.0, 10.0),
        gains=(LinkGains.from_db(-7.0, 0.0, 5.0),),
        fading=FadingSpec(n_draws=5, seed=3),
    )
    return Scenario.from_campaign_spec(spec, name="wire-test")


class TestNameForm:
    def test_string_becomes_name_reference(self):
        assert scenario_to_request("fig4-operating-points") == {
            "name": "fig4-operating-points"
        }

    def test_resolves_through_registry(self):
        scenario = request_to_scenario({"name": "fig4-operating-points"})
        assert scenario.name == "fig4-operating-points"
        expected = get_scenario("fig4-operating-points").to_campaign_spec()
        assert scenario.to_campaign_spec().spec_hash() == expected.spec_hash()

    def test_unknown_name_rejected(self):
        with pytest.raises(InvalidParameterError):
            request_to_scenario({"name": "no-such-scenario"})


class TestInlineForm:
    def test_round_trip_preserves_spec_hash(self, scenario):
        reference = scenario_to_request(scenario)
        assert reference["label"] == "wire-test"
        restored = request_to_scenario(reference)
        assert restored.name == "wire-test"
        assert (
            restored.to_campaign_spec().spec_hash()
            == scenario.to_campaign_spec().spec_hash()
        )

    def test_reference_is_json_plain(self, scenario):
        import json

        encoded = json.dumps(scenario_to_request(scenario))
        restored = request_to_scenario(json.loads(encoded))
        assert (
            restored.to_campaign_spec().spec_hash()
            == scenario.to_campaign_spec().spec_hash()
        )

    def test_objective_travels(self, scenario):
        reference = scenario_to_request(scenario)
        reference["objective"] = "round_robin_sum_rate"
        assert request_to_scenario(reference).objective == "round_robin_sum_rate"


class TestValidation:
    def test_rejects_non_mapping(self):
        with pytest.raises(InvalidParameterError):
            request_to_scenario("fig4-operating-points")

    def test_rejects_unknown_keys(self):
        with pytest.raises(InvalidParameterError):
            request_to_scenario({"name": "x", "shard": "1/2"})

    def test_rejects_both_name_and_spec(self, scenario):
        reference = scenario_to_request(scenario)
        reference["name"] = "fig4-operating-points"
        with pytest.raises(InvalidParameterError):
            request_to_scenario(reference)

    def test_rejects_neither(self):
        with pytest.raises(InvalidParameterError):
            request_to_scenario({})

    def test_rejects_bad_objective(self, scenario):
        reference = scenario_to_request(scenario)
        reference["objective"] = "maximize-vibes"
        with pytest.raises(InvalidParameterError):
            request_to_scenario(reference)

    def test_rejects_malformed_spec(self):
        with pytest.raises(InvalidParameterError):
            request_to_scenario({"spec": {"protocols": ["nope"]}})

    def test_rejects_non_scenario_object(self):
        with pytest.raises(InvalidParameterError):
            scenario_to_request(42)
