"""Daemon behavior: served results are bitwise-identical to local runs,
identical in-flight requests deduplicate onto one job, hot requests come
straight from the cache, and overload/timeout/shutdown degrade cleanly."""

import asyncio
import os
import threading
import time

import numpy as np
import pytest

from repro.api import evaluate
from repro.campaign.engine import run_campaign
from repro.campaign.spec import CampaignSpec, FadingSpec
from repro.channels.gains import LinkGains
from repro.core.protocols import Protocol
from repro.exceptions import InvalidParameterError
from repro.scenarios import Scenario
from repro.serve import CampaignServer, ServeClient, ServeConfig, ServeError


@pytest.fixture()
def start_server(tmp_path):
    """Factory fixture: boot a daemon in a thread, tear it down after."""
    running = []

    def start(**overrides):
        index = len(running)
        options = {
            "socket_path": str(tmp_path / f"serve-{index}.sock"),
            "cache": str(tmp_path / f"cache-{index}"),
            "processes": 2,
        }
        options.update(overrides)
        config = ServeConfig(**options)
        server = CampaignServer(config)
        thread = threading.Thread(
            target=lambda: asyncio.run(server.serve_forever()), daemon=True
        )
        thread.start()
        client = ServeClient(config.socket_path, timeout=60)
        deadline = time.monotonic() + 15
        while True:
            try:
                client.ping()
                break
            except ServeError:
                if time.monotonic() > deadline:
                    raise
                time.sleep(0.02)
        running.append((server, thread, client))
        return server, client

    yield start
    for server, thread, client in running:
        try:
            client.shutdown()
        except ServeError:
            pass
        thread.join(timeout=20)
        assert not thread.is_alive()


def _gate_evaluations(server):
    """Block every job at the evaluation seam until the gate is set."""
    gate = threading.Event()
    original = server._evaluate

    def gated(spec, options, progress):
        assert gate.wait(timeout=30)
        return original(spec, options, progress)

    server._evaluate = gated
    return gate


def _wait_for(predicate, timeout=15):
    deadline = time.monotonic() + timeout
    while not predicate():
        if time.monotonic() > deadline:
            raise AssertionError("condition not reached in time")
        time.sleep(0.02)


def _in_flight(client) -> int:
    return client.stats()["in_flight"]


class TestServedResults:
    def test_bitwise_identical_to_local(self, start_server):
        _, client = start_server()
        served = client.evaluate("fig4-operating-points")
        local = evaluate("fig4-operating-points")
        assert served.served_from == "computed"
        assert served.values.tobytes() == local.values.tobytes()

    def test_second_request_hits_cache(self, start_server):
        _, client = start_server()
        first = client.evaluate("fig4-operating-points")
        second = client.evaluate("fig4-operating-points")
        assert first.served_from == "computed"
        assert second.served_from == "cache"
        assert second.values.tobytes() == first.values.tobytes()
        stats = client.stats()["stats"]
        assert stats["served_from_cache"] == 1
        assert stats["computed"] == 1

    def test_inline_scenario_with_fading(self, start_server):
        _, client = start_server()
        spec = CampaignSpec(
            protocols=(Protocol.MABC, Protocol.TDBC),
            powers_db=(0.0, 10.0),
            gains=(LinkGains.from_db(-7.0, 0.0, 5.0),),
            fading=FadingSpec(n_draws=7, seed=13),
        )
        scenario = Scenario.from_campaign_spec(spec, name="adhoc-fading")
        served = client.evaluate(scenario)
        reference = run_campaign(spec, executor="serial")
        assert served.values.tobytes() == reference.values.tobytes()
        assert served.payload["scenario"] == "adhoc-fading"

    def test_progress_events_stream(self, start_server):
        _, client = start_server()
        ticks = []
        client.evaluate(
            "fig4-operating-points",
            chunk_size=2,
            progress=lambda done, total: ticks.append((done, total)),
        )
        assert ticks, "expected at least one progress event"
        assert ticks[-1][0] == ticks[-1][1]
        dones = [done for done, _ in ticks]
        assert dones == sorted(dones)

    def test_unknown_scenario_is_invalid(self, start_server):
        _, client = start_server()
        with pytest.raises(ServeError) as excinfo:
            client.evaluate("no-such-scenario")
        assert excinfo.value.code == "invalid"

    def test_bad_executor_is_invalid(self, start_server):
        _, client = start_server()
        with pytest.raises(ServeError) as excinfo:
            client.evaluate("fig4-operating-points", executor="warp-drive")
        assert excinfo.value.code == "invalid"


class TestDeduplication:
    def test_identical_in_flight_requests_share_one_job(self, start_server):
        server, client = start_server()
        gate = _gate_evaluations(server)
        results = {}

        def ask(tag):
            worker = ServeClient(server.config.socket_path, timeout=60)
            results[tag] = worker.evaluate("fig4-operating-points")

        first = threading.Thread(target=ask, args=("first",))
        first.start()
        _wait_for(lambda: _in_flight(client) == 1)
        second = threading.Thread(target=ask, args=("second",))
        second.start()
        _wait_for(lambda: client.stats()["stats"]["deduplicated"] == 1)
        assert _in_flight(client) == 1  # still one job, two subscribers
        gate.set()
        first.join(timeout=30)
        second.join(timeout=30)
        served = {results["first"].served_from, results["second"].served_from}
        assert served == {"computed", "joined"}
        assert (
            results["first"].values.tobytes() == results["second"].values.tobytes()
        )
        assert client.stats()["stats"]["computed"] == 1

    def test_request_after_completion_starts_fresh(self, start_server):
        server, client = start_server(cache=False)
        first = client.evaluate("fig4-operating-points")
        second = client.evaluate("fig4-operating-points")
        # Without a cache there is no hot path and no in-flight overlap:
        # both requests compute (and agree bitwise).
        assert first.served_from == "computed"
        assert second.served_from == "computed"
        assert first.values.tobytes() == second.values.tobytes()


class TestDegradation:
    def test_busy_backpressure(self, start_server):
        server, client = start_server(max_pending=1)
        gate = _gate_evaluations(server)
        holder = threading.Thread(
            target=lambda: ServeClient(server.config.socket_path, timeout=60).evaluate(
                "fig4-operating-points"
            )
        )
        holder.start()
        _wait_for(lambda: _in_flight(client) == 1)
        with pytest.raises(ServeError) as excinfo:
            client.evaluate("fig3-placement")
        assert excinfo.value.code == "busy"
        assert client.stats()["stats"]["rejected_busy"] == 1
        gate.set()
        holder.join(timeout=30)

    def test_request_timeout(self, start_server):
        server, client = start_server()
        gate = _gate_evaluations(server)
        with pytest.raises(ServeError) as excinfo:
            client.evaluate("fig4-operating-points", timeout=0.3)
        assert excinfo.value.code == "timeout"
        assert client.stats()["stats"]["timeouts"] == 1
        gate.set()
        # The job itself keeps running and lands in the cache.
        _wait_for(lambda: _in_flight(client) == 0)

    def test_shutdown_drains_in_flight_work(self, start_server):
        server, client = start_server()
        gate = _gate_evaluations(server)
        results = {}

        def ask():
            worker = ServeClient(server.config.socket_path, timeout=60)
            results["served"] = worker.evaluate("fig4-operating-points")

        inflight = threading.Thread(target=ask)
        inflight.start()
        _wait_for(lambda: _in_flight(client) == 1)
        client.shutdown()
        gate.set()
        inflight.join(timeout=30)
        served = results["served"]
        local = evaluate("fig4-operating-points")
        assert served.values.tobytes() == local.values.tobytes()
        # The daemon is gone: new connections are refused.
        probe = ServeClient(server.config.socket_path, timeout=5)
        _wait_for(
            lambda: not os.path.exists(server.config.socket_path), timeout=20
        )
        with pytest.raises(ServeError):
            probe.ping()

    def test_two_servers_cannot_share_a_socket(self, start_server, tmp_path):
        server, _ = start_server()
        clash = CampaignServer(
            ServeConfig(socket_path=server.config.socket_path, cache=False)
        )
        with pytest.raises(Exception, match="already listening"):
            asyncio.run(clash.start())


class TestFacadeRoute:
    def test_evaluate_server_is_bitwise_identical(self, start_server):
        server, _ = start_server()
        via_server = evaluate(
            "fig4-operating-points", server=server.config.socket_path
        )
        local = evaluate("fig4-operating-points")
        assert via_server.values.tobytes() == local.values.tobytes()
        assert via_server.executor_name.startswith("serve:")

    def test_server_route_owns_cache_and_shard(self, start_server, tmp_path):
        server, _ = start_server()
        with pytest.raises(InvalidParameterError):
            evaluate(
                "fig4-operating-points",
                server=server.config.socket_path,
                cache=tmp_path / "elsewhere",
            )
        with pytest.raises(InvalidParameterError):
            evaluate(
                "fig4-operating-points",
                server=server.config.socket_path,
                shard=(0, 2),
            )

    def test_server_route_accepts_client_instance(self, start_server):
        server, client = start_server()
        result = evaluate("fig4-operating-points", server=client)
        assert result.values.shape == result.spec.grid_shape
        assert not np.isnan(result.values).any()
