"""Unit tests for the Theorem 2-6 constraint builders."""

import pytest

from repro.core.bounds import (
    ALL_BOUNDS,
    bound_for,
    dt_capacity,
    hbc_inner,
    hbc_outer,
    mabc_inner,
    mabc_outer,
    tdbc_inner,
    tdbc_outer,
)
from repro.core.protocols import Protocol, protocol_phases
from repro.core.terms import BoundKind, MiKey
from repro.exceptions import InvalidParameterError


def constraint_map(spec):
    """Group constraint forms by their rate tuple for structural checks."""
    grouped = {}
    for c in spec.constraints:
        grouped.setdefault(tuple(sorted(c.rates)), []).append(c.form.terms)
    return grouped


class TestStructuralCounts:
    def test_dt_has_two_constraints(self):
        assert len(dt_capacity().constraints) == 2

    def test_mabc_has_five_constraints(self):
        assert len(mabc_inner().constraints) == 5

    def test_tdbc_inner_has_four_constraints(self):
        # Theorem 3 notably has NO sum-rate constraint.
        spec = tdbc_inner()
        assert len(spec.constraints) == 4
        assert ("Ra", "Rb") not in constraint_map(spec)

    def test_tdbc_outer_has_five_constraints(self):
        spec = tdbc_outer()
        assert len(spec.constraints) == 5
        assert ("Ra", "Rb") in constraint_map(spec)

    def test_hbc_specs_have_five_constraints(self):
        assert len(hbc_inner().constraints) == 5
        assert len(hbc_outer().constraints) == 5

    def test_phase_counts_match_protocols(self):
        for (protocol, _kind), builder in ALL_BOUNDS.items():
            spec = builder()
            assert spec.n_phases == len(protocol_phases(protocol))


class TestTheorem2Structure:
    def test_mabc_ra_constraints(self):
        grouped = constraint_map(mabc_inner())
        ra_forms = grouped[("Ra",)]
        assert ((0, MiKey.LINK_AR),) in ra_forms       # relay decodes a
        assert ((1, MiKey.LINK_BR),) in ra_forms       # b decodes broadcast

    def test_mabc_sum_constraint_is_mac(self):
        grouped = constraint_map(mabc_inner())
        assert grouped[("Ra", "Rb")] == [((0, MiKey.MAC_SUM),)]

    def test_mabc_outer_identical_to_inner(self):
        assert mabc_inner().constraints == mabc_outer().constraints


class TestTheorem34Structure:
    def test_tdbc_inner_side_information_terms(self):
        grouped = constraint_map(tdbc_inner())
        assert ((0, MiKey.LINK_AB), (2, MiKey.LINK_BR)) in grouped[("Ra",)]
        assert ((1, MiKey.LINK_AB), (2, MiKey.LINK_AR)) in grouped[("Rb",)]

    def test_tdbc_outer_uses_simo_cuts(self):
        grouped = constraint_map(tdbc_outer())
        assert ((0, MiKey.CUT_A_RB),) in grouped[("Ra",)]
        assert ((1, MiKey.CUT_B_RA),) in grouped[("Rb",)]

    def test_tdbc_outer_sum_constraint(self):
        grouped = constraint_map(tdbc_outer())
        assert grouped[("Ra", "Rb")] == [((0, MiKey.LINK_AR), (1, MiKey.LINK_BR))]


class TestTheorem56Structure:
    def test_hbc_inner_accumulates_mac_phase(self):
        grouped = constraint_map(hbc_inner())
        assert ((0, MiKey.LINK_AR), (2, MiKey.LINK_AR)) in grouped[("Ra",)]
        assert ((1, MiKey.LINK_BR), (2, MiKey.LINK_BR)) in grouped[("Rb",)]

    def test_hbc_sum_constraint_spans_three_phases(self):
        grouped = constraint_map(hbc_inner())
        assert grouped[("Ra", "Rb")] == [
            ((0, MiKey.LINK_AR), (1, MiKey.LINK_BR), (2, MiKey.MAC_SUM))
        ]

    def test_hbc_outer_differs_only_in_cut_terms(self):
        inner = constraint_map(hbc_inner())
        outer = constraint_map(hbc_outer())
        assert inner[("Ra", "Rb")] == outer[("Ra", "Rb")]
        assert ((0, MiKey.CUT_A_RB), (2, MiKey.LINK_AR)) in outer[("Ra",)]


class TestRegistry:
    def test_bound_for_known_pairs(self):
        for protocol in Protocol:
            for kind in BoundKind:
                spec = bound_for(protocol, kind)
                assert spec.protocol is protocol

    def test_dt_outer_equals_inner(self):
        assert bound_for(Protocol.DT, BoundKind.OUTER).constraints == \
            dt_capacity().constraints

    def test_labels_mention_theorems(self):
        assert "Theorem 2" in mabc_inner().label
        assert "Theorem 3" in tdbc_inner().label
        assert "Theorem 4" in tdbc_outer().label
        assert "Theorem 5" in hbc_inner().label
        assert "Theorem 6" in hbc_outer().label
