"""Unit tests for LP optimization over Lemma-1 engine constraints."""

import numpy as np
import pytest

from repro.channels.binary_relay import BinaryRelayChannel
from repro.core.bounds import tdbc_outer
from repro.core.cutset_lp import (
    cutset_boundary,
    cutset_max_sum_rate,
    cutset_support_point,
)
from repro.core.optimize import max_sum_rate
from repro.core.protocols import Protocol, protocol_schedule
from repro.exceptions import InvalidParameterError
from repro.network.cutset import GaussianMIOracle, cutset_outer_bound
from repro.network.model import bidirectional_relay_network


@pytest.fixture
def gaussian_constraints(channel_high):
    oracle = GaussianMIOracle(gains=channel_high.gains, power=channel_high.power)
    return cutset_outer_bound(
        bidirectional_relay_network(),
        protocol_schedule(Protocol.TDBC),
        oracle,
    )


@pytest.fixture
def binary_constraints():
    channel = BinaryRelayChannel(pab=0.2, par=0.05, pbr=0.02)
    return cutset_outer_bound(
        bidirectional_relay_network(),
        protocol_schedule(Protocol.MABC),
        channel.oracle(),
    )


class TestGaussianConsistency:
    def test_engine_lp_matches_theorem_lp(self, gaussian_constraints, channel_high):
        """Optimizing engine constraints == optimizing Theorem 4 directly."""
        engine_point = cutset_max_sum_rate(gaussian_constraints, 3)
        theorem_point = max_sum_rate(channel_high.evaluate(tdbc_outer()))
        assert engine_point.sum_rate == pytest.approx(theorem_point.sum_rate, abs=1e-7)

    def test_support_point_durations_simplex(self, gaussian_constraints):
        point = cutset_support_point(gaussian_constraints, 3, 1.0, 2.0)
        assert sum(point.durations) == pytest.approx(1.0)
        assert all(d >= 0 for d in point.durations)

    def test_boundary_shape(self, gaussian_constraints):
        boundary = cutset_boundary(gaussian_constraints, 3, n_points=7)
        assert boundary.shape[1] == 2
        assert np.all(np.diff(boundary[:, 0]) >= -1e-9)
        assert np.all(np.diff(boundary[:, 1]) <= 1e-9)


class TestBinaryChannel:
    def test_sum_rate_bounded_by_one(self, binary_constraints):
        """On the XOR MAC the relay decodes at most 1 bit/use total."""
        point = cutset_max_sum_rate(binary_constraints, 2)
        assert 0 < point.sum_rate <= 1.0 + 1e-9

    def test_weighted_corners(self, binary_constraints):
        ra_corner = cutset_support_point(binary_constraints, 2, 1.0, 0.0)
        rb_corner = cutset_support_point(binary_constraints, 2, 0.0, 1.0)
        assert ra_corner.ra >= rb_corner.ra
        assert rb_corner.rb >= ra_corner.rb


class TestValidation:
    def test_empty_constraints_rejected(self):
        with pytest.raises(InvalidParameterError):
            cutset_max_sum_rate([], 2)

    def test_zero_weights_rejected(self, binary_constraints):
        with pytest.raises(InvalidParameterError):
            cutset_support_point(binary_constraints, 2, 0.0, 0.0)

    def test_phase_count_mismatch_rejected(self, binary_constraints):
        with pytest.raises(InvalidParameterError):
            cutset_max_sum_rate(binary_constraints, 3)

    def test_boundary_point_count(self, binary_constraints):
        with pytest.raises(InvalidParameterError):
            cutset_boundary(binary_constraints, 2, n_points=1)
