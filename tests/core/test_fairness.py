"""Unit tests for the fairness analysis."""

import pytest

from repro.core.fairness import (
    FairnessRow,
    fairness_report,
    jain_index,
    max_equal_rate,
)
from repro.core.protocols import Protocol
from repro.exceptions import InvalidParameterError


class TestJainIndex:
    def test_symmetric_is_one(self):
        assert jain_index(1.5, 1.5) == pytest.approx(1.0)

    def test_starved_direction_is_half(self):
        assert jain_index(2.0, 0.0) == pytest.approx(0.5)

    def test_origin_is_fair(self):
        assert jain_index(0.0, 0.0) == 1.0

    def test_bounds(self):
        for ra, rb in ((0.1, 3.0), (2.0, 2.5), (5.0, 0.01)):
            assert 0.5 <= jain_index(ra, rb) <= 1.0

    def test_symmetry(self):
        assert jain_index(1.0, 3.0) == pytest.approx(jain_index(3.0, 1.0))

    def test_negative_rejected(self):
        with pytest.raises(InvalidParameterError):
            jain_index(-1.0, 1.0)


class TestMaxEqualRate:
    def test_equal_rates(self, channel_high):
        point = max_equal_rate(Protocol.MABC, channel_high)
        assert point.ra == pytest.approx(point.rb)
        assert point.ra > 0

    def test_below_sum_optimum(self, channel_high):
        from repro.core.capacity import optimal_sum_rate

        eq = max_equal_rate(Protocol.TDBC, channel_high)
        best = optimal_sum_rate(Protocol.TDBC, channel_high)
        assert eq.sum_rate <= best.sum_rate + 1e-9

    def test_hbc_dominates_special_cases(self, channel_high):
        hbc = max_equal_rate(Protocol.HBC, channel_high).ra
        mabc = max_equal_rate(Protocol.MABC, channel_high).ra
        tdbc = max_equal_rate(Protocol.TDBC, channel_high).ra
        assert hbc >= mabc - 1e-8
        assert hbc >= tdbc - 1e-8


class TestFairnessReport:
    def test_all_protocols_reported(self, channel_high):
        rows = fairness_report(channel_high)
        assert [row.protocol for row in rows] == [
            Protocol.DT,
            Protocol.NAIVE4,
            Protocol.MABC,
            Protocol.TDBC,
            Protocol.HBC,
        ]

    def test_row_invariants(self, channel_high):
        for row in fairness_report(channel_high):
            assert isinstance(row, FairnessRow)
            assert 0.5 <= row.sum_point_fairness <= 1.0
            assert row.fairness_cost >= -1e-9

    def test_dt_is_perfectly_fair(self, channel_high):
        """DT's region is a simplex: the symmetric point loses nothing."""
        (dt_row,) = [
            row for row in fairness_report(channel_high) if row.protocol is Protocol.DT
        ]
        assert dt_row.fairness_cost == pytest.approx(0.0, abs=1e-9)

    def test_asymmetric_channel_costs_fairness(self, channel_high):
        """On the Fig. 4 channel (G_ar != G_br) at least one relaying
        protocol pays a real sum-rate price for symmetry."""
        rows = fairness_report(channel_high)
        relay_rows = [row for row in rows if row.protocol is not Protocol.DT]
        assert any(row.fairness_cost > 1e-3 for row in relay_rows)
