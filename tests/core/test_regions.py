"""Unit tests for repro.core.regions."""

import numpy as np
import pytest

from repro.core.bounds import dt_capacity, mabc_inner, tdbc_outer
from repro.core.capacity import achievable_region, outer_bound_region
from repro.core.protocols import Protocol
from repro.core.regions import (
    fixed_duration_polygon,
    polygon_area,
    region_dominates,
)
from repro.exceptions import InvalidParameterError


class TestFixedDurationPolygon:
    def test_mabc_pentagon_vertices_feasible(self, channel_high):
        evaluated = channel_high.evaluate(mabc_inner())
        vertices = fixed_duration_polygon(evaluated, (0.5, 0.5))
        caps = evaluated.rate_caps((0.5, 0.5))
        for ra, rb in vertices:
            assert ra <= caps["Ra"] + 1e-9
            assert rb <= caps["Rb"] + 1e-9
            assert ra + rb <= caps["Ra+Rb"] + 1e-9

    def test_dt_rectangle(self, channel_high):
        evaluated = channel_high.evaluate(dt_capacity())
        vertices = fixed_duration_polygon(evaluated, (0.5, 0.5))
        caps = evaluated.rate_caps((0.5, 0.5))
        assert (caps["Ra"], caps["Rb"]) in [
            (pytest.approx(ra), pytest.approx(rb)) for ra, rb in vertices
        ]

    def test_degenerate_duration_collapses(self, channel_high):
        evaluated = channel_high.evaluate(mabc_inner())
        vertices = fixed_duration_polygon(evaluated, (1.0, 0.0))
        assert all(
            ra == pytest.approx(0.0) and rb == pytest.approx(0.0)
            for ra, rb in vertices
        )


class TestPolygonArea:
    def test_unit_square(self):
        assert polygon_area([(0, 0), (1, 0), (1, 1), (0, 1)]) == pytest.approx(1.0)

    def test_triangle(self):
        assert polygon_area([(0, 0), (2, 0), (0, 2)]) == pytest.approx(2.0)

    def test_degenerate_returns_zero(self):
        assert polygon_area([(0, 0), (1, 1)]) == 0.0


class TestRateRegion:
    def test_boundary_is_pareto_sorted(self, channel_high):
        region = achievable_region(Protocol.HBC, channel_high)
        boundary = region.boundary(17)
        ra = boundary[:, 0]
        rb = boundary[:, 1]
        assert np.all(np.diff(ra) >= -1e-9)
        assert np.all(np.diff(rb) <= 1e-9)

    def test_boundary_point_count_validation(self, channel_high):
        region = achievable_region(Protocol.MABC, channel_high)
        with pytest.raises(InvalidParameterError):
            region.boundary(1)

    def test_corners_match_support(self, channel_high):
        region = achievable_region(Protocol.MABC, channel_high)
        boundary = region.boundary(17)
        assert boundary[-1, 0] == pytest.approx(region.max_ra().ra, abs=1e-6)
        assert boundary[0, 1] == pytest.approx(region.max_rb().rb, abs=1e-6)

    def test_boundary_points_are_members(self, channel_high):
        region = achievable_region(Protocol.TDBC, channel_high)
        for ra, rb in region.boundary(9):
            assert region.contains(ra * 0.999, rb * 0.999, tol=1e-7)

    def test_outside_point_rejected(self, channel_high):
        region = achievable_region(Protocol.TDBC, channel_high)
        best = region.max_sum_rate()
        assert not region.contains(best.ra + 0.2, best.rb + 0.2)

    def test_closed_polygon_starts_and_ends_on_axes(self, channel_high):
        region = achievable_region(Protocol.MABC, channel_high)
        polygon = region.closed_polygon(9)
        assert polygon[0] == pytest.approx((0.0, 0.0))
        assert polygon[-1][1] == pytest.approx(0.0, abs=1e-8)

    def test_area_positive_and_bounded(self, channel_high):
        region = achievable_region(Protocol.MABC, channel_high)
        area = region.area(17)
        corner = region.max_ra().ra * region.max_rb().rb
        assert 0 < area <= corner + 1e-6

    def test_label_passthrough(self, channel_high):
        region = achievable_region(Protocol.TDBC, channel_high)
        assert "Theorem 3" in region.label


class TestRegionDominance:
    def test_inner_within_outer_tdbc(self, channel_high):
        inner = achievable_region(Protocol.TDBC, channel_high)
        outer = outer_bound_region(Protocol.TDBC, channel_high)
        assert region_dominates(outer, inner)

    def test_mabc_within_hbc(self, channel_high):
        mabc = achievable_region(Protocol.MABC, channel_high)
        hbc = achievable_region(Protocol.HBC, channel_high)
        assert region_dominates(hbc, mabc)

    def test_tdbc_within_hbc(self, channel_high):
        tdbc = achievable_region(Protocol.TDBC, channel_high)
        hbc = achievable_region(Protocol.HBC, channel_high)
        assert region_dominates(hbc, tdbc)

    def test_hbc_not_within_mabc_at_high_snr(self, channel_high):
        mabc = achievable_region(Protocol.MABC, channel_high)
        hbc = achievable_region(Protocol.HBC, channel_high)
        assert not region_dominates(mabc, hbc)

    def test_region_contains_itself(self, channel_high):
        region = achievable_region(Protocol.MABC, channel_high)
        assert region_dominates(region, region)
