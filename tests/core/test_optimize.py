"""Unit tests for repro.core.optimize (the phase-duration LP)."""

import itertools

import numpy as np
import pytest

from repro.core.bounds import dt_capacity, hbc_inner, mabc_inner, tdbc_inner
from repro.core.optimize import (
    equal_rate_point,
    feasible_rate_pair,
    max_sum_rate,
    sum_rate_fixed_durations,
    support_point,
)
from repro.exceptions import InvalidParameterError
from repro.information.functions import gaussian_capacity


class TestSupportPoint:
    def test_weights_validated(self, channel_high):
        evaluated = channel_high.evaluate(mabc_inner())
        with pytest.raises(InvalidParameterError):
            support_point(evaluated, 0.0, 0.0)
        with pytest.raises(InvalidParameterError):
            support_point(evaluated, -1.0, 1.0)

    def test_durations_form_simplex(self, channel_high):
        evaluated = channel_high.evaluate(hbc_inner())
        point = support_point(evaluated, 1.0, 2.0)
        assert sum(point.durations) == pytest.approx(1.0)
        assert all(d >= 0 for d in point.durations)

    def test_lexicographic_corner(self, channel_high):
        # mu = (1, 0): maximal Ra; for MABC the max-Ra point allows Rb > 0
        # only if durations permit; lex stage must still return max Ra.
        evaluated = channel_high.evaluate(mabc_inner())
        corner = support_point(evaluated, 1.0, 0.0)
        plain = support_point(evaluated, 1.0, 1e-9)
        assert corner.ra == pytest.approx(plain.ra, abs=1e-5)

    def test_backend_agreement(self, channel_high):
        evaluated = channel_high.evaluate(tdbc_inner())
        scipy_point = support_point(evaluated, 1.0, 1.0, backend="scipy")
        simplex_point = support_point(evaluated, 1.0, 1.0, backend="simplex")
        assert scipy_point.sum_rate == pytest.approx(simplex_point.sum_rate, abs=1e-7)


class TestMaxSumRate:
    def test_dt_sum_rate_is_direct_capacity(self, channel_high, paper_gains):
        evaluated = channel_high.evaluate(dt_capacity())
        point = max_sum_rate(evaluated)
        expected = gaussian_capacity(channel_high.power * paper_gains.gab)
        assert point.sum_rate == pytest.approx(expected)

    def test_lp_beats_duration_grid(self, channel_high):
        """The LP optimum must dominate a brute-force grid over durations."""
        evaluated = channel_high.evaluate(mabc_inner())
        lp_value = max_sum_rate(evaluated).sum_rate
        grid_best = 0.0
        for d1 in np.linspace(0.0, 1.0, 2001):
            grid_best = max(
                grid_best,
                sum_rate_fixed_durations(evaluated, (d1, 1.0 - d1)),
            )
        assert lp_value >= grid_best - 1e-9
        assert lp_value == pytest.approx(grid_best, abs=2e-3)

    def test_lp_beats_tdbc_grid(self, channel_high):
        evaluated = channel_high.evaluate(tdbc_inner())
        lp_value = max_sum_rate(evaluated).sum_rate
        grid_best = 0.0
        steps = np.linspace(0.0, 1.0, 41)
        for d1, d2 in itertools.product(steps, steps):
            if d1 + d2 > 1.0 + 1e-12:
                continue
            durations = (d1, d2, 1.0 - d1 - d2)
            grid_best = max(grid_best, sum_rate_fixed_durations(evaluated, durations))
        assert lp_value >= grid_best - 1e-9
        assert lp_value == pytest.approx(grid_best, abs=5e-2)

    def test_point_satisfies_own_constraints(self, channel_high):
        evaluated = channel_high.evaluate(hbc_inner())
        point = max_sum_rate(evaluated)
        caps = evaluated.rate_caps(tuple(point.durations))
        assert point.ra <= caps["Ra"] + 1e-8
        assert point.rb <= caps["Rb"] + 1e-8
        assert point.sum_rate <= caps["Ra+Rb"] + 1e-8


class TestEqualRatePoint:
    def test_rates_equal(self, channel_high):
        evaluated = channel_high.evaluate(mabc_inner())
        point = equal_rate_point(evaluated)
        assert point.ra == pytest.approx(point.rb)
        assert point.ra > 0

    def test_equal_rate_feasible(self, channel_high):
        evaluated = channel_high.evaluate(tdbc_inner())
        point = equal_rate_point(evaluated)
        assert feasible_rate_pair(evaluated, point.ra, point.rb, tol=1e-7)

    def test_equal_rate_below_sum_optimal(self, channel_high):
        evaluated = channel_high.evaluate(mabc_inner())
        eq = equal_rate_point(evaluated)
        best = max_sum_rate(evaluated)
        assert eq.sum_rate <= best.sum_rate + 1e-9


class TestFeasibility:
    def test_origin_always_feasible(self, channel_high):
        for builder in (dt_capacity, mabc_inner, tdbc_inner, hbc_inner):
            evaluated = channel_high.evaluate(builder())
            assert feasible_rate_pair(evaluated, 0.0, 0.0)

    def test_optimal_point_feasible(self, channel_high):
        evaluated = channel_high.evaluate(hbc_inner())
        point = max_sum_rate(evaluated)
        assert feasible_rate_pair(evaluated, point.ra * 0.999, point.rb * 0.999)

    def test_scaled_up_point_infeasible(self, channel_high):
        evaluated = channel_high.evaluate(mabc_inner())
        point = max_sum_rate(evaluated)
        assert not feasible_rate_pair(evaluated, point.ra * 1.05, point.rb * 1.05)

    def test_negative_rates_infeasible(self, channel_high):
        evaluated = channel_high.evaluate(mabc_inner())
        assert not feasible_rate_pair(evaluated, -0.5, 0.1)


class TestFixedDurationSumRate:
    def test_matches_caps_arithmetic(self, channel_high):
        evaluated = channel_high.evaluate(mabc_inner())
        caps = evaluated.rate_caps((0.6, 0.4))
        expected = min(caps["Ra"] + caps["Rb"], caps["Ra+Rb"])
        assert sum_rate_fixed_durations(evaluated, (0.6, 0.4)) == pytest.approx(
            expected
        )

    def test_degenerate_all_time_to_one_phase(self, channel_high):
        evaluated = channel_high.evaluate(mabc_inner())
        # All time in phase 1: relay can never forward -> zero rates.
        assert sum_rate_fixed_durations(evaluated, (1.0, 0.0)) == pytest.approx(0.0)
        # All time in phase 2: relay never hears anything -> zero rates.
        assert sum_rate_fixed_durations(evaluated, (0.0, 1.0)) == pytest.approx(0.0)
