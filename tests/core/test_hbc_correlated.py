"""Unit tests for the correlated-Gaussian Theorem-6 evaluation."""

import numpy as np
import pytest

from repro.core.bounds import hbc_outer
from repro.core.hbc_correlated import (
    evaluate_hbc_outer_correlated,
    hbc_outer_correlated_boundary,
    hbc_outer_correlated_sum_rate,
)
from repro.core.optimize import max_sum_rate
from repro.exceptions import InvalidParameterError
from repro.information.functions import gaussian_capacity


class TestEvaluation:
    def test_rho_zero_matches_independent(self, channel_high):
        independent = channel_high.evaluate(hbc_outer())
        correlated = evaluate_hbc_outer_correlated(channel_high, 0.0)
        for c_ind, c_cor in zip(independent.constraints, correlated.constraints):
            assert c_ind.rates == c_cor.rates
            assert c_ind.coefficients == pytest.approx(c_cor.coefficients)

    def test_full_correlation_kills_individual_mac_terms(
        self, channel_high, paper_gains
    ):
        evaluated = evaluate_hbc_outer_correlated(channel_high, 1.0)
        # The Ra constraint containing the phase-3 LINK_AR term: its
        # phase-3 coefficient must be exactly zero at rho = 1.
        first_ra = evaluated.constraints_for(("Ra",))[0]
        assert first_ra.coefficients[2] == pytest.approx(0.0, abs=1e-12)

    def test_sum_term_grows_with_rho(self, channel_high, paper_gains):
        p = channel_high.power
        g = paper_gains
        lo = evaluate_hbc_outer_correlated(channel_high, 0.0)
        hi = evaluate_hbc_outer_correlated(channel_high, 0.8)
        sum_lo = lo.constraints_for(("Ra", "Rb"))[0].coefficients[2]
        sum_hi = hi.constraints_for(("Ra", "Rb"))[0].coefficients[2]
        assert sum_hi > sum_lo
        expected = gaussian_capacity(
            p * g.gar + p * g.gbr + 1.6 * p * np.sqrt(g.gar * g.gbr)
        )
        assert sum_hi == pytest.approx(expected)

    def test_rho_domain_enforced(self, channel_high):
        with pytest.raises(InvalidParameterError):
            evaluate_hbc_outer_correlated(channel_high, -0.1)
        with pytest.raises(InvalidParameterError):
            evaluate_hbc_outer_correlated(channel_high, 1.5)


class TestUnionOverRho:
    def test_union_dominates_independent(self, channel_high):
        independent = max_sum_rate(channel_high.evaluate(hbc_outer())).sum_rate
        best, best_rho = hbc_outer_correlated_sum_rate(
            channel_high, rhos=np.linspace(0.0, 0.9, 10)
        )
        assert best.sum_rate >= independent - 1e-9
        assert 0.0 <= best_rho <= 0.9

    def test_boundary_sorted_and_dominating(self, channel_high):
        boundary = hbc_outer_correlated_boundary(
            channel_high, n_points=7, rhos=np.linspace(0.0, 0.9, 5)
        )
        assert np.all(np.diff(boundary[:, 0]) >= -1e-9)
        assert np.all(np.diff(boundary[:, 1]) <= 1e-9)

    def test_boundary_contains_independent_corner(self, channel_high):
        from repro.core.optimize import support_point

        boundary = hbc_outer_correlated_boundary(
            channel_high, n_points=9, rhos=np.linspace(0.0, 0.9, 5)
        )
        independent = channel_high.evaluate(hbc_outer())
        corner = support_point(independent, 1.0, 0.0)
        # The envelope's max-Ra endpoint dominates the independent one.
        assert boundary[-1, 0] >= corner.ra - 1e-7

    def test_invalid_point_count(self, channel_high):
        with pytest.raises(InvalidParameterError):
            hbc_outer_correlated_boundary(channel_high, n_points=1)


class TestPaperContext:
    def test_hbc_achievable_within_correlated_envelope(self, channel_high):
        """The Theorem-5 achievable sum rate sits inside the Theorem-6
        Gaussian evaluation for every rho-grid (sanity of the extension)."""
        from repro.core.capacity import optimal_sum_rate
        from repro.core.protocols import Protocol

        inner = optimal_sum_rate(Protocol.HBC, channel_high).sum_rate
        outer, _rho = hbc_outer_correlated_sum_rate(
            channel_high, rhos=np.linspace(0.0, 0.9, 7)
        )
        assert outer.sum_rate >= inner - 1e-8
