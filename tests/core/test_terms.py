"""Unit tests for repro.core.terms."""

import pytest

from repro.core.protocols import Protocol
from repro.core.terms import BoundConstraint, BoundKind, BoundSpec, LinearForm, MiKey
from repro.exceptions import InvalidParameterError


class TestLinearForm:
    def test_coefficients_layout(self):
        form = LinearForm([(0, MiKey.LINK_AR), (2, MiKey.LINK_BR)])
        values = {MiKey.LINK_AR: 2.0, MiKey.LINK_BR: 3.0}
        assert form.coefficients(3, values) == [2.0, 0.0, 3.0]

    def test_repeated_phase_rejected(self):
        with pytest.raises(InvalidParameterError):
            LinearForm([(0, MiKey.LINK_AR), (0, MiKey.LINK_BR)])

    def test_empty_rejected(self):
        with pytest.raises(InvalidParameterError):
            LinearForm([])

    def test_negative_phase_rejected(self):
        with pytest.raises(InvalidParameterError):
            LinearForm([(-1, MiKey.LINK_AR)])

    def test_non_mikey_rejected(self):
        with pytest.raises(InvalidParameterError):
            LinearForm([(0, "a-r")])

    def test_phase_out_of_range_detected(self):
        form = LinearForm([(3, MiKey.LINK_AR)])
        with pytest.raises(InvalidParameterError):
            form.coefficients(3, {MiKey.LINK_AR: 1.0})

    def test_describe(self):
        form = LinearForm([(0, MiKey.LINK_AB), (2, MiKey.LINK_BR)])
        assert form.describe() == "Δ1·I[a-b] + Δ3·I[b-r]"


class TestBoundConstraint:
    def test_valid(self):
        constraint = BoundConstraint(("Ra", "Rb"), LinearForm([(0, MiKey.MAC_SUM)]))
        assert constraint.describe() == "Ra + Rb <= Δ1·I[ab-r]"

    def test_unknown_rate_rejected(self):
        with pytest.raises(InvalidParameterError):
            BoundConstraint(("Rc",), LinearForm([(0, MiKey.LINK_AR)]))

    def test_duplicate_rate_rejected(self):
        with pytest.raises(InvalidParameterError):
            BoundConstraint(("Ra", "Ra"), LinearForm([(0, MiKey.LINK_AR)]))

    def test_empty_rates_rejected(self):
        with pytest.raises(InvalidParameterError):
            BoundConstraint((), LinearForm([(0, MiKey.LINK_AR)]))


class TestBoundSpec:
    def test_phase_overflow_rejected(self):
        constraint = BoundConstraint(("Ra",), LinearForm([(5, MiKey.LINK_AR)]))
        with pytest.raises(InvalidParameterError):
            BoundSpec(Protocol.MABC, BoundKind.INNER, 2, (constraint,), "bad")

    def test_empty_constraints_rejected(self):
        with pytest.raises(InvalidParameterError):
            BoundSpec(Protocol.MABC, BoundKind.INNER, 2, (), "empty")

    def test_describe_lists_constraints(self):
        constraint = BoundConstraint(("Ra",), LinearForm([(0, MiKey.LINK_AR)]))
        spec = BoundSpec(Protocol.MABC, BoundKind.INNER, 2, (constraint,), "demo")
        text = spec.describe()
        assert "demo" in text
        assert "Ra <= Δ1·I[a-r]" in text
