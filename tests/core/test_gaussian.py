"""Unit tests for repro.core.gaussian."""

import numpy as np
import pytest

from repro.campaign.kernel import batched_sum_rates
from repro.channels.gains import LinkGains
from repro.channels.power import NodePowers
from repro.core.bounds import mabc_inner, tdbc_inner
from repro.core.capacity import optimal_sum_rate
from repro.core.gaussian import GaussianChannel
from repro.core.protocols import Protocol
from repro.core.terms import MiKey
from repro.exceptions import InvalidParameterError
from repro.information.functions import gaussian_capacity


class TestMiValues:
    def test_single_links(self, channel_high, paper_gains):
        p = channel_high.power
        assert channel_high.mi_value(MiKey.LINK_AR) == pytest.approx(
            gaussian_capacity(p * paper_gains.gar))
        assert channel_high.mi_value(MiKey.LINK_BR) == pytest.approx(
            gaussian_capacity(p * paper_gains.gbr))
        assert channel_high.mi_value(MiKey.LINK_AB) == pytest.approx(
            gaussian_capacity(p * paper_gains.gab))

    def test_mac_sum_value(self, channel_high, paper_gains):
        p = channel_high.power
        expected = gaussian_capacity(p * (paper_gains.gar + paper_gains.gbr))
        assert channel_high.mi_value(MiKey.MAC_SUM) == pytest.approx(expected)

    def test_simo_cut_values(self, channel_high, paper_gains):
        p = channel_high.power
        assert channel_high.mi_value(MiKey.CUT_A_RB) == pytest.approx(
            gaussian_capacity(p * (paper_gains.gar + paper_gains.gab)))
        assert channel_high.mi_value(MiKey.CUT_B_RA) == pytest.approx(
            gaussian_capacity(p * (paper_gains.gbr + paper_gains.gab)))

    def test_mi_values_covers_all_keys(self, channel_high):
        values = channel_high.mi_values()
        assert set(values) == set(MiKey)

    def test_cut_dominates_single_link(self, channel_high):
        # Adding a receiver can only increase mutual information.
        assert channel_high.mi_value(MiKey.CUT_A_RB) >= \
            channel_high.mi_value(MiKey.LINK_AR)
        assert channel_high.mi_value(MiKey.MAC_SUM) >= \
            channel_high.mi_value(MiKey.LINK_BR)


class TestConstruction:
    def test_from_db(self):
        channel = GaussianChannel.from_db(
            power_db=10.0, gab_db=-7.0, gar_db=0.0, gbr_db=5.0
        )
        assert channel.power == pytest.approx(10.0)
        assert channel.gains.gar == pytest.approx(1.0)

    def test_negative_power_rejected(self, paper_gains):
        with pytest.raises(InvalidParameterError):
            GaussianChannel(gains=paper_gains, power=-1.0)

    def test_with_power(self, channel_high):
        scaled = channel_high.with_power(2.0)
        assert scaled.power == 2.0
        assert scaled.gains == channel_high.gains

    def test_with_gains(self, channel_high):
        new_gains = LinkGains(1.0, 1.0, 1.0)
        moved = channel_high.with_gains(new_gains)
        assert moved.gains == new_gains
        assert moved.power == channel_high.power

    def test_describe_contains_db_values(self, channel_high):
        text = channel_high.describe()
        assert "P=10.0 dB" in text
        assert "G_ab=-7.0 dB" in text


class TestEvaluate:
    def test_mabc_coefficients(self, channel_high, paper_gains):
        evaluated = channel_high.evaluate(mabc_inner())
        p = channel_high.power
        car = gaussian_capacity(p * paper_gains.gar)
        cbr = gaussian_capacity(p * paper_gains.gbr)
        coeffs = {tuple(c.rates): [] for c in evaluated.constraints}
        for c in evaluated.constraints:
            coeffs[tuple(c.rates)].append(c.coefficients)
        assert (car, 0.0) in [tuple(v) for v in coeffs[("Ra",)]]
        assert (0.0, cbr) in [tuple(v) for v in coeffs[("Ra",)]]

    def test_rate_caps_at_fixed_durations(self, channel_high, paper_gains):
        evaluated = channel_high.evaluate(mabc_inner())
        caps = evaluated.rate_caps((0.5, 0.5))
        p = channel_high.power
        car = gaussian_capacity(p * paper_gains.gar)
        cbr = gaussian_capacity(p * paper_gains.gbr)
        cmac = gaussian_capacity(p * (paper_gains.gar + paper_gains.gbr))
        assert caps["Ra"] == pytest.approx(0.5 * min(car, cbr))
        assert caps["Rb"] == pytest.approx(0.5 * min(car, cbr))
        assert caps["Ra+Rb"] == pytest.approx(0.5 * cmac)

    def test_dt_caps_have_no_sum_constraint(self, channel_high):
        from repro.core.bounds import dt_capacity

        evaluated = channel_high.evaluate(dt_capacity())
        caps = evaluated.rate_caps((0.5, 0.5))
        assert caps["Ra+Rb"] == float("inf")

    def test_constraints_for_filtering(self, channel_high):
        evaluated = channel_high.evaluate(tdbc_inner())
        assert len(evaluated.constraints_for(("Ra",))) == 2
        assert len(evaluated.constraints_for(("Rb",))) == 2
        assert evaluated.constraints_for(("Ra", "Rb")) == []

    def test_bound_at_duration_mismatch_rejected(self, channel_high):
        evaluated = channel_high.evaluate(mabc_inner())
        with pytest.raises(InvalidParameterError):
            evaluated.constraints[0].bound_at((1.0,))

    def test_zero_power_kills_all_rates(self, paper_gains):
        channel = GaussianChannel(gains=paper_gains, power=0.0)
        evaluated = channel.evaluate(mabc_inner())
        caps = evaluated.rate_caps((0.5, 0.5))
        assert caps["Ra"] == 0.0
        assert caps["Rb"] == 0.0


class TestNodePowers:
    """Per-node powers through the LP path, cross-checked against the kernel."""

    def test_uniform_node_powers_match_scalar_bitwise(self, paper_gains):
        scalar = GaussianChannel(gains=paper_gains, power=4.0)
        per_node = GaussianChannel(gains=paper_gains, power=NodePowers.uniform(4.0))
        for key in MiKey:
            assert per_node.mi_value(key) == scalar.mi_value(key)

    def test_mapping_power_is_normalized(self, paper_gains):
        channel = GaussianChannel(
            gains=paper_gains, power={"a": 1.0, "b": 2.0, "r": 3.0}
        )
        assert isinstance(channel.power, NodePowers)
        assert channel.power == NodePowers(pa=1.0, pb=2.0, pr=3.0)

    def test_snr_transmitter_validation(self, paper_gains):
        channel = GaussianChannel(
            gains=paper_gains, power=NodePowers(pa=1.0, pb=2.0, pr=3.0)
        )
        with pytest.raises(InvalidParameterError, match="cannot be driven"):
            channel.snr(MiKey.LINK_AR, transmitter="b")

    def test_mac_sum_splits_by_source_power(self, paper_gains):
        channel = GaussianChannel(
            gains=paper_gains, power=NodePowers(pa=2.0, pb=6.0, pr=1.0)
        )
        expected = 2.0 * paper_gains.gar + 6.0 * paper_gains.gbr
        assert channel.snr(MiKey.MAC_SUM) == expected

    @pytest.mark.parametrize("protocol", tuple(Protocol))
    def test_asymmetric_lp_matches_the_campaign_kernel(self, protocol, paper_gains):
        powers = NodePowers(pa=2.5, pb=7.0, pr=12.0)
        channel = GaussianChannel(gains=paper_gains, power=powers)
        lp_value = optimal_sum_rate(protocol, channel).sum_rate
        kernel_value = batched_sum_rates(
            protocol,
            np.array([paper_gains.gab]),
            np.array([paper_gains.gar]),
            np.array([paper_gains.gbr]),
            powers.as_array()[np.newaxis, :],
        )[0]
        assert lp_value == pytest.approx(kernel_value, abs=1e-9)

    @pytest.mark.parametrize("protocol", tuple(Protocol))
    def test_uniform_lp_matches_scalar_lp_bitwise(self, protocol, paper_gains):
        scalar = GaussianChannel(gains=paper_gains, power=9.0)
        per_node = GaussianChannel(gains=paper_gains, power=NodePowers.uniform(9.0))
        assert (
            optimal_sum_rate(protocol, per_node).sum_rate
            == optimal_sum_rate(protocol, scalar).sum_rate
        )
