"""Unit tests for the top-level capacity API."""

import pytest

from repro.core.capacity import (
    achievable_region,
    compare_protocols,
    optimal_sum_rate,
    outer_bound_region,
)
from repro.core.protocols import Protocol
from repro.information.functions import gaussian_capacity


class TestOptimalSumRate:
    def test_monotone_in_power(self, channel_low, channel_high):
        for protocol in Protocol:
            low = optimal_sum_rate(protocol, channel_low).sum_rate
            high = optimal_sum_rate(protocol, channel_high).sum_rate
            assert high >= low - 1e-9

    def test_hbc_dominates_special_cases(self, channel_low, channel_high):
        for channel in (channel_low, channel_high):
            hbc = optimal_sum_rate(Protocol.HBC, channel).sum_rate
            mabc = optimal_sum_rate(Protocol.MABC, channel).sum_rate
            tdbc = optimal_sum_rate(Protocol.TDBC, channel).sum_rate
            assert hbc >= mabc - 1e-8
            assert hbc >= tdbc - 1e-8

    def test_dt_equals_direct_capacity(self, channel_high, paper_gains):
        value = optimal_sum_rate(Protocol.DT, channel_high).sum_rate
        assert value == pytest.approx(
            gaussian_capacity(channel_high.power * paper_gains.gab)
        )

    def test_paper_low_snr_ordering(self, channel_low):
        """At P = 0 dB the paper reports MABC above TDBC."""
        mabc = optimal_sum_rate(Protocol.MABC, channel_low).sum_rate
        tdbc = optimal_sum_rate(Protocol.TDBC, channel_low).sum_rate
        assert mabc > tdbc


class TestRegions:
    def test_mabc_inner_outer_coincide(self, channel_high):
        inner = achievable_region(Protocol.MABC, channel_high)
        outer = outer_bound_region(Protocol.MABC, channel_high)
        assert inner.max_sum_rate().sum_rate == pytest.approx(
            outer.max_sum_rate().sum_rate
        )

    def test_outer_bounds_dominate_inner(self, channel_high):
        for protocol in (Protocol.TDBC, Protocol.HBC):
            inner = achievable_region(protocol, channel_high)
            outer = outer_bound_region(protocol, channel_high)
            assert outer.max_sum_rate().sum_rate >= \
                inner.max_sum_rate().sum_rate - 1e-8


class TestCompareProtocols:
    def test_all_protocols_by_default(self, channel_high):
        comparison = compare_protocols(channel_high)
        assert set(comparison.sum_rates) == set(Protocol)

    def test_best_protocol_is_argmax(self, channel_high):
        comparison = compare_protocols(channel_high)
        best = comparison.best_protocol()
        best_rate = comparison.sum_rates[best].sum_rate
        assert all(
            best_rate >= point.sum_rate - 1e-12
            for point in comparison.sum_rates.values()
        )

    def test_as_row_flattens(self, channel_high):
        row = compare_protocols(channel_high).as_row()
        assert set(row) == {"DT", "NAIVE4", "MABC", "TDBC", "HBC"}
        assert all(isinstance(v, float) for v in row.values())

    def test_subset_of_protocols(self, channel_high):
        comparison = compare_protocols(
            channel_high, protocols=(Protocol.DT, Protocol.MABC)
        )
        assert set(comparison.sum_rates) == {Protocol.DT, Protocol.MABC}
