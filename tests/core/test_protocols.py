"""Unit tests for repro.core.protocols."""

import pytest

from repro.core.protocols import (
    PhaseDurations,
    Protocol,
    describe,
    protocol_phases,
    protocol_schedule,
)
from repro.exceptions import InvalidProtocolError


class TestProtocolEnum:
    def test_from_name_case_insensitive(self):
        assert Protocol.from_name("MABC") is Protocol.MABC
        assert Protocol.from_name("  hbc ") is Protocol.HBC

    def test_from_name_unknown_rejected(self):
        with pytest.raises(InvalidProtocolError):
            Protocol.from_name("xyz")

    def test_uses_relay(self):
        assert not Protocol.DT.uses_relay
        assert Protocol.MABC.uses_relay
        assert Protocol.TDBC.uses_relay
        assert Protocol.HBC.uses_relay


class TestPhaseTables:
    def test_phase_counts(self):
        assert len(protocol_phases(Protocol.DT)) == 2
        assert len(protocol_phases(Protocol.MABC)) == 2
        assert len(protocol_phases(Protocol.TDBC)) == 3
        assert len(protocol_phases(Protocol.HBC)) == 4

    def test_mabc_phase_structure(self):
        phases = protocol_phases(Protocol.MABC)
        assert phases[0] == frozenset(("a", "b"))
        assert phases[1] == frozenset("r")

    def test_hbc_contains_mabc_and_tdbc_structure(self):
        hbc = protocol_phases(Protocol.HBC)
        assert hbc[0] == frozenset("a")
        assert hbc[1] == frozenset("b")
        assert hbc[2] == frozenset(("a", "b"))
        assert hbc[3] == frozenset("r")

    def test_schedule_matches_phases(self):
        for protocol in Protocol:
            schedule = protocol_schedule(protocol)
            assert schedule.n_phases == len(protocol_phases(protocol))
            for spec, transmitters in zip(schedule.phases, protocol_phases(protocol)):
                assert spec.transmitters == transmitters

    def test_describe_mentions_all_phases(self):
        text = describe(Protocol.TDBC)
        assert "TDBC" in text
        assert "phase 3" in text


class TestPhaseDurations:
    def test_valid_durations(self):
        durations = PhaseDurations([0.25, 0.75])
        assert len(durations) == 2
        assert durations[1] == 0.75
        assert list(durations) == [0.25, 0.75]

    def test_must_sum_to_one(self):
        with pytest.raises(InvalidProtocolError):
            PhaseDurations([0.5, 0.4])

    def test_must_be_nonnegative(self):
        with pytest.raises(InvalidProtocolError):
            PhaseDurations([1.5, -0.5])

    def test_empty_rejected(self):
        with pytest.raises(InvalidProtocolError):
            PhaseDurations([])

    def test_uniform(self):
        durations = PhaseDurations.uniform(4)
        assert all(d == pytest.approx(0.25) for d in durations)

    def test_uniform_invalid_count(self):
        with pytest.raises(InvalidProtocolError):
            PhaseDurations.uniform(0)

    def test_for_protocol_length_check(self):
        PhaseDurations.for_protocol(Protocol.TDBC, [0.3, 0.3, 0.4])
        with pytest.raises(InvalidProtocolError):
            PhaseDurations.for_protocol(Protocol.TDBC, [0.5, 0.5])

    def test_zero_length_phases_allowed(self):
        durations = PhaseDurations([0.0, 1.0])
        assert durations[0] == 0.0
