"""Unit tests for the naive four-phase baseline (paper Fig. 1(ii))."""

import pytest

from repro.core.bounds import naive4_inner, naive4_outer
from repro.core.capacity import achievable_region, optimal_sum_rate, outer_bound_region
from repro.core.protocols import Protocol, protocol_phases
from repro.core.regions import region_dominates
from repro.information.functions import gaussian_capacity


class TestStructure:
    def test_four_phases(self):
        phases = protocol_phases(Protocol.NAIVE4)
        assert len(phases) == 4
        assert phases[0] == frozenset("a")
        assert phases[1] == frozenset("r")
        assert phases[2] == frozenset("b")
        assert phases[3] == frozenset("r")

    def test_inner_has_no_sum_constraint(self):
        rates = {tuple(sorted(c.rates)) for c in naive4_inner().constraints}
        assert ("Ra", "Rb") not in rates

    def test_outer_has_sum_constraint(self):
        rates = {tuple(sorted(c.rates)) for c in naive4_outer().constraints}
        assert ("Ra", "Rb") in rates


class TestAnalyticValues:
    def test_sum_rate_closed_form(self, channel_high, paper_gains):
        """Naive 4-phase sum rate: each direction is a 2-hop cascade.

        With durations (d1, d2, d3, d4) the optimum solves two independent
        max-min problems sharing the time budget; the symmetric split
        between directions gives sum = harmonic combination of C_ar, C_br.
        """
        point = optimal_sum_rate(Protocol.NAIVE4, channel_high)
        p = channel_high.power
        car = gaussian_capacity(p * paper_gains.gar)
        cbr = gaussian_capacity(p * paper_gains.gbr)
        # Per direction, rate = t * car * cbr / (car + cbr) where t is the
        # share of total time; both directions have identical cascades, so
        # sum = car * cbr / (car + cbr).
        expected = car * cbr / (car + cbr)
        assert point.sum_rate == pytest.approx(expected, abs=1e-7)

    def test_mabc_dominates_naive4(self, channel_high, channel_low):
        """Network coding strictly beats store-and-forward relaying."""
        for channel in (channel_high, channel_low):
            naive = optimal_sum_rate(Protocol.NAIVE4, channel).sum_rate
            mabc = optimal_sum_rate(Protocol.MABC, channel).sum_rate
            assert mabc > naive + 1e-6

    def test_tdbc_region_contains_naive4(self, channel_high):
        """TDBC = naive4 + network coding + side information."""
        naive = achievable_region(Protocol.NAIVE4, channel_high)
        tdbc = achievable_region(Protocol.TDBC, channel_high)
        assert region_dominates(tdbc, naive)

    def test_inner_within_outer(self, channel_high):
        inner = achievable_region(Protocol.NAIVE4, channel_high)
        outer = outer_bound_region(Protocol.NAIVE4, channel_high)
        assert region_dominates(outer, inner)


class TestEngineCrossCheck:
    def test_outer_matches_lemma1_engine(self, channel_high):
        import numpy as np

        from repro.core.protocols import protocol_schedule
        from repro.network.cutset import GaussianMIOracle, cutset_outer_bound
        from repro.network.model import bidirectional_relay_network

        oracle = GaussianMIOracle(gains=channel_high.gains, power=channel_high.power)
        engine = cutset_outer_bound(
            bidirectional_relay_network(),
            protocol_schedule(Protocol.NAIVE4),
            oracle,
        )
        engine_set = sorted(
            (tuple(sorted(c.message_names)), tuple(np.round(c.phase_mi, 9)))
            for c in engine
        )
        evaluated = channel_high.evaluate(naive4_outer())
        hand_set = sorted(
            (tuple(sorted(c.rates)), tuple(np.round(c.coefficients, 9)))
            for c in evaluated.constraints
        )
        assert engine_set == hand_set
