"""Unit tests for repro.experiments.tables."""

import csv

import pytest

from repro.exceptions import InvalidParameterError
from repro.experiments.tables import render_table, write_csv


class TestRenderTable:
    def test_basic_rendering(self):
        text = render_table(["x", "y"], [[1, 2.5], [10, 0.125]])
        lines = text.splitlines()
        assert "x" in lines[0] and "y" in lines[0]
        assert "2.5000" in text
        assert "0.1250" in text

    def test_title(self):
        text = render_table(["a"], [[1]], title="My Table")
        assert text.splitlines()[0] == "My Table"

    def test_float_format(self):
        text = render_table(["v"], [[1.23456]], float_format=".2f")
        assert "1.23" in text
        assert "1.2346" not in text

    def test_alignment_width(self):
        text = render_table(["header"], [["x"]])
        header, rule, row = text.splitlines()
        assert len(header) == len(rule) == len(row)

    def test_row_width_mismatch_rejected(self):
        with pytest.raises(InvalidParameterError):
            render_table(["a", "b"], [[1]])

    def test_non_float_cells_passthrough(self):
        text = render_table(["name", "n"], [["MABC", 3]])
        assert "MABC" in text


class TestWriteCsv:
    def test_roundtrip(self, tmp_path):
        path = write_csv(tmp_path / "out.csv", ["a", "b"], [[1, 2], [3, 4]])
        with path.open() as handle:
            rows = list(csv.reader(handle))
        assert rows == [["a", "b"], ["1", "2"], ["3", "4"]]

    def test_creates_parent_directories(self, tmp_path):
        path = write_csv(tmp_path / "nested" / "deep" / "out.csv", ["a"], [[1]])
        assert path.exists()
