"""Finite-SNR diversity-multiplexing post-processing."""

import numpy as np
import pytest

from repro.api import evaluate
from repro.core.protocols import Protocol
from repro.exceptions import InvalidParameterError
from repro.experiments.dmt import (
    DEFAULT_MULTIPLEXING_GAINS,
    finite_snr_dmt,
)
from repro.information.functions import db_to_linear
from repro.scenarios import get_scenario


@pytest.fixture(scope="module")
def result():
    scenario = get_scenario(
        "finite-snr-dmt", snr_points_db=(5.0, 10.0), n_draws=40, seed=7
    )
    return evaluate(scenario, cache=False)


class TestValidation:
    def test_protocol_not_on_the_grid(self, result):
        with pytest.raises(InvalidParameterError, match="not in the evaluated"):
            finite_snr_dmt(result, Protocol.NAIVE4, 10.0)

    def test_deterministic_result_rejected(self):
        deterministic = evaluate("fig3-placement", cache=False)
        with pytest.raises(InvalidParameterError, match="fading ensemble"):
            finite_snr_dmt(deterministic, Protocol.MABC, 10.0)

    def test_nonpositive_power_rejected(self, result):
        with pytest.raises(InvalidParameterError, match="positive"):
            finite_snr_dmt(result, Protocol.MABC, 0.0)
        with pytest.raises(InvalidParameterError, match="positive"):
            finite_snr_dmt(result, Protocol.MABC, -5.0)

    def test_off_grid_power_rejected(self, result):
        with pytest.raises(InvalidParameterError, match="not on the grid"):
            finite_snr_dmt(result, Protocol.MABC, 12.0)

    def test_bad_multiplexing_gains_rejected(self, result):
        with pytest.raises(InvalidParameterError, match="multiplexing"):
            finite_snr_dmt(result, Protocol.MABC, 10.0, multiplexing_gains=())
        with pytest.raises(InvalidParameterError, match="multiplexing"):
            finite_snr_dmt(
                result, Protocol.MABC, 10.0, multiplexing_gains=(0.5, -0.1)
            )


class TestCurve:
    def test_outage_matches_a_hand_reduction(self, result):
        curve = finite_snr_dmt(result, Protocol.MABC, 10.0)
        pi = result.spec.protocols.index(Protocol.MABC)
        wi = result.spec.powers_db.index(10.0)
        samples = np.moveaxis(
            result.values, result.axis_index("draw"), -1
        )[pi, wi].reshape(-1)
        snr = db_to_linear(10.0)
        for r, rate, p_out in zip(
            curve.multiplexing_gains,
            curve.target_rates,
            curve.outage_probabilities,
        ):
            assert rate == pytest.approx(r * np.log2(1.0 + snr))
            assert p_out == np.count_nonzero(samples < rate) / samples.size

    def test_diversity_definition(self, result):
        curve = finite_snr_dmt(result, Protocol.TDBC, 10.0)
        snr = curve.snr
        for p_out, d in zip(curve.outage_probabilities, curve.diversity_gains):
            if p_out == 0.0:
                assert d == float("inf")
            else:
                assert d == pytest.approx(-np.log(p_out) / np.log(snr))
                assert not (d == 0.0 and np.signbit(d))

    def test_no_outage_gives_infinite_diversity(self, result):
        curve = finite_snr_dmt(
            result, Protocol.MABC, 10.0, multiplexing_gains=(1e-6,)
        )
        assert curve.outage_probabilities == (0.0,)
        assert curve.diversity_gains == (float("inf"),)

    def test_outage_is_monotone_in_the_multiplexing_gain(self, result):
        curve = finite_snr_dmt(result, Protocol.HBC, 5.0)
        outage = curve.outage_probabilities
        assert all(a <= b for a, b in zip(outage, outage[1:]))

    def test_rows_shape_and_metadata(self, result):
        curve = finite_snr_dmt(result, Protocol.MABC, 10.0)
        rows = curve.rows()
        assert len(rows) == len(DEFAULT_MULTIPLEXING_GAINS)
        assert all(len(row) == 4 for row in rows)
        assert curve.n_draws == 40
        assert curve.power_db == 10.0
        assert curve.snr == pytest.approx(10.0)
