"""Unit tests for the experiment registry and report rendering."""

import pytest

from repro.exceptions import InvalidParameterError
from repro.experiments.config import Fig3Config, Fig4Config
from repro.experiments.fig3 import run_fig3
from repro.experiments.fig4 import run_fig4
from repro.experiments.runner import (
    EXPERIMENT_IDS,
    ExperimentReport,
    fig3_report,
    fig4_report,
    run_experiment,
)


@pytest.fixture(scope="module")
def small_fig3_report():
    config = Fig3Config(relay_fractions=(0.3, 0.55, 0.8),
                        symmetric_gains_db=(0.0, 10.0, 20.0))
    return fig3_report(run_fig3(config))


@pytest.fixture(scope="module")
def small_fig4_reports():
    low = run_fig4(Fig4Config(power_db=0.0, boundary_points=9))
    high = run_fig4(Fig4Config(power_db=10.0, boundary_points=9))
    report_low = fig4_report(Fig4Config(power_db=0.0, boundary_points=9),
                             "fig4a", result=low, companion=high)
    report_high = fig4_report(Fig4Config(power_db=10.0, boundary_points=9),
                              "fig4b", result=high, companion=low)
    return report_low, report_high


class TestFig3Report:
    def test_render_contains_tables_and_checks(self, small_fig3_report):
        text = small_fig3_report.render()
        assert "fig3" in text
        assert "placement sweep" in text
        assert "symmetric sweep" in text
        assert "[PASS]" in text

    def test_all_checks_pass(self, small_fig3_report):
        assert small_fig3_report.all_checks_pass()

    def test_csv_export(self, small_fig3_report, tmp_path):
        paths = small_fig3_report.write_csvs(tmp_path)
        assert len(paths) == 2
        assert all(p.exists() for p in paths)


class TestFig4Report:
    def test_render_mentions_regions(self, small_fig4_reports):
        low, high = small_fig4_reports
        assert "TDBC outer" in high.render()
        assert "fig4a" in low.render()

    def test_headline_table_present_at_high_snr(self, small_fig4_reports):
        _low, high = small_fig4_reports
        titles = [title for title, _h, _r in high.tables]
        assert any("outside both" in t for t in titles)

    def test_checks_pass_both_panels(self, small_fig4_reports):
        for report in small_fig4_reports:
            assert report.all_checks_pass(), report.checks


class TestRegistry:
    def test_experiment_ids(self):
        assert set(EXPERIMENT_IDS) == {"fig3", "fig4a", "fig4b", "fading"}

    def test_unknown_experiment_rejected(self):
        with pytest.raises(InvalidParameterError):
            run_experiment("fig9")

    def test_report_is_dataclass_contract(self, small_fig3_report):
        assert isinstance(small_fig3_report, ExperimentReport)
        assert small_fig3_report.experiment_id == "fig3"
        assert small_fig3_report.tables
        assert small_fig3_report.plots
