"""Unit tests for the Fig. 3 harness (reduced sweep sizes for speed)."""

import pytest

from repro.core.protocols import Protocol
from repro.experiments.config import Fig3Config
from repro.experiments.fig3 import (
    Fig3Result,
    fig3_shape_checks,
    run_fig3,
)


@pytest.fixture(scope="module")
def small_result():
    config = Fig3Config(
        relay_fractions=(0.2, 0.4, 0.55, 0.7, 0.85),
        symmetric_gains_db=(0.0, 6.0, 12.0, 18.0),
    )
    return run_fig3(config)


class TestSweepStructure:
    def test_row_counts(self, small_result):
        assert len(small_result.placement_rows) == 5
        assert len(small_result.symmetric_rows) == 4

    def test_each_row_has_the_papers_protocols(self, small_result):
        from repro.experiments.fig3 import PROTOCOL_ORDER

        for row in small_result.placement_rows:
            assert set(row.sum_rates) == set(PROTOCOL_ORDER)

    def test_placement_gains_normalized(self, small_result):
        for row in small_result.placement_rows:
            assert row.gains.gab == pytest.approx(1.0)

    def test_table_rows_align_with_headers(self, small_result):
        headers = Fig3Result.headers("relay position")
        for row in small_result.placement_rows:
            assert len(row.as_table_row()) == len(headers)

    def test_dt_constant_over_placement(self, small_result):
        """DT ignores the relay, so its rate is flat across the sweep."""
        values = [row.sum_rates[Protocol.DT] for row in small_result.placement_rows]
        assert max(values) - min(values) < 1e-9


class TestPaperClaims:
    def test_all_shape_checks_pass(self, small_result):
        checks = fig3_shape_checks(small_result)
        failing = [name for name, ok in checks.items() if not ok]
        assert not failing, f"failed shape checks: {failing}"

    def test_hbc_ge_components_pointwise(self, small_result):
        for row in (list(small_result.placement_rows)
                    + list(small_result.symmetric_rows)):
            hbc = row.sum_rates[Protocol.HBC]
            assert hbc >= row.sum_rates[Protocol.MABC] - 1e-7
            assert hbc >= row.sum_rates[Protocol.TDBC] - 1e-7

    def test_winner_helper(self, small_result):
        winners = small_result.best_protocol_per_row(small_result.placement_rows)
        assert len(winners) == 5
        assert all(w in {"DT", "MABC", "TDBC", "HBC"} for w in winners)
        # HBC dominates MABC/TDBC, so the winner is HBC (or a tie resolved
        # to another protocol only if exactly equal; max() picks first max).
        assert "HBC" in winners
