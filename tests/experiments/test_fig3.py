"""Unit tests for the Fig. 3 harness (reduced sweep sizes for speed)."""

import pytest

from repro.core.protocols import Protocol
from repro.experiments.config import Fig3Config
from repro.experiments.fig3 import (
    Fig3Result,
    fig3_result,
    fig3_shape_checks,
)


@pytest.fixture(scope="module")
def small_config():
    return Fig3Config(
        relay_fractions=(0.2, 0.4, 0.55, 0.7, 0.85),
        symmetric_gains_db=(0.0, 6.0, 12.0, 18.0),
    )


@pytest.fixture(scope="module")
def small_result(small_config):
    return fig3_result(small_config)


class TestSweepStructure:
    def test_row_counts(self, small_result):
        assert len(small_result.placement_rows) == 5
        assert len(small_result.symmetric_rows) == 4

    def test_each_row_has_the_papers_protocols(self, small_result):
        from repro.experiments.fig3 import PROTOCOL_ORDER

        assert small_result.protocols == PROTOCOL_ORDER
        for row in small_result.placement_rows:
            assert set(row.sum_rates) == set(PROTOCOL_ORDER)

    def test_placement_gains_normalized(self, small_result):
        for row in small_result.placement_rows:
            assert row.gains.gab == pytest.approx(1.0)

    def test_table_rows_align_with_headers(self, small_result):
        headers = small_result.headers("relay position")
        for row in small_result.placement_rows:
            assert len(row.as_table_row()) == len(headers)
        for table_row in small_result.to_rows(small_result.placement_rows):
            assert len(table_row) == len(headers)

    def test_dt_constant_over_placement(self, small_result):
        """DT ignores the relay, so its rate is flat across the sweep."""
        values = [row.sum_rates[Protocol.DT] for row in small_result.placement_rows]
        assert max(values) - min(values) < 1e-9


class TestProtocolSubsets:
    """Subset runs derive their table columns from the protocol axis."""

    @pytest.fixture(scope="class")
    def subset_result(self, small_config):
        return fig3_result(
            small_config, protocols=(Protocol.MABC, Protocol.HBC)
        )

    def test_headers_follow_the_subset(self, subset_result):
        assert subset_result.headers("x") == ["x", "MABC", "HBC"]

    def test_rows_align_with_subset_headers(self, subset_result, small_result):
        headers = subset_result.headers("relay position")
        table = subset_result.to_rows(subset_result.placement_rows)
        for row, table_row in zip(subset_result.placement_rows, table):
            assert len(table_row) == len(headers) == 3
            assert len(row.as_table_row()) == 3
            # Column 1 is MABC, column 2 is HBC — cross-check against the
            # full run's values at the same sweep points.
            assert table_row[1] == pytest.approx(
                row.sum_rates[Protocol.MABC], abs=1e-12
            )
            assert table_row[2] == pytest.approx(
                row.sum_rates[Protocol.HBC], abs=1e-12
            )
        full = {
            row.sweep_value: row.sum_rates for row in small_result.placement_rows
        }
        for row in subset_result.placement_rows:
            assert row.sum_rates[Protocol.HBC] == pytest.approx(
                full[row.sweep_value][Protocol.HBC], abs=1e-9
            )

    def test_shape_checks_restrict_to_available_protocols(self, subset_result):
        checks = fig3_shape_checks(subset_result)
        assert "hbc_dominates" not in checks  # TDBC missing
        assert "mabc_vs_tdbc_crossover" not in checks
        assert "relay_protocols_beat_dt_somewhere" not in checks  # DT missing


class TestPaperClaims:
    def test_all_shape_checks_pass(self, small_result):
        checks = fig3_shape_checks(small_result)
        assert set(checks) == {
            "hbc_dominates",
            "hbc_strictly_better_somewhere",
            "relay_protocols_beat_dt_somewhere",
            "mabc_vs_tdbc_crossover",
        }
        failing = [name for name, ok in checks.items() if not ok]
        assert not failing, f"failed shape checks: {failing}"

    def test_hbc_ge_components_pointwise(self, small_result):
        for row in (list(small_result.placement_rows)
                    + list(small_result.symmetric_rows)):
            hbc = row.sum_rates[Protocol.HBC]
            assert hbc >= row.sum_rates[Protocol.MABC] - 1e-7
            assert hbc >= row.sum_rates[Protocol.TDBC] - 1e-7

    def test_winner_helper(self, small_result):
        winners = small_result.best_protocol_per_row(small_result.placement_rows)
        assert len(winners) == 5
        assert all(w in {"DT", "MABC", "TDBC", "HBC"} for w in winners)
        # HBC dominates MABC/TDBC, so the winner is HBC (or a tie resolved
        # to another protocol only if exactly equal; max() picks first max).
        assert "HBC" in winners
