"""Unit tests for repro.experiments.config."""

import pytest

from repro.experiments.config import FIG3_DEFAULT, FIG4_P0, FIG4_P10, Fig4Config


class TestFig3Config:
    def test_paper_parameters(self):
        assert FIG3_DEFAULT.power_db == 15.0
        assert FIG3_DEFAULT.gab_db == 0.0

    def test_power_linear(self):
        assert FIG3_DEFAULT.power == pytest.approx(10 ** 1.5)

    def test_sweeps_nonempty(self):
        assert len(FIG3_DEFAULT.relay_fractions) > 5
        assert len(FIG3_DEFAULT.symmetric_gains_db) > 5

    def test_placement_fractions_in_open_interval(self):
        assert all(0 < f < 1 for f in FIG3_DEFAULT.relay_fractions)


class TestFig4Config:
    def test_panel_powers(self):
        assert FIG4_P0.power_db == 0.0
        assert FIG4_P10.power_db == 10.0

    def test_gain_triple_reading(self):
        """The OCR reading must satisfy the paper regime G_ab<=G_ar<=G_br."""
        channel = FIG4_P10.channel()
        assert channel.gains.is_paper_regime()
        gab_db, gar_db, gbr_db = channel.gains.to_db()
        assert gab_db == pytest.approx(-7.0)
        assert gar_db == pytest.approx(0.0)
        assert gbr_db == pytest.approx(5.0)

    def test_channel_power(self):
        assert FIG4_P0.channel().power == pytest.approx(1.0)
        assert FIG4_P10.channel().power == pytest.approx(10.0)

    def test_custom_panel(self):
        config = Fig4Config(power_db=5.0, boundary_points=9)
        assert config.channel().power == pytest.approx(10 ** 0.5)
        assert config.boundary_points == 9
