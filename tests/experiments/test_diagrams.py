"""Unit tests for repro.experiments.diagrams."""

from repro.core.protocols import Protocol
from repro.experiments.diagrams import all_protocol_diagrams, phase_timeline


class TestPhaseTimeline:
    def test_dt_omits_relay_row(self):
        text = phase_timeline(Protocol.DT)
        lines = text.splitlines()
        node_column = [line.split()[0] for line in lines[3:]]
        assert node_column == ["a", "b"]

    def test_mabc_shows_joint_transmission(self):
        text = phase_timeline(Protocol.MABC)
        lines = {line.split()[0]: line for line in text.splitlines()[3:]}
        assert lines["a"].count("TX") == 1
        assert lines["b"].count("TX") == 1
        assert lines["r"].count("TX") == 1
        # a and b transmit in the same (first) phase.
        assert lines["a"].index("TX") == lines["b"].index("TX")

    def test_hbc_has_four_phases(self):
        text = phase_timeline(Protocol.HBC)
        assert "phase 4" in text

    def test_every_phase_has_a_transmitter(self):
        for protocol in Protocol:
            text = phase_timeline(protocol)
            node_lines = text.splitlines()[3:]
            n_phases = text.splitlines()[1].count("phase")
            for phase in range(n_phases):
                transmitters = sum(
                    1 for line in node_lines
                    if line[6:].split()[phase] == "TX"
                )
                assert transmitters >= 1


class TestAllDiagrams:
    def test_mentions_every_protocol(self):
        text = all_protocol_diagrams()
        for protocol in Protocol:
            assert protocol.name in text
