"""Unit tests for repro.experiments.ascii_plot."""

import numpy as np
import pytest

from repro.exceptions import InvalidParameterError
from repro.experiments.ascii_plot import ascii_plot


class TestAsciiPlot:
    def test_renders_markers_and_legend(self):
        text = ascii_plot({"line": [(0, 0), (1, 1)]}, width=20, height=8)
        assert "o = line" in text
        assert "o" in text

    def test_multiple_series_distinct_markers(self):
        text = ascii_plot(
            {"first": [(0, 0), (1, 1)], "second": [(0, 1), (1, 0)]},
            width=20, height=8,
        )
        assert "o = first" in text
        assert "x = second" in text

    def test_title_and_labels(self):
        text = ascii_plot({"s": [(0, 1)]}, title="T", x_label="xx", y_label="yy")
        assert text.splitlines()[0] == "T"
        assert "xx" in text
        assert "yy" in text

    def test_axis_ranges_include_zero(self):
        text = ascii_plot({"s": [(5.0, 5.0), (6.0, 7.0)]})
        assert "[0.000" in text  # x range extends to zero

    def test_empty_series_rejected(self):
        with pytest.raises(InvalidParameterError):
            ascii_plot({})

    def test_bad_shape_rejected(self):
        with pytest.raises(InvalidParameterError):
            ascii_plot({"s": [(1, 2, 3)]})
        with pytest.raises(InvalidParameterError):
            ascii_plot({"s": np.zeros((0, 2))})

    def test_too_small_canvas_rejected(self):
        with pytest.raises(InvalidParameterError):
            ascii_plot({"s": [(0, 0)]}, width=2, height=2)

    def test_degenerate_single_point(self):
        text = ascii_plot({"s": [(1.0, 1.0)]}, width=10, height=5)
        assert "o" in text
