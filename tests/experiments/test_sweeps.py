"""Unit tests for the power-sweep and crossover utilities."""

import pytest

from repro.channels.gains import LinkGains
from repro.core.protocols import Protocol
from repro.exceptions import InvalidParameterError
from repro.experiments.sweeps import (
    power_sweep,
    protocol_crossover_power,
    winner_table,
)


class TestPowerSweep:
    def test_rows_cover_powers(self, paper_gains):
        rows = power_sweep(paper_gains, (0.0, 10.0))
        assert [row.power_db for row in rows] == [0.0, 10.0]

    def test_rates_monotone_in_power(self, paper_gains):
        rows = power_sweep(paper_gains, (0.0, 5.0, 10.0, 15.0))
        for protocol in rows[0].sum_rates:
            values = [row.sum_rates[protocol] for row in rows]
            assert all(v2 >= v1 - 1e-9 for v1, v2 in zip(values, values[1:]))

    def test_winner_is_argmax(self, paper_gains):
        rows = power_sweep(paper_gains, (10.0,))
        row = rows[0]
        best = row.winner()
        assert row.sum_rates[best] == max(row.sum_rates.values())

    def test_custom_protocol_subset(self, paper_gains):
        rows = power_sweep(paper_gains, (10.0,),
                           protocols=(Protocol.MABC, Protocol.TDBC))
        assert set(rows[0].sum_rates) == {Protocol.MABC, Protocol.TDBC}

    def test_empty_sweep_rejected(self, paper_gains):
        with pytest.raises(InvalidParameterError):
            power_sweep(paper_gains, ())

    def test_campaign_path_matches_legacy_lp_loop(self, paper_gains):
        """The batched campaign route reproduces the per-point LP sweep."""
        powers = (0.0, 7.5, 15.0)
        fast = power_sweep(paper_gains, powers)
        legacy = power_sweep(paper_gains, powers, executor=None)
        for fast_row, legacy_row in zip(fast, legacy):
            assert fast_row.power_db == legacy_row.power_db
            for protocol, value in legacy_row.sum_rates.items():
                assert fast_row.sum_rates[protocol] == pytest.approx(
                    value, abs=1e-7
                )

    def test_explicit_backend_is_honored(self, paper_gains):
        """A non-default LP backend must actually run, not be shadowed by
        the default campaign executor."""
        simplex = power_sweep(paper_gains, (10.0,),
                              protocols=(Protocol.MABC,), backend="simplex")
        default = power_sweep(paper_gains, (10.0,),
                              protocols=(Protocol.MABC,))
        assert simplex[0].sum_rates[Protocol.MABC] == pytest.approx(
            default[0].sum_rates[Protocol.MABC], abs=1e-6
        )
        with pytest.raises(InvalidParameterError):
            power_sweep(paper_gains, (10.0,), backend="bogus")


class TestCrossover:
    def test_symmetric_relay_has_mabc_tdbc_crossover(self):
        """With a strong symmetric relay TDBC's side info eventually wins."""
        gains = LinkGains.from_db(0.0, 3.0, 3.0)
        crossover = protocol_crossover_power(gains, Protocol.MABC,
                                             Protocol.TDBC,
                                             low_db=-10.0, high_db=25.0)
        # On symmetric channels with a decent direct link TDBC dominates
        # throughout (the relay MAC phase is the bottleneck for MABC), so
        # either there is no flip (None) or a genuine crossover; both are
        # consistent — assert the classification matches a direct check.
        rows = power_sweep(gains, (-10.0, 25.0),
                           protocols=(Protocol.MABC, Protocol.TDBC))
        lo_order = rows[0].sum_rates[Protocol.TDBC] - rows[0].sum_rates[Protocol.MABC]
        hi_order = rows[1].sum_rates[Protocol.TDBC] - rows[1].sum_rates[Protocol.MABC]
        if (lo_order > 0) == (hi_order > 0):
            assert crossover is None
        else:
            assert crossover is not None
            assert -10.0 <= crossover <= 25.0

    def test_relay_protocol_vs_dt_crossover(self):
        """A weak relay: DT wins at high SNR, MABC at low SNR -> crossover."""
        gains = LinkGains.from_db(0.0, 2.0, 2.0)
        crossover = protocol_crossover_power(gains, Protocol.MABC,
                                             Protocol.DT,
                                             low_db=-15.0, high_db=25.0)
        if crossover is not None:
            rows = power_sweep(gains, (crossover - 3, crossover + 3),
                               protocols=(Protocol.DT, Protocol.MABC))
            low_gap = (rows[0].sum_rates[Protocol.DT]
                       - rows[0].sum_rates[Protocol.MABC])
            high_gap = (rows[1].sum_rates[Protocol.DT]
                        - rows[1].sum_rates[Protocol.MABC])
            assert (low_gap > 0) != (high_gap > 0)

    def test_no_crossover_between_nested_protocols(self, paper_gains):
        """HBC contains MABC, so the sign never flips."""
        assert protocol_crossover_power(paper_gains, Protocol.HBC,
                                        Protocol.MABC,
                                        low_db=-5.0, high_db=20.0) is None


class TestWinnerTable:
    def test_rows_and_margins(self, paper_gains):
        rows = winner_table(paper_gains, (0.0, 10.0))
        assert len(rows) == 2
        for power_db, winner, margin in rows:
            assert isinstance(winner, str)
            assert margin >= 0

    def test_hbc_wins_everywhere_it_contains_others(self, paper_gains):
        rows = winner_table(paper_gains, (0.0, 5.0, 10.0))
        assert all(winner == "HBC" or margin < 1e-6
                   for _p, winner, margin in rows)
