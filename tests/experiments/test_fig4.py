"""Unit tests for the Fig. 4 harness (reduced boundary resolution)."""

import pytest

from repro.experiments.config import Fig4Config
from repro.experiments.fig4 import TRACE_KEYS, fig4_shape_checks, run_fig4


@pytest.fixture(scope="module")
def low_snr():
    return run_fig4(Fig4Config(power_db=0.0, boundary_points=9))


@pytest.fixture(scope="module")
def high_snr():
    return run_fig4(Fig4Config(power_db=10.0, boundary_points=9))


class TestTraces:
    def test_all_curves_present(self, high_snr):
        assert set(high_snr.traces) == set(TRACE_KEYS)

    def test_boundaries_nonempty(self, high_snr):
        for trace in high_snr.traces.values():
            assert trace.boundary.shape[0] >= 2
            assert trace.boundary.shape[1] == 2

    def test_summary_scalars_consistent(self, high_snr):
        for trace in high_snr.traces.values():
            assert trace.max_ra >= 0
            assert trace.max_rb >= 0
            assert trace.max_sum_rate <= trace.max_ra + trace.max_rb + 1e-6
            assert trace.area >= 0

    def test_hbc_largest_area(self, high_snr):
        hbc_area = high_snr.traces["HBC"].area
        for key in ("DT", "MABC", "TDBC inner"):
            assert hbc_area >= high_snr.traces[key].area - 1e-9

    def test_tdbc_outer_contains_inner_area(self, high_snr):
        assert high_snr.traces["TDBC outer"].area >= \
            high_snr.traces["TDBC inner"].area - 1e-9


class TestHeadlineResult:
    def test_hbc_points_outside_at_high_snr(self, high_snr):
        assert len(high_snr.hbc_points_outside_both) > 0

    def test_outside_points_have_positive_rates(self, high_snr, low_snr):
        # The headline set may be non-empty at either SNR (the paper says
        # "in some cases"); whenever present the points must be interior.
        for result in (high_snr, low_snr):
            for ra, rb in result.hbc_points_outside_both:
                assert ra > 0
                assert rb > 0


class TestShapeChecks:
    def test_all_pass(self, low_snr, high_snr):
        checks = fig4_shape_checks(low_snr, high_snr)
        failing = [name for name, ok in checks.items() if not ok]
        assert not failing, f"failed shape checks: {failing}"
