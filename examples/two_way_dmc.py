"""Discrete-channel bounds: the Section II formulation on binary channels.

Run with::

    python examples/two_way_dmc.py

The paper states Lemma 1 and Theorems 2-6 for *discrete memoryless*
channels; the Gaussian case is a specialization. This example evaluates
the MABC and TDBC outer bounds on a fully discrete bidirectional relay
channel:

* each point-to-point link ``i-j`` is a binary symmetric channel with
  crossover ``p_ij`` (capacity ``1 - h(p_ij)``, computed two ways: closed
  form and Blahut-Arimoto);
* the MABC multiple-access phase is the binary XOR MAC
  ``Y_r = X_a ⊕ X_b ⊕ Z`` — the relay observes a noisy XOR, so the sum
  constraint collapses onto the individual ones (a nice structural
  difference from the Gaussian MAC);
* the Lemma-1 cut-set engine generates the outer-bound constraints
  mechanically from the protocol schedules and a discrete
  mutual-information oracle built on :mod:`repro.information.discrete`;
* phase durations are then optimized with the same LP machinery the
  Gaussian evaluation uses.
"""

import numpy as np

from repro.channels.binary_relay import BinaryRelayChannel
from repro.core.cutset_lp import cutset_max_sum_rate
from repro.core.protocols import Protocol, protocol_schedule
from repro.experiments.tables import render_table
from repro.information.blahut_arimoto import blahut_arimoto
from repro.information.functions import binary_entropy
from repro.network.cutset import cutset_outer_bound
from repro.network.model import bidirectional_relay_network

#: Crossover probabilities of the three links (direct link is the worst).
CHANNEL = BinaryRelayChannel(pab=0.20, par=0.05, pbr=0.02)


def main() -> None:
    # Link capacities, twice: closed form and Blahut-Arimoto.
    rows = []
    for link in (("a", "b"), ("a", "r"), ("b", "r")):
        p = CHANNEL.crossover(*link)
        matrix = np.array([[1 - p, p], [p, 1 - p]])
        ba = blahut_arimoto(matrix)
        rows.append(["-".join(link), p, 1 - binary_entropy(p), ba.capacity])
    print(render_table(
        ["link", "crossover", "1 - h(p)", "Blahut-Arimoto"],
        rows, title="BSC link capacities", float_format=".6f"))
    print()

    network = bidirectional_relay_network()
    oracle = CHANNEL.oracle()
    summary = []
    for protocol in (Protocol.NAIVE4, Protocol.MABC, Protocol.TDBC):
        schedule = protocol_schedule(protocol)
        constraints = cutset_outer_bound(network, schedule, oracle)
        print(f"{protocol.name} outer-bound constraints (Lemma-1 engine):")
        for constraint in constraints:
            terms = " + ".join(
                f"{mi:.4f}·Δ{phase + 1}"
                for phase, mi in enumerate(constraint.phase_mi) if mi > 0
            )
            print(f"  {' + '.join(constraint.message_names):8s} <= {terms}")
        point = cutset_max_sum_rate(constraints, schedule.n_phases)
        summary.append([
            protocol.name, point.sum_rate,
            str(tuple(round(float(d), 4) for d in point.durations)),
        ])
        print()

    print(render_table(
        ["protocol", "outer-bound sum rate", "optimal durations"],
        summary, title="LP-optimized outer bounds on the binary channel"))
    print()
    print("reading: on the XOR MAC the MABC sum constraint adds nothing")
    print("beyond the individual relay-decoding constraints, and the weak")
    print("direct link (p=0.2) limits how much TDBC's side information")
    print("can contribute.")


if __name__ == "__main__":
    main()
