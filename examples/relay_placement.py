"""Cellular relay placement: where should the operator put the relay?

Run with::

    python examples/relay_placement.py

The paper's motivating scenario (Section I): ``a`` is a mobile user, ``b``
a base station, and a relay station ``r`` assists the bidirectional
exchange. This example sweeps the relay along the user--base-station line
under an urban path-loss law and reports, per position, the optimal sum
rate of every protocol and the best protocol — the engineering question an
operator deploying relay stations actually asks.
"""

from repro.channels.pathloss import linear_relay_gains
from repro.core.capacity import compare_protocols
from repro.core.gaussian import GaussianChannel
from repro.experiments.ascii_plot import ascii_plot
from repro.experiments.tables import render_table
from repro.information.functions import db_to_linear

POWER_DB = 15.0
PATH_LOSS_EXPONENT = 3.5  # dense urban
POSITIONS = [i / 20 for i in range(1, 20)]


def main() -> None:
    power = db_to_linear(POWER_DB)
    rows = []
    series = {"MABC": [], "TDBC": [], "HBC": []}
    for position in POSITIONS:
        gains = linear_relay_gains(position, exponent=PATH_LOSS_EXPONENT)
        comparison = compare_protocols(
            GaussianChannel(gains=gains, power=power)
        )
        rates = comparison.as_row()
        rows.append([
            position,
            rates["DT"], rates["MABC"], rates["TDBC"], rates["HBC"],
            comparison.best_protocol().name,
        ])
        for name in series:
            series[name].append((position, rates[name]))

    print(render_table(
        ["relay position", "DT", "MABC", "TDBC", "HBC", "best"],
        rows,
        title=(f"Relay placement sweep: P={POWER_DB:g} dB, "
               f"path-loss exponent {PATH_LOSS_EXPONENT:g} "
               "(position = fraction of the user-to-base-station distance)"),
    ))
    print()
    print(ascii_plot(series, title="optimal sum rate vs relay position",
                     x_label="relay position", y_label="sum rate [bits/use]"))

    # A deployment recommendation: the position maximizing the HBC optimum.
    best_row = max(rows, key=lambda r: r[4])
    print(f"\nrecommended relay position: {best_row[0]:.2f} "
          f"(HBC sum rate {best_row[4]:.3f} bits/use)")


if __name__ == "__main__":
    main()
