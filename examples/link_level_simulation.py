"""Operational decode-and-forward: run the actual coded system.

Run with::

    python examples/link_level_simulation.py

Everything in the other examples evaluates *bounds*. This one runs the
operational system those bounds are about: CRC-16 framed payloads, the
NASA rate-1/2 constraint-length-7 convolutional code, BPSK over the
half-duplex Gaussian medium, successive interference cancellation at the
relay for the MABC/HBC MAC phases, XOR network coding at the relay, and
side-information decoding at the terminals.

It sweeps transmit power and reports, per protocol, the frame error rates
and the goodput in bits/symbol next to the analytic capacity bound — the
operational system tracks the bound's ordering and stays below it.
"""

import numpy as np

from repro.channels.gains import LinkGains
from repro.core.capacity import optimal_sum_rate
from repro.core.gaussian import GaussianChannel
from repro.core.protocols import Protocol
from repro.experiments.tables import render_table
from repro.information.functions import db_to_linear
from repro.simulation.linkcodec import default_codec
from repro.simulation.montecarlo import simulate_protocol

GAINS = LinkGains.from_db(-7.0, 0.0, 5.0)
POWERS_DB = (6.0, 9.0, 12.0, 15.0)
N_ROUNDS = 40
PAYLOAD_BITS = 128


def main() -> None:
    codec = default_codec(PAYLOAD_BITS)
    print(f"codec: {PAYLOAD_BITS}-bit payloads + CRC-16, K=7 rate-1/2 "
          f"convolutional code, BPSK ({codec.n_symbols} symbols/frame, "
          f"{codec.rate:.3f} info bits/symbol)\n")

    for power_db in POWERS_DB:
        power = db_to_linear(power_db)
        rows = []
        for protocol in Protocol:
            report = simulate_protocol(
                protocol, GAINS, power, N_ROUNDS,
                np.random.default_rng(7), codec=codec,
            )
            bound = optimal_sum_rate(
                protocol, GaussianChannel(gains=GAINS, power=power)
            ).sum_rate
            rows.append([
                protocol.name,
                report.a_to_b.fer,
                report.b_to_a.fer,
                report.sum_goodput,
                bound,
                f"{100 * report.sum_goodput / bound:.0f}%",
            ])
        print(render_table(
            ["protocol", "FER a->b", "FER b->a", "goodput [b/sym]",
             "capacity bound", "efficiency"],
            rows,
            title=f"link-level campaign at P={power_db:g} dB "
                  f"({N_ROUNDS} rounds)",
        ))
        print()

    print("reading: once the power is high enough for the fixed-rate codec,")
    print("MABC delivers 1.5x TDBC's goodput (2 frames per exchange instead")
    print("of 3 — the network-coding gain), and every goodput stays below")
    print("its protocol's capacity bound, at the distance set by the")
    print("rate-1/2 code and BPSK.")


if __name__ == "__main__":
    main()
