"""Quickstart: compute the paper's bounds on one channel in ~20 lines.

Run with::

    python examples/quickstart.py

Sets up the Fig. 4 high-SNR channel (P = 10 dB, G_ab = -7 dB, G_ar = 0 dB,
G_br = 5 dB), computes the LP-optimal sum rate of each protocol, traces the
HBC achievable region, and reproduces the paper's headline observation —
achievable HBC rate pairs outside the outer bounds of both MABC and TDBC.
"""

from repro import (
    GaussianChannel,
    Protocol,
    achievable_region,
    compare_protocols,
    outer_bound_region,
)


def main() -> None:
    channel = GaussianChannel.from_db(power_db=10, gab_db=-7, gar_db=0,
                                      gbr_db=5)
    print(f"channel: {channel.describe()}\n")

    # 1. Optimal sum rates (the Fig. 3 quantity) for every protocol.
    comparison = compare_protocols(channel)
    print("LP-optimal sum rates [bits/channel use]:")
    for protocol, point in comparison.sum_rates.items():
        durations = ", ".join(f"{d:.3f}" for d in point.durations)
        print(f"  {protocol.name:5s} {point.sum_rate:.4f} "
              f"(Ra={point.ra:.4f}, Rb={point.rb:.4f}, Δ=[{durations}])")
    print(f"best protocol: {comparison.best_protocol().name}\n")

    # 2. The HBC achievable region boundary (the Fig. 4 curve).
    hbc = achievable_region(Protocol.HBC, channel)
    print("HBC achievable boundary (Ra, Rb):")
    for ra, rb in hbc.boundary(9):
        print(f"  ({ra:.4f}, {rb:.4f})")

    # 3. The headline: HBC beats the other protocols' *outer* bounds.
    mabc = achievable_region(Protocol.MABC, channel)  # = capacity (Thm 2)
    tdbc_outer = outer_bound_region(Protocol.TDBC, channel)  # Thm 4
    outside = [
        (ra, rb)
        for ra, rb in hbc.boundary(33)
        if ra > 1e-6 and rb > 1e-6
        and not mabc.contains(ra, rb)
        and not tdbc_outer.contains(ra, rb)
    ]
    print("\nachievable HBC points outside BOTH the MABC capacity region")
    print("and the TDBC outer bound (the paper's headline):")
    for ra, rb in outside:
        print(f"  ({ra:.4f}, {rb:.4f})")


if __name__ == "__main__":
    main()
