"""Asymmetric traffic: unequal uplink/downlink rates through the relay.

Run with::

    python examples/asymmetric_rates.py

Bidirectional traffic is rarely symmetric — a mobile uploads less than it
downloads. This example works the asymmetric side of the paper's theory
and of this library:

1. **Weighted-rate operating points.** Sweeping the weight μ in
   ``max μ·Ra + (1-μ)·Rb`` walks each protocol's Pareto frontier,
   exposing how MABC/TDBC/HBC trade the two directions differently.
2. **Operational asymmetric MABC.** Theorem 2's group has cardinality
   ``L = max(⌊2^nRa⌋, ⌊2^nRb⌋)`` — the shorter message embeds into the
   longer one. The link-level round in
   :func:`repro.simulation.asymmetric.run_mabc_asymmetric_round` does
   exactly that with zero-padded frames and shows a 48+16-bit exchange
   over the air.
"""

import numpy as np

from repro.channels.awgn import ComplexAwgn
from repro.channels.gains import LinkGains
from repro.channels.halfduplex import HalfDuplexMedium
from repro.core.capacity import achievable_region
from repro.core.gaussian import GaussianChannel
from repro.core.protocols import Protocol
from repro.experiments.tables import render_table
from repro.simulation.asymmetric import run_mabc_asymmetric_round
from repro.simulation.bits import random_bits
from repro.simulation.convolutional import NASA_CODE
from repro.simulation.crc import CRC16_CCITT
from repro.simulation.linkcodec import LinkCodec

GAINS = LinkGains.from_db(-7.0, 0.0, 10.0)
POWER_DB = 12.0


def weighted_operating_points() -> None:
    channel = GaussianChannel(gains=GAINS, power=10 ** (POWER_DB / 10))
    weights = (0.9, 0.7, 0.5, 0.3, 0.1)
    for protocol in (Protocol.MABC, Protocol.TDBC, Protocol.HBC):
        region = achievable_region(protocol, channel)
        rows = []
        for mu in weights:
            point = region.support(mu, 1.0 - mu)
            rows.append([mu, point.ra, point.rb, point.ra / max(point.rb, 1e-12)])
        print(render_table(
            ["weight on Ra", "Ra", "Rb", "Ra/Rb"],
            rows,
            title=f"{protocol.name}: weighted-rate operating points "
                  f"(P={POWER_DB:g} dB)",
        ))
        print()


def operational_asymmetric_exchange() -> None:
    medium = HalfDuplexMedium(gains=GAINS, noise=ComplexAwgn(1.0))
    long_codec = LinkCodec(payload_bits=48, code=NASA_CODE, crc=CRC16_CCITT)
    short_codec = LinkCodec(payload_bits=16, code=NASA_CODE, crc=CRC16_CCITT)
    rng = np.random.default_rng(42)
    successes = 0
    n_rounds = 25
    for _ in range(n_rounds):
        result = run_mabc_asymmetric_round(
            medium, long_codec, short_codec, 10 ** (POWER_DB / 10),
            random_bits(rng, 48), random_bits(rng, 16), rng,
        )
        if result.success_a_to_b and result.success_b_to_a:
            successes += 1
    print(f"asymmetric MABC over the air: 48 bits a->b + 16 bits b->a per "
          f"round,\n{successes}/{n_rounds} rounds delivered both directions "
          f"cleanly at P={POWER_DB:g} dB\n(the 16-bit frame rides inside the "
          "48-bit group-L embedding, exactly as in Theorem 2).")


def main() -> None:
    weighted_operating_points()
    operational_asymmetric_exchange()


if __name__ == "__main__":
    main()
