"""Scenario-first evaluation: a custom multi-pair grid in ~30 lines.

Run with::

    PYTHONPATH=src python examples/multi_pair_scenario.py

Defines a three-pair network sharing one relay (each pair at its own
per-link dB offsets from the Fig. 4 base geometry), registers it,
evaluates it through the ``repro.api`` facade with the vectorized
executor, and prints the round-robin network sum rate per protocol —
the arXiv:1002.0123 baseline on top of the paper's per-pair bounds.
"""

from repro import FadingSpec, LinkGains, Protocol, evaluate, register_scenario
from repro.scenarios import PowerPolicy, RelayPair, Scenario, Topology


@register_scenario(name="three-pair-demo")
def three_pair_demo() -> Scenario:
    return Scenario(
        name="three-pair-demo",
        description="three pairs at staggered distances from one relay",
        protocols=(Protocol.MABC, Protocol.TDBC, Protocol.HBC),
        topology=Topology(
            gains=(LinkGains.from_db(-7.0, 0.0, 5.0),),
            pairs=(
                RelayPair(label="near"),
                RelayPair(label="mid", gain_offsets_db=(-1.0, 1.5, -1.5)),
                RelayPair(label="far", gain_offsets_db=(-3.0, 3.0, -4.0)),
            ),
        ),
        power=PowerPolicy.uniform(powers_db=(0.0, 10.0)),
        fading=FadingSpec(n_draws=200, seed=42),
        objective="round_robin_sum_rate",
    )


def main() -> None:
    result = evaluate("three-pair-demo")
    spec = result.spec
    print(f"grid axes: {result.axis_names}")
    print(f"grid shape: {spec.grid_shape} ({spec.n_units} cells)")
    print(f"pairs: {result.axis_labels('pair')}\n")

    print("round-robin network sum rate [bits/use] "
          "(pair-axis mean, ensemble mean):")
    for protocol_name, power_db, value in result.objective_rows():
        print(f"  {protocol_name:>5s} @ {power_db:>4.1f} dB: {value:.4f}")

    # Per-pair detail at 10 dB: who pays for sharing the relay?
    print("\nper-pair HBC ergodic sum rate at 10 dB:")
    pair_axis = result.pair_axis
    hbc = spec.protocols.index(Protocol.HBC)
    p10 = spec.powers_db.index(10.0)
    for pi, label in enumerate(result.axis_labels("pair")):
        samples = result.values[hbc, p10].take(pi, axis=pair_axis - 2)
        print(f"  {label:>5s}: {samples.mean():.4f}")


if __name__ == "__main__":
    main()
