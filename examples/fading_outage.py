"""Quasi-static fading: ergodic and outage sum rates for every protocol.

Run with::

    python examples/fading_outage.py

Section IV models each link as quasi-static fading with full CSI: the
channel is constant for one protocol execution and the nodes re-optimize
phase durations per realization. This example draws Rayleigh ensembles
around the Fig. 4 path-loss gains across a power sweep and reports

* the **ergodic** (ensemble-average) optimal sum rate, and
* the **10%-outage** sum rate (the rate guaranteed in 90% of fades),

for DT, MABC, TDBC and HBC — the quantities a system designer would use to
pick a protocol for a fading cell.
"""

import numpy as np

from repro.channels.gains import LinkGains
from repro.core.protocols import Protocol
from repro.experiments.tables import render_table
from repro.information.functions import db_to_linear
from repro.simulation.montecarlo import fading_sum_rate_statistics

MEAN_GAINS = LinkGains.from_db(-7.0, 0.0, 5.0)
POWERS_DB = (0.0, 5.0, 10.0, 15.0)
N_DRAWS = 200
SEED = 2026


def main() -> None:
    for power_db in POWERS_DB:
        power = db_to_linear(power_db)
        rows = []
        for protocol in Protocol:
            stats = fading_sum_rate_statistics(
                protocol, MEAN_GAINS, power, N_DRAWS,
                np.random.default_rng(SEED),  # common randomness: paired
            )
            rows.append([
                protocol.name,
                stats.mean,
                stats.std_error,
                stats.quantile(0.10),
                stats.quantile(0.50),
            ])
        print(render_table(
            ["protocol", "ergodic", "std err", "10%-outage", "median"],
            rows,
            title=(f"Rayleigh fading, P={power_db:g} dB, "
                   f"{N_DRAWS} quasi-static draws "
                   "(mean gains: G_ab=-7, G_ar=0, G_br=5 dB)"),
        ))
        print()

    print("reading: HBC's ergodic rate dominates at every power; the")
    print("low-SNR ergodic gap between MABC and TDBC mirrors the static")
    print("Fig. 4 ordering, and outage rates show the protocols' fade margin.")


if __name__ == "__main__":
    main()
